"""Figure 5: filter-cache size sweep (fully associative), Parsec."""

from conftest import run_once

from repro.experiments.figures import figure5


def test_figure5_filter_cache_size_sweep(benchmark, runner):
    result = run_once(benchmark, figure5, runner)
    print("\n" + result.to_markdown())
    # The paper: tiny filter caches hurt badly, 2048 bytes is enough that no
    # benchmark slows down appreciably.
    smallest = result.geomeans["64B"]
    tuned = result.geomeans["2048B"]
    assert tuned <= smallest
