"""Figure 7: proportion of writes triggering filter-cache invalidates."""

from conftest import run_once

from repro.experiments.figures import figure7


def test_figure7_write_invalidate_rate(benchmark, runner):
    result = run_once(benchmark, figure7, runner)
    print("\n" + result.to_markdown())
    rates = result.series["write fcache-invalidate rate"]
    # Rates are proportions, and most stores hit data already held privately,
    # so the broadcast is needed for well under half of the writes on average
    # (the paper's Figure 7 tops out around 0.6 for the worst workloads).
    assert all(0.0 <= rate <= 1.0 for rate in rates.values())
    mean = sum(rates.values()) / len(rates)
    assert mean < 0.6
