"""Figure 9: cumulative protection mechanisms, SPEC CPU2006."""

from conftest import run_once

from repro.experiments.figures import figure9


def test_figure9_cumulative_mechanisms_spec(benchmark, runner):
    result = run_once(benchmark, figure9, runner)
    print("\n" + result.to_markdown())
    labels = ["insecure L0", "fcache only", "coherency", "ifcache",
              "prefetching", "clear misspec", "parallel L1d"]
    assert all(label in result.geomeans for label in labels)
    # Accessing the L0 and L1 in parallel recovers part of the serial-lookup
    # penalty relative to the full protection stack (the paper: 4% -> 2%).
    assert result.geomeans["parallel L1d"] <= result.geomeans["prefetching"] + 0.02
    # Clearing on every misspeculation costs extra on SPEC.
    assert result.geomeans["clear misspec"] >= result.geomeans["prefetching"] - 0.02
