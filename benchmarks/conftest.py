"""Shared configuration for the benchmark harness.

Every benchmark regenerates one exhibit of the paper.  The sample length per
workload is deliberately small by default so the whole harness runs in a few
minutes; set ``REPRO_INSTRUCTIONS`` to a larger value (the paper uses
1-billion-instruction samples in gem5) for higher-fidelity numbers.
"""

import os

import pytest

from repro.sim.runner import ExperimentRunner

#: Default per-workload sample length for the benchmark harness.
BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_INSTRUCTIONS", "1000"))


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One shared runner so benchmarks reuse cached baseline simulations."""
    return ExperimentRunner(instructions=BENCH_INSTRUCTIONS)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
