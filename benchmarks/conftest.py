"""Shared configuration for the benchmark harness.

Every benchmark regenerates one exhibit of the paper.  The harness routes
through the campaign layer (:mod:`repro.harness`): each figure's run
matrix executes on a ``multiprocessing`` pool sized by ``REPRO_JOBS``
(default: every core), and when ``REPRO_STORE`` names a directory the
per-cell results are persisted there, so re-running the harness only
simulates cells that are not already cached.

The sample length per workload is deliberately small by default so the
whole harness runs in a few minutes; set ``REPRO_INSTRUCTIONS`` to a
larger value (the paper uses 1-billion-instruction samples in gem5) for
higher-fidelity numbers.  Clear the store (``python -m repro clean``)
after changing simulator code — results are keyed by their inputs, not by
the code that produced them.
"""

import os

import pytest

from repro.harness.store import ResultStore
from repro.sim.runner import ExperimentRunner, instructions_per_workload, parallel_jobs

#: Default per-workload sample length for the benchmark harness.
BENCH_INSTRUCTIONS = instructions_per_workload(default=1000)


@pytest.fixture(scope="session")
def store():
    """Persistent result store, enabled by setting ``REPRO_STORE``."""
    path = os.environ.get("REPRO_STORE")
    return ResultStore(path) if path else None


@pytest.fixture(scope="session")
def runner(store) -> ExperimentRunner:
    """One shared campaign-backed runner so benchmarks reuse baselines."""
    return ExperimentRunner(instructions=BENCH_INSTRUCTIONS, store=store,
                            jobs=parallel_jobs())


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
