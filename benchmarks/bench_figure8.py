"""Figure 8: cumulative protection mechanisms, Parsec."""

from conftest import run_once

from repro.experiments.figures import figure8


def test_figure8_cumulative_mechanisms_parsec(benchmark, runner):
    result = run_once(benchmark, figure8, runner)
    print("\n" + result.to_markdown())
    labels = ["insecure L0", "fcache only", "coherency", "ifcache",
              "prefetching", "clear misspec"]
    assert all(label in result.geomeans for label in labels)
    # Clear-on-misspeculate is the most expensive optional mechanism.
    assert result.geomeans["clear misspec"] >= result.geomeans["prefetching"] - 0.03
