"""Figure 4: Parsec (4 threads) normalised execution time for all schemes."""

from conftest import run_once

from repro.experiments.figures import figure4


def test_figure4_parsec(benchmark, runner):
    result = run_once(benchmark, figure4, runner)
    print("\n" + result.to_markdown())
    # MuonTrap should be the cheapest protection scheme on Parsec.
    muontrap = result.geomeans["MuonTrap"]
    assert muontrap <= min(result.geomeans["InvisiSpec-Spectre"],
                           result.geomeans["InvisiSpec-Future"]) + 0.02
    assert muontrap < 1.3
