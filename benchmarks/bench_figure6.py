"""Figure 6: associativity sweep of the 2 KiB filter cache, Parsec."""

from conftest import run_once

from repro.experiments.figures import figure6


def test_figure6_filter_cache_associativity_sweep(benchmark, runner):
    result = run_once(benchmark, figure6, runner)
    print("\n" + result.to_markdown())
    # Direct-mapped filter caches suffer conflict misses; 4-way is within a
    # small margin of fully associative (the paper picks 4-way).
    assert result.geomeans["4-way"] <= result.geomeans["1-way"] + 0.02
    assert abs(result.geomeans["4-way"] - result.geomeans["32-way"]) < 0.15
