"""Figure 3: SPEC CPU2006 normalised execution time for all five schemes."""

from conftest import run_once

from repro.experiments.figures import figure3


def test_figure3_spec2006(benchmark, runner):
    result = run_once(benchmark, figure3, runner)
    print("\n" + result.to_markdown())
    # The paper's headline: MuonTrap costs a few percent on SPEC and is
    # cheaper than both InvisiSpec variants.
    assert result.geomeans["MuonTrap"] < result.geomeans["InvisiSpec-Future"]
    assert result.geomeans["MuonTrap"] < 1.35
