#!/usr/bin/env python
"""Hot-path engine throughput benchmark (the CI perf-smoke gate).

Runs a fixed workload (default: 200k instructions of ``mcf``) through every
protection scheme on all three engines:

* **vectorized** — the production default: cached trace generation plus the
  plan-driven ``run_vectorized`` engine (batched simple-op runs, numpy
  array recurrences where available);
* **packed** — the scalar fast path: cached trace generation plus the
  zero-allocation ``run_packed`` loop;
* **legacy** — the pre-overhaul shape of the engine: fresh trace generation
  for every cell plus the per-op ``execute_op`` loop.

and reports ops/sec per scheme plus the end-to-end speedups (each fast
engine vs legacy).  A campaign-level benchmark then times a parallel
campaign twice — with the fork-inherited shared trace registry on and off —
to cover the harness path (pre-fork materialisation, worker attach) that
the per-cell loop above cannot see.  Results are written to
``BENCH_hotpath.json``.

``--check`` compares against a checked-in baseline
(``benchmarks/baseline_hotpath.json``) and exits non-zero when either fast
engine regresses.  The gating metric is the per-engine *speedup ratio over
legacy*, which is stable across machines; absolute ops/sec numbers vary
with the host CPU, so they are reported but compared only against the floor
implied by the same tolerance applied to the measured speedup.  The
campaign numbers are informational (two-job pool scheduling is too noisy
for a ratio gate).

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py
    PYTHONPATH=src python benchmarks/bench_hotpath.py --check
    PYTHONPATH=src python benchmarks/bench_hotpath.py --check-telemetry
    PYTHONPATH=src python benchmarks/bench_hotpath.py --instructions 50000

``--check-telemetry`` additionally asserts that no tracer is active (the
whole run measures the telemetry-*disabled* path) and gates the
zero-cost-when-disabled guarantee of :mod:`repro.telemetry`: a seed-pinned
packed run per scheme executes under cProfile and its *deterministic call
count* must stay within 2% of the checked-in baseline.  Call counts are
bit-identical across runs and hosts, so the 2% gate cannot flake the way
a wall-clock gate would on shared CI machines, while any per-op work
accidentally added to the disabled path trips it at once.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.common.params import SystemConfig  # noqa: E402
from repro.telemetry.tracer import active_tracer  # noqa: E402
from repro.sim.simulator import Simulator  # noqa: E402
from repro.sim.system import build_system  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    TraceGenerator,
    generate_workload,
)
from repro.workloads.profiles import get_profile  # noqa: E402

#: The five schemes of the acceptance matrix (Figures 3 and 4), by
#: registry name (see ``python -m repro schemes``).
SCHEMES = [
    "unprotected",
    "insecure-l0",
    "muontrap",
    "invisispec-spectre",
    "stt-spectre",
]

DEFAULT_BENCHMARK = "mcf"
DEFAULT_INSTRUCTIONS = 200_000
DEFAULT_SEED = 1234
#: Allowed throughput regression before --check fails.
REGRESSION_TOLERANCE = 0.20
#: Allowed disabled-telemetry overhead before --check-telemetry fails.
#: Tracing off must be (near) free: the packed hot loop takes one
#: module-level guard check per call and the memory system none at all.
TELEMETRY_TOLERANCE = 0.02
#: Workload of the telemetry gate.  Small: it runs under cProfile, whose
#: deterministic call counts (not noisy wall-clock) are the gated metric.
TELEMETRY_INSTRUCTIONS = 20_000

#: The campaign-level benchmark: a small matrix run through the parallel
#: harness (pool executor + shared trace registry), sized so the traces —
#: not the pool spin-up — dominate what trace sharing can save.
CAMPAIGN_BENCHMARKS = ["mcf", "hmmer", "lbm", "povray"]
CAMPAIGN_INSTRUCTIONS = 20_000
CAMPAIGN_JOBS = 2


def _run_vectorized(profile, mode: str, instructions: int,
                    seed: int) -> tuple:
    """One production-default cell: cached generation + vectorized engine."""
    config = SystemConfig(mode=mode).with_cores(max(1, profile.num_threads))
    started = time.perf_counter()
    workload = generate_workload(profile, instructions, seed=seed)
    simulator = Simulator(build_system(config, seed=seed), use_packed=True,
                          use_vectorized=True)
    result = simulator.run(workload, warmup_fraction=0.35)
    return time.perf_counter() - started, result


def _run_packed(profile, mode: str, instructions: int,
                seed: int) -> tuple:
    """One scalar-fast-path cell: cached generation + packed engine."""
    config = SystemConfig(mode=mode).with_cores(max(1, profile.num_threads))
    started = time.perf_counter()
    workload = generate_workload(profile, instructions, seed=seed)
    simulator = Simulator(build_system(config, seed=seed), use_packed=True,
                          use_vectorized=False)
    result = simulator.run(workload, warmup_fraction=0.35)
    return time.perf_counter() - started, result


def _run_legacy(profile, mode: str, instructions: int,
                seed: int) -> tuple:
    """One pre-overhaul-shaped cell: fresh generation + per-op engine."""
    config = SystemConfig(mode=mode).with_cores(max(1, profile.num_threads))
    started = time.perf_counter()
    workload = TraceGenerator(profile, seed=seed).generate(instructions)
    simulator = Simulator(build_system(config, seed=seed), use_packed=False)
    result = simulator.run(workload, warmup_fraction=0.35)
    return time.perf_counter() - started, result


def run_benchmark(benchmark: str, instructions: int, seed: int,
                  skip_legacy: bool = False) -> dict:
    profile = get_profile(benchmark)
    # Warm the trace tier once, untimed: the cached-generation arms all
    # reuse this one trace (plan included), so whichever engine happens to
    # run first is not charged the one-off generation cost.  The legacy
    # arm still regenerates fresh inside its timed region — paying
    # per-cell generation is part of the pre-overhaul shape it models.
    generate_workload(profile, instructions, seed=seed)
    # Every instruction of every thread is simulated (warmup included), so
    # throughput is reported over the full executed stream.
    executed = instructions * max(1, profile.num_threads)
    schemes = {}
    total_vectorized = 0.0
    total_packed = 0.0
    total_legacy = 0.0
    for mode in SCHEMES:
        vec_wall, vec_result = _run_vectorized(profile, mode, instructions,
                                               seed)
        packed_wall, packed_result = _run_packed(profile, mode, instructions,
                                                 seed)
        if (vec_result.cycles, vec_result.instructions) != (
                packed_result.cycles, packed_result.instructions):
            raise AssertionError(
                f"engine divergence under {mode}: "
                f"vectorized {vec_result.cycles} cycles vs "
                f"packed {packed_result.cycles}")
        entry = {
            "wall_seconds": round(packed_wall, 4),
            "ops_per_sec": round(executed / packed_wall, 1),
            "vectorized_wall_seconds": round(vec_wall, 4),
            "vectorized_ops_per_sec": round(executed / vec_wall, 1),
            "cycles": packed_result.cycles,
        }
        total_vectorized += vec_wall
        total_packed += packed_wall
        if not skip_legacy:
            legacy_wall, legacy_result = _run_legacy(profile, mode,
                                                     instructions, seed)
            if (legacy_result.cycles, legacy_result.instructions) != (
                    packed_result.cycles, packed_result.instructions):
                raise AssertionError(
                    f"engine divergence under {mode}: "
                    f"packed {packed_result.cycles} cycles vs "
                    f"legacy {legacy_result.cycles}")
            entry["legacy_wall_seconds"] = round(legacy_wall, 4)
            entry["legacy_ops_per_sec"] = round(executed / legacy_wall, 1)
            entry["speedup"] = round(legacy_wall / packed_wall, 3)
            entry["vectorized_speedup"] = round(legacy_wall / vec_wall, 3)
            total_legacy += legacy_wall
        schemes[mode] = entry
        line = (f"  {mode:20s} vec {entry['vectorized_ops_per_sec']:>9.0f}"
                f" ops/s  packed {entry['ops_per_sec']:>9.0f} ops/s")
        if not skip_legacy:
            line += (f"   legacy {entry['legacy_ops_per_sec']:>9.0f} ops/s"
                     f"  speedup {entry['vectorized_speedup']:.2f}x/"
                     f"{entry['speedup']:.2f}x")
        print(line)
    payload = {
        "benchmark": benchmark,
        "instructions": instructions,
        "seed": seed,
        "schemes": schemes,
        "total_vectorized_seconds": round(total_vectorized, 3),
        "total_packed_seconds": round(total_packed, 3),
    }
    if not skip_legacy:
        payload["total_legacy_seconds"] = round(total_legacy, 3)
        payload["end_to_end_speedup"] = round(total_legacy / total_packed, 3)
        payload["vectorized_end_to_end_speedup"] = round(
            total_legacy / total_vectorized, 3)
        print(f"  {'end-to-end':20s} vectorized {total_vectorized:.2f}s, "
              f"packed {total_packed:.2f}s vs legacy {total_legacy:.2f}s "
              f"-> {payload['vectorized_end_to_end_speedup']:.2f}x/"
              f"{payload['end_to_end_speedup']:.2f}x")
    return payload


def run_campaign_benchmark(seed: int) -> dict:
    """Time a parallel campaign with trace sharing on, then off.

    The per-cell loops above cannot see the harness path this PR touched:
    pre-fork trace materialisation and worker attach through the
    fork-inherited shared registry.  This runs the same small matrix (two
    series × four benchmarks) through the pool executor twice and reports
    both walls plus the registry statistics.  Informational only — pool
    scheduling at two jobs is too noisy for a ratio gate.
    """
    from repro.harness.campaign import Campaign
    from repro.workloads.cache import SHARED_TRACES_ENV, reset_trace_cache

    def one_run(shared: bool) -> tuple:
        # A cold trace tier each time, so both runs pay trace generation
        # the same way and differ only in *where* workers obtain traces.
        reset_trace_cache()
        saved = os.environ.get(SHARED_TRACES_ENV)
        os.environ[SHARED_TRACES_ENV] = "on" if shared else "off"
        try:
            campaign = Campaign(
                CAMPAIGN_BENCHMARKS,
                configs={"muontrap": SystemConfig(mode="muontrap")},
                baseline_config=SystemConfig(mode="unprotected"),
                instructions=CAMPAIGN_INSTRUCTIONS, seed=seed,
                jobs=CAMPAIGN_JOBS)
            started = time.perf_counter()
            result = campaign.run()
            return time.perf_counter() - started, result
        finally:
            if saved is None:
                del os.environ[SHARED_TRACES_ENV]
            else:
                os.environ[SHARED_TRACES_ENV] = saved

    shared_wall, shared_result = one_run(shared=True)
    unshared_wall, unshared_result = one_run(shared=False)
    if shared_result.geomeans() != unshared_result.geomeans():
        raise AssertionError("shared-trace campaign diverged from the "
                             "unshared reference")
    cells = shared_result.stats.executed
    payload = {
        "benchmarks": CAMPAIGN_BENCHMARKS,
        "instructions": CAMPAIGN_INSTRUCTIONS,
        "jobs": CAMPAIGN_JOBS,
        "cells": cells,
        "shared_traces": shared_result.stats.shared_traces,
        "wall_seconds": round(shared_wall, 4),
        "cells_per_sec": round(cells / shared_wall, 2),
        "unshared_wall_seconds": round(unshared_wall, 4),
    }
    print(f"  {'campaign':20s} {cells} cells, {CAMPAIGN_JOBS} jobs: "
          f"{shared_wall:.2f}s with {payload['shared_traces']} shared "
          f"trace(s) vs {unshared_wall:.2f}s unshared")
    return payload


def check_against_baseline(payload: dict, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    #: Each fast engine gates its own speedup-over-legacy ratio.
    gates = [("end_to_end_speedup", "packed"),
             ("vectorized_end_to_end_speedup", "vectorized")]
    for key, engine in gates:
        measured = payload.get(key)
        expected = baseline.get(key)
        if measured is None:
            failures.append("--check requires the legacy comparison "
                            "(do not combine with --no-legacy)")
            break
        if expected is None:
            continue
        floor = expected * (1.0 - REGRESSION_TOLERANCE)
        print(f"check: {engine} end-to-end speedup {measured:.2f}x "
              f"(baseline {expected:.2f}x, floor {floor:.2f}x)")
        if measured < floor:
            failures.append(
                f"{engine} end-to-end speedup regressed: {measured:.2f}x < "
                f"floor {floor:.2f}x (baseline {expected:.2f}x)")
    # Per-scheme ratios are noisier than the aggregate (short runs, shared
    # CI hosts), so scheme-level drops warn rather than fail; the gate is
    # the end-to-end speedups above.
    for mode, entry in baseline.get("schemes", {}).items():
        for key in ("speedup", "vectorized_speedup"):
            baseline_speedup = entry.get(key)
            current = payload["schemes"].get(mode, {}).get(key)
            if baseline_speedup is None or current is None:
                continue
            floor = baseline_speedup * (1.0 - REGRESSION_TOLERANCE)
            if current < floor:
                print(f"warning: {mode}: {key} {current:.2f}x below "
                      f"floor {floor:.2f}x "
                      f"(baseline {baseline_speedup:.2f}x)",
                      file=sys.stderr)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("check: OK (no regression beyond "
          f"{REGRESSION_TOLERANCE:.0%} tolerance)")
    return 0


def measure_disabled_call_counts(benchmark: str, seed: int) -> dict:
    """Interpreter work of one packed run per scheme, tracing disabled.

    Wall-clock is too noisy for a 2% gate (shared CI hosts swing more than
    that between *identical* runs), so the zero-cost-when-disabled check
    gates on cProfile's deterministic call counts instead: the simulation
    is seed-pinned, so the count is bit-identical across runs and hosts,
    and any accidental per-op or per-access work added to the disabled
    telemetry path shows up as a call-count increase immediately.
    """
    import cProfile

    profile = get_profile(benchmark)
    counts = {}
    for mode in SCHEMES:
        config = SystemConfig(mode=mode).with_cores(
            max(1, profile.num_threads))
        workload = generate_workload(profile, TELEMETRY_INSTRUCTIONS,
                                     seed=seed)
        # Pinned to the scalar packed engine: its call counts are
        # host-independent, while the vectorized engine's depend on
        # whether numpy is installed (the plan degrades gracefully).
        simulator = Simulator(build_system(config, seed=seed),
                              use_packed=True, use_vectorized=False)
        profiler = cProfile.Profile()
        profiler.enable()
        simulator.run(workload, warmup_fraction=0.35)
        profiler.disable()
        counts[mode] = sum(entry.callcount
                           for entry in profiler.getstats())
    return counts


def check_telemetry_overhead(payload: dict, baseline_path: Path) -> int:
    """The <2% zero-cost-when-disabled gate on the telemetry layer."""
    baseline = json.loads(baseline_path.read_text())
    expected = baseline.get("telemetry_call_counts")
    if not expected:
        print("FAIL: baseline has no telemetry_call_counts "
              "(regenerate benchmarks/baseline_hotpath.json)",
              file=sys.stderr)
        return 1
    measured = payload["telemetry_call_counts"]
    failures = []
    for mode, baseline_count in sorted(expected.items()):
        current = measured.get(mode)
        if current is None:
            continue
        ceiling = baseline_count * (1.0 + TELEMETRY_TOLERANCE)
        overhead = current / baseline_count - 1.0
        print(f"check-telemetry: {mode:20s} {current:>12,d} calls "
              f"(baseline {baseline_count:,d}, {overhead:+.2%})")
        if current > ceiling:
            failures.append(
                f"{mode}: disabled-telemetry run makes "
                f"{overhead:.2%} more interpreter calls than the "
                f"baseline (ceiling {TELEMETRY_TOLERANCE:.0%})")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"check-telemetry: OK (<{TELEMETRY_TOLERANCE:.0%} overhead "
          "with tracing disabled)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--benchmark", default=DEFAULT_BENCHMARK)
    parser.add_argument("--instructions", type=int,
                        default=DEFAULT_INSTRUCTIONS)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--no-legacy", action="store_true",
                        help="skip the legacy-engine comparison runs")
    parser.add_argument("--no-campaign", action="store_true",
                        help="skip the campaign-level harness benchmark")
    # argparse expands help strings with %-formatting, so literal percent
    # signs must be doubled.
    parser.add_argument("--check", action="store_true",
                        help="fail when throughput regresses more than "
                             f"{REGRESSION_TOLERANCE * 100:.0f}%% against "
                             "the baseline")
    parser.add_argument("--check-telemetry", action="store_true",
                        help="assert tracing is disabled and fail when the "
                             "telemetry hook points cost more than "
                             f"{TELEMETRY_TOLERANCE * 100:.0f}%% vs the "
                             "baseline")
    parser.add_argument("--baseline",
                        default=str(Path(__file__).parent
                                    / "baseline_hotpath.json"))
    parser.add_argument("--output", default="BENCH_hotpath.json")
    args = parser.parse_args(argv)

    if args.check_telemetry and active_tracer() is not None:
        print("FAIL: a tracer is active; the telemetry gate measures the "
              "disabled path", file=sys.stderr)
        return 1

    print(f"hot-path benchmark: {args.benchmark}, "
          f"{args.instructions} instructions, seed {args.seed}")
    payload = run_benchmark(args.benchmark, args.instructions, args.seed,
                            skip_legacy=args.no_legacy)
    if not args.no_campaign:
        payload["campaign"] = run_campaign_benchmark(args.seed)
    payload["telemetry_disabled"] = active_tracer() is None
    if args.check_telemetry:
        payload["telemetry_call_counts"] = measure_disabled_call_counts(
            args.benchmark, args.seed)
    Path(args.output).write_text(json.dumps(payload, indent=2,
                                            sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    status = 0
    if args.check:
        status = check_against_baseline(payload, Path(args.baseline))
    if args.check_telemetry:
        status = max(status, check_telemetry_overhead(payload,
                                                      Path(args.baseline)))
    return status


if __name__ == "__main__":
    sys.exit(main())
