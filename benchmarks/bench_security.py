"""The security evaluation: Attacks 1-6 against unprotected and MuonTrap."""

from conftest import run_once

from repro.experiments.security import run_security_evaluation


def test_security_matrix(benchmark):
    matrix = run_once(benchmark, run_security_evaluation)
    print("\n" + matrix.format_table())
    assert matrix.unprotected_leaks_everything
    assert matrix.muontrap_blocks_everything


def test_security_other_schemes_leave_channels_open(benchmark):
    """InvisiSpec does not protect the prefetcher or the instruction cache."""
    from repro.attacks import InstructionCacheAttack, PrefetcherAttack

    def run():
        return {
            "icache": InstructionCacheAttack(
                mode="invisispec-future").run(),
            "prefetcher": PrefetcherAttack(
                mode="invisispec-future").run(),
        }

    outcomes = run_once(benchmark, run)
    # At least one of the non-data-cache channels remains open under a
    # defence that only hides speculative loads from the data cache.
    assert outcomes["icache"].succeeded or outcomes["prefetcher"].succeeded
