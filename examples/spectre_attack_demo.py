"""Run the six Spectre-style attacks of the paper against several defences.

For each attack the script shows the probe timings the attacker observes and
whether the secret leaked, under the unprotected baseline, under MuonTrap
and (for comparison) under InvisiSpec-Future — which hides speculative loads
from the data cache but, as the paper notes, protects neither the prefetcher
nor the instruction cache.

Run with:  python examples/spectre_attack_demo.py
"""

from __future__ import annotations

from repro.attacks import ALL_ATTACKS
from repro.common.params import ProtectionMode

MODES = [ProtectionMode.UNPROTECTED, ProtectionMode.MUONTRAP,
         ProtectionMode.INVISISPEC_FUTURE]


def main() -> None:
    for attack_cls in ALL_ATTACKS:
        print(f"=== {attack_cls.name} ===")
        print(attack_cls.__doc__.strip().splitlines()[0])
        for mode in MODES:
            outcome = attack_cls(mode=mode).run()
            verdict = ("SECRET LEAKED" if outcome.succeeded
                       else "no leak")
            timings = ", ".join(
                f"{value}:{latency}"
                for value, latency in sorted(outcome.probe_latencies.items()))
            print(f"  {mode.value:20s} {verdict:14s} "
                  f"secret={outcome.actual_secret} "
                  f"recovered={outcome.recovered_secret} "
                  f"probe latencies [{timings}]")
        print()


if __name__ == "__main__":
    main()
