"""The simulation service, end to end, in one process.

Starts a :class:`repro.service.server.ReproServer` on a free port with a
SQLite-backed result store and hashed API-key auth, then drives it with
the stdlib client exactly the way a remote consumer would:

1. ``GET /v1/health`` and the listing endpoints;
2. a synchronous ``POST /v1/simulate``;
3. an async sweep — submit, watch the job's progress, fetch the result —
   and a byte-for-byte check that the HTTP response equals serialising
   the same :func:`repro.api.sweep` run inline;
4. a duplicate submission, to show content-hash job deduplication (and
   that the shared store makes the replay free).

Everything is stdlib: the server is ``http.server``, the client is
``urllib``.  In production you would run the server as its own process —
``REPRO_API_KEYS=my-key python -m repro serve --store-backend sqlite`` —
and point :class:`~repro.service.client.ServiceClient` at its URL.

Run with:  python examples/service_quickstart.py [instructions]
"""

from __future__ import annotations

import json
import sys
import tempfile

from repro import api
from repro.harness.store import open_store
from repro.service import (
    ApiKeyAuth,
    ReproServer,
    ServiceClient,
    ServiceConfig,
)
from repro.service.serialize import canonical_json, sweep_payload

API_KEY = "quickstart-key"


def main() -> int:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 4000

    store_root = tempfile.mkdtemp(prefix="repro-service-")
    store = open_store(store_root, backend="sqlite")
    server = ReproServer(ServiceConfig(
        port=0, store=store, auth=ApiKeyAuth.from_keys(API_KEY)))
    server.start()
    print(f"server:   {server.url}  (store {store.describe()})")

    client = ServiceClient(server.url, api_key=API_KEY)

    health = client.health()
    print(f"health:   repro {health['version']}, "
          f"{health['schemes']} schemes, {health['suites']} suites, "
          f"numpy={'yes' if health['numpy'] else 'no'}")
    print(f"machines: {', '.join(m['name'] for m in client.machines())}")

    # -- one cell, synchronously ---------------------------------------------
    outcome = client.simulate("mcf", scheme="muontrap",
                              instructions=instructions)
    result = outcome["result"]
    print(f"simulate: mcf/muontrap -> {result['cycles']} cycles "
          f"({result['instructions']} instructions)")

    # -- an async sweep: submit, poll, fetch ---------------------------------
    job = client.submit_sweep("core.width", [2, 4, 8], suite="mcf",
                              instructions=instructions)
    print(f"job:      {job['id']} submitted")
    final = client.wait(job["id"], timeout=600)
    progress = final["progress"]
    print(f"job:      done ({progress['done']}/{progress['total']} cells, "
          f"{final['failed_cells']} quarantined)")

    remote_bytes = client.job_result_bytes(job["id"])
    sweep = json.loads(remote_bytes.decode("utf-8"))
    geomeans = sweep["comparison"]["geomeans"]
    for width in sweep["values"]:
        print(f"          width {width}: geomean "
              f"{geomeans[str(width)]:.3f}x baseline")

    # -- the byte-identity contract ------------------------------------------
    inline = api.sweep("core.width", [2, 4, 8], suite="mcf",
                       instructions=instructions, store=store)
    identical = remote_bytes == canonical_json(sweep_payload(inline))
    print(f"contract: HTTP bytes == inline serialisation: {identical}")
    stats = inline.comparison.result.stats
    print(f"store:    inline replay executed {stats.executed} cells "
          f"({stats.store_hits} from the shared store)")

    # -- deduplication -------------------------------------------------------
    again = client.submit_sweep("core.width", [2, 4, 8], suite="mcf",
                                instructions=instructions)
    print(f"dedup:    resubmitting returned the same job "
          f"({again['id'] == job['id']}), already {again['status']}")

    server.shutdown(drain=True)
    return 0 if identical else 1


if __name__ == "__main__":
    sys.exit(main())
