"""Design-space exploration of the speculative filter cache.

Reproduces the tuning analysis of section 6.4 on a configurable subset of
Parsec: sweeps the filter-cache size (Figure 5) and associativity
(Figure 6) through the public facade (:func:`repro.api.compare`) and
prints the normalised execution times, so the 2 KiB / 4-way design point
the paper settles on can be checked.

The sweeps run through the campaign harness underneath the facade: the
size and associativity matrices execute on a worker pool (``REPRO_JOBS``
workers, default every core) and the per-cell results are cached in a
persistent store, so re-running the exploration — or widening a sweep —
only simulates the cells that have not been run before.

Run with:  python examples/design_space_exploration.py [instructions]
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro import api
from repro.harness.store import ResultStore
from repro.harness.suites import register_suite
from repro.sim.sweeps import (
    DEFAULT_ASSOCIATIVITY_SWEEP,
    DEFAULT_SIZE_SWEEP,
    filter_cache_associativity_configs,
    filter_cache_size_configs,
)

#: The Parsec workloads most sensitive to filter-cache geometry.
register_suite("fcache_sensitive",
               ["blackscholes", "streamcluster", "freqmine", "swaptions"])


def run_sweep(title, configs, instructions, store):
    comparison = api.compare(
        configs, suite="fcache_sensitive",
        machine=api.resolve_machine(None).with_cores(4),
        instructions=instructions, store=store)
    print(comparison.render(title=title))
    stats = comparison.result.stats
    print(f"[{stats.executed} simulated, "
          f"{stats.store_hits + stats.memory_hits} cached]")
    print()
    return comparison


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    store_dir = os.environ.get(
        "REPRO_STORE", os.path.join(tempfile.gettempdir(), "repro-dse"))
    store = ResultStore(store_dir)

    size_configs = {f"{size}B": config for size, config in
                    filter_cache_size_configs(DEFAULT_SIZE_SWEEP,
                                              num_cores=4).items()}
    size_sweep = run_sweep(
        "Normalised execution time vs fully associative filter-cache size",
        size_configs, instructions, store)

    ways_configs = {f"{ways}-way": config for ways, config in
                    filter_cache_associativity_configs(
                        DEFAULT_ASSOCIATIVITY_SWEEP, num_cores=4).items()}
    ways_sweep = run_sweep(
        "Normalised execution time vs 2 KiB filter-cache associativity",
        ways_configs, instructions, store)

    size_geomeans = size_sweep.geomeans()
    ways_geomeans = ways_sweep.geomeans()
    best_size = min(size_geomeans, key=size_geomeans.get)
    best_ways = min(ways_geomeans, key=ways_geomeans.get)
    print(f"result store: {store.root} ({len(store)} cells)")
    print(f"best size in this sweep: {best_size} "
          f"(geomean {size_geomeans[best_size]:.3f})")
    print(f"best associativity in this sweep: {best_ways} "
          f"(geomean {ways_geomeans[best_ways]:.3f})")


if __name__ == "__main__":
    main()
