"""Design-space exploration of the speculative filter cache.

Reproduces the tuning analysis of section 6.4 on a configurable subset of
Parsec: sweeps the filter-cache size (Figure 5) and associativity
(Figure 6) and prints the normalised execution times, so the 2 KiB /
4-way design point the paper settles on can be checked.

Run with:  python examples/design_space_exploration.py [instructions]
"""

from __future__ import annotations

import sys

from repro.experiments.figures import figure5, figure6
from repro.sim.runner import ExperimentRunner

BENCHMARKS = ["blackscholes", "streamcluster", "freqmine", "swaptions"]


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    runner = ExperimentRunner(instructions=instructions)

    size_sweep = figure5(runner, benchmarks=BENCHMARKS)
    print(size_sweep.description)
    print(size_sweep.format_table())
    print()

    associativity_sweep = figure6(runner, benchmarks=BENCHMARKS)
    print(associativity_sweep.description)
    print(associativity_sweep.format_table())
    print()

    best_size = min(size_sweep.geomeans, key=size_sweep.geomeans.get)
    best_ways = min(associativity_sweep.geomeans,
                    key=associativity_sweep.geomeans.get)
    print(f"best size in this sweep: {best_size} "
          f"(geomean {size_sweep.geomeans[best_size]:.3f})")
    print(f"best associativity in this sweep: {best_ways} "
          f"(geomean {associativity_sweep.geomeans[best_ways]:.3f})")


if __name__ == "__main__":
    main()
