"""Trace viewer: summarise a telemetry trace without leaving the terminal.

Reads a JSONL event trace — either from a file written by
``python -m repro trace`` / ``api.simulate(trace=...)`` or by running a
short instrumented simulation on the spot — and prints the three views a
trace question usually starts with:

* per-(category, name) event counts,
* a cycle timeline (events per fixed-width cycle bucket, as a bar chart),
* per-unit cache hit rates, cross-checked against what the counters say.

For the interactive deep dive, write a Chrome trace instead and open it at
https://ui.perfetto.dev:

    PYTHONPATH=src python -m repro trace mcf --chrome mcf.chrome.json

Run with:  python examples/trace_viewer.py [trace.jsonl]
           python examples/trace_viewer.py --benchmark mcf --scheme muontrap
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from typing import Any, Dict, Iterable, List


def load_events(path: str) -> List[Dict[str, Any]]:
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


def simulate_events(benchmark: str, scheme: str, instructions: int,
                    seed: int) -> List[Dict[str, Any]]:
    from repro import api
    outcome = api.simulate(benchmark, scheme, seed=seed,
                           instructions=instructions, warmup_fraction=0.0,
                           trace=True)
    return [event.as_dict() for event in outcome.tracer.events]


def print_counts(events: Iterable[Dict[str, Any]]) -> None:
    counts = Counter((event["cat"], event["name"]) for event in events)
    print(f"{'category':<10} {'event':<28} {'count':>8}")
    for (category, name), count in sorted(counts.items()):
        print(f"{category:<10} {name:<28} {count:>8}")


def print_timeline(events: List[Dict[str, Any]], buckets: int = 20) -> None:
    cycles = [event["cycle"] for event in events]
    if not cycles:
        print("no events")
        return
    span = max(cycles) + 1
    width = max(1, -(-span // buckets))          # ceil division
    histogram = Counter(cycle // width for cycle in cycles)
    peak = max(histogram.values())
    print(f"events per {width}-cycle bucket:")
    for bucket in range(buckets):
        count = histogram.get(bucket, 0)
        bar = "#" * max(1 if count else 0, round(40 * count / peak))
        print(f"  {bucket * width:>8} {bar:<40} {count}")


def print_hit_rates(events: Iterable[Dict[str, Any]]) -> None:
    hits: Counter = Counter()
    misses: Counter = Counter()
    for event in events:
        if event["cat"] != "cache":
            continue
        unit = (event.get("unit", "?"), event.get("core"))
        if event["name"] == "hit":
            hits[unit] += 1
        elif event["name"] == "miss":
            misses[unit] += 1
    print(f"{'unit':<14} {'hits':>8} {'misses':>8} {'hit rate':>9}")
    for unit in sorted(set(hits) | set(misses), key=str):
        hit, miss = hits[unit], misses[unit]
        total = hit + miss
        label = unit[0] if unit[1] is None else f"core{unit[1]}.{unit[0]}"
        rate = f"{hit / total:.1%}" if total else "-"
        print(f"{label:<14} {hit:>8} {miss:>8} {rate:>9}")


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="?", help="JSONL trace file to read")
    parser.add_argument("--benchmark", default="mcf",
                        help="simulate this benchmark when no file is given")
    parser.add_argument("--scheme", default="muontrap")
    parser.add_argument("--instructions", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    if args.trace:
        events = load_events(args.trace)
        print(f"{args.trace}: {len(events)} events")
    else:
        events = simulate_events(args.benchmark, args.scheme,
                                 args.instructions, args.seed)
        print(f"{args.benchmark} under {args.scheme} "
              f"({args.instructions} instructions): {len(events)} events")
    print()
    print_counts(events)
    print()
    print_timeline(events)
    print()
    print_hit_rates(events)
    return 0


if __name__ == "__main__":
    sys.exit(main())
