"""Quickstart: simulate one workload under MuonTrap and the baseline.

Builds the Table 1 system twice (unprotected and MuonTrap), runs the same
synthetic SPEC CPU2006 workload on both, and prints the normalised execution
time together with the filter-cache statistics that explain it.

Run with:  python examples/quickstart.py [benchmark] [instructions]
"""

from __future__ import annotations

import sys

from repro.common.params import ProtectionMode, SystemConfig
from repro.core.muontrap import MuonTrapMemorySystem
from repro.experiments.table1 import format_table1
from repro.sim.simulator import Simulator
from repro.sim.system import build_system
from repro.workloads.generator import generate_workload
from repro.workloads.profiles import get_profile


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "povray"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 8000

    print("Simulated system (Table 1 of the paper):")
    print(format_table1())
    print()

    profile = get_profile(benchmark)
    workload = generate_workload(profile, instructions, seed=42)

    results = {}
    for mode in (ProtectionMode.UNPROTECTED, ProtectionMode.MUONTRAP):
        config = SystemConfig(mode=mode, num_cores=max(1, profile.num_threads))
        system = build_system(config, seed=42)
        simulator = Simulator(system)
        results[mode] = (system, simulator.run(workload,
                                               warmup_fraction=0.3))

    baseline = results[ProtectionMode.UNPROTECTED][1]
    muontrap_system, muontrap = results[ProtectionMode.MUONTRAP]

    print(f"workload: {benchmark} ({instructions} instructions, "
          f"{profile.num_threads} thread(s))")
    print(f"  unprotected: {baseline.cycles} cycles "
          f"(IPC {baseline.ipc:.2f})")
    print(f"  MuonTrap:    {muontrap.cycles} cycles "
          f"(IPC {muontrap.ipc:.2f})")
    print(f"  normalised execution time: "
          f"{muontrap.cycles / baseline.cycles:.3f} (1.0 = baseline)")

    memory = muontrap_system.memory_system
    assert isinstance(memory, MuonTrapMemorySystem)
    data_filter = memory.data_filter(0)
    inst_filter = memory.inst_filter(0)
    print("\nMuonTrap filter-cache behaviour (core 0):")
    print(f"  data filter:  {data_filter.hits} hits, "
          f"{data_filter.misses} misses, {data_filter.flushes} flushes, "
          f"{data_filter.uncommitted_evictions} uncommitted evictions")
    print(f"  inst filter:  {inst_filter.hits} hits, "
          f"{inst_filter.misses} misses")
    print(f"  committed stores needing an invalidation broadcast: "
          f"{memory.store_filter_broadcasts} / {memory.committed_stores} "
          f"({memory.filter_invalidate_rate():.1%})")


if __name__ == "__main__":
    main()
