"""Quickstart: the public API in a dozen lines.

Simulates one workload under MuonTrap and the unprotected baseline through
:mod:`repro.api` — the stable facade the CLI, the experiment runner and the
figure reproductions all use — and prints the normalised execution time
together with the filter-cache statistics that explain it.

Run with:  python examples/quickstart.py [benchmark] [instructions]
"""

from __future__ import annotations

import sys

from repro import api
from repro.experiments.table1 import format_table1


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "povray"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 8000

    print("Simulated system (Table 1 of the paper):")
    print(format_table1())
    print()

    # One call per scheme: api.simulate resolves the benchmark name, builds
    # the machine, runs the workload and returns a typed outcome.  The same
    # seed gives both schemes the same instruction trace, so the comparison
    # isolates the memory system (the paper's methodology).
    baseline = api.simulate(benchmark, "unprotected", seed=42,
                            instructions=instructions, warmup_fraction=0.3,
                            collect_stats=True)
    muontrap = api.simulate(benchmark, "muontrap", seed=42,
                            instructions=instructions, warmup_fraction=0.3,
                            collect_stats=True)

    print(f"workload: {benchmark} ({instructions} instructions)")
    print(f"  unprotected: {baseline.cycles} cycles "
          f"(IPC {baseline.ipc:.2f}, "
          f"{baseline.wall_seconds * 1e6:.1f} simulated µs)")
    print(f"  MuonTrap:    {muontrap.cycles} cycles "
          f"(IPC {muontrap.ipc:.2f}, "
          f"{muontrap.wall_seconds * 1e6:.1f} simulated µs)")
    print(f"  normalised execution time: "
          f"{muontrap.normalised_to(baseline):.3f} (1.0 = baseline)")

    # Every outcome carries the full statistics tree of its run.
    stats = muontrap.stats
    prefix = "system.memory_system.core0"
    print("\nMuonTrap filter-cache behaviour (core 0):")
    print(f"  data filter:  {stats.get(f'{prefix}.data_filter.hits', 0)} "
          f"hits, {stats.get(f'{prefix}.data_filter.misses', 0)} misses, "
          f"{stats.get(f'{prefix}.data_filter.flushes', 0)} flushes")
    print(f"  inst filter:  {stats.get(f'{prefix}.inst_filter.hits', 0)} "
          f"hits, {stats.get(f'{prefix}.inst_filter.misses', 0)} misses")

    # The same machine, described as data: export, edit, re-run.
    machine = muontrap.machine.to_dict()
    print(f"\nmachine description: schema v{machine['schema_version']}, "
          f"{machine['num_cores']} core(s), mode {machine['mode']!r}")
    print("(SystemConfig.to_dict() round-trips losslessly; run saved "
          "files with: python -m repro run --machine-file <path>)")


if __name__ == "__main__":
    main()
