"""Compare every protection scheme on a multi-threaded Parsec workload.

Runs one Parsec benchmark (4 threads on 4 cores, shared L2, MESI coherence)
under the unprotected baseline, MuonTrap, both InvisiSpec variants and both
STT variants, and prints the normalised execution times plus the
coherence-protection statistics that only show up with multiple cores
(NACKed speculative requests, filter-cache invalidation broadcasts).

Run with:  python examples/multicore_parsec.py [benchmark] [instructions]
"""

from __future__ import annotations

import sys

from repro.common.params import ProtectionMode, SystemConfig
from repro.core.muontrap import MuonTrapMemorySystem
from repro.sim.runner import standard_modes, unprotected_config
from repro.sim.simulator import Simulator
from repro.sim.system import build_system
from repro.workloads.generator import generate_workload
from repro.workloads.profiles import get_profile


def run(config: SystemConfig, workload, seed: int = 7):
    system = build_system(config, seed=seed)
    return system, Simulator(system).run(workload, warmup_fraction=0.3)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "streamcluster"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 4000

    profile = get_profile(benchmark)
    if profile.suite != "parsec":
        raise SystemExit(f"{benchmark} is not a Parsec workload")
    workload = generate_workload(profile, instructions, seed=7)

    _, baseline = run(unprotected_config(num_cores=4), workload)
    print(f"{benchmark}: {instructions} instructions x "
          f"{profile.num_threads} threads")
    print(f"  {'unprotected':22s} 1.000  ({baseline.cycles} cycles)")

    for label, config in standard_modes(num_cores=4).items():
        system, result = run(config, workload)
        print(f"  {label:22s} {result.cycles / baseline.cycles:.3f}  "
              f"({result.cycles} cycles)")
        memory = system.memory_system
        if isinstance(memory, MuonTrapMemorySystem):
            bus = memory.hierarchy.bus
            print(f"  {'':22s} NACKed speculative requests: {bus.nacks}, "
                  f"filter invalidation broadcasts: {bus.filter_broadcasts}")


if __name__ == "__main__":
    main()
