"""Compare every protection scheme on a multi-threaded Parsec workload.

Runs one Parsec benchmark (4 threads on 4 cores, shared L2, MESI coherence)
under the unprotected baseline, MuonTrap, both InvisiSpec variants and both
STT variants through the public facade (:func:`repro.api.compare`), and
prints the normalised execution times plus the coherence-protection
statistics that only show up with multiple cores (NACKed speculative
requests, filter-cache invalidation broadcasts).

Run with:  python examples/multicore_parsec.py [benchmark] [instructions]
"""

from __future__ import annotations

import sys

from repro import api
from repro.schemes import figure_series_schemes
from repro.workloads.profiles import get_profile


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "streamcluster"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 4000

    profile = get_profile(benchmark)
    if profile.suite != "parsec":
        raise SystemExit(f"{benchmark} is not a Parsec workload")

    # The five schemes of Figures 3/4 on a 4-core machine, normalised
    # against the unprotected baseline.  collect_stats keeps each cell's
    # statistics tree so the coherence counters can be printed below.
    machine = api.resolve_machine(None).with_cores(4)
    comparison = api.compare(
        [spec.name for spec in figure_series_schemes()], suite=benchmark,
        machine=machine, seed=7, instructions=instructions,
        collect_stats=True)

    print(f"{benchmark}: {instructions} instructions x "
          f"{profile.num_threads} threads")
    baseline = comparison.outcome(benchmark, "baseline")
    print(f"  {'unprotected':22s} 1.000  ({baseline.cycles} cycles)")
    normalised = comparison.normalised()
    for label in comparison.labels:
        outcome = comparison.outcome(benchmark, label)
        print(f"  {label:22s} {normalised[label][benchmark]:.3f}  "
              f"({outcome.cycles} cycles)")
        if outcome.scheme == "muontrap":
            stats = outcome.stats
            nacks = stats.get("system.memory_system.hierarchy.bus.nacks", 0)
            broadcasts = stats.get(
                "system.memory_system.hierarchy.bus.filter_broadcasts", 0)
            print(f"  {'':22s} NACKed speculative requests: {nacks}, "
                  f"filter invalidation broadcasts: {broadcasts}")


if __name__ == "__main__":
    main()
