"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so the package can also be installed in legacy environments (for
example offline machines without the ``wheel`` package, where
``python setup.py develop`` is the only editable-install path available).
"""

from setuptools import setup

setup()
