"""Table 1: the experimental configuration.

This module renders the default :class:`~repro.common.params.SystemConfig`
in the same shape as Table 1 of the paper, so the configuration used by the
benchmark harness is auditable against the paper's.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.params import SystemConfig, default_system_config


def table1_rows(config: SystemConfig = None) -> List[List[str]]:
    """The Table 1 parameters as (section, parameter, value) rows."""
    config = config or default_system_config()
    core = config.core
    bp = core.branch_predictor
    rows = [
        ["Main cores", "Core",
         f"{core.width}-wide, out-of-order, {core.frequency_ghz:.1f}GHz"],
        ["Main cores", "Pipeline",
         f"{core.rob_entries}-entry ROB, {core.iq_entries}-entry IQ, "
         f"{core.lq_entries}-entry LQ, {core.sq_entries}-entry SQ, "
         f"{core.int_registers} Int / {core.fp_registers} FP registers, "
         f"{core.int_alus} Int ALUs, {core.fp_alus} FP ALUs, "
         f"{core.mult_div_alus} Mult/Div ALU"],
        ["Main cores", "Tournament branch pred.",
         f"{bp.local_entries}-entry local, {bp.global_entries}-entry global, "
         f"{bp.chooser_entries}-entry chooser, {bp.btb_entries}-entry BTB, "
         f"{bp.ras_entries}-entry RAS"],
        ["Private core memory", "L1 ICache",
         f"{config.l1i.size_bytes // 1024}KiB, {config.l1i.associativity}-way, "
         f"{config.l1i.hit_latency}-cycle hit lat, {config.l1i.mshrs} MSHRs"],
        ["Private core memory", "L1 DCache",
         f"{config.l1d.size_bytes // 1024}KiB, {config.l1d.associativity}-way, "
         f"{config.l1d.hit_latency}-cycle hit lat, {config.l1d.mshrs} MSHRs"],
        ["Private core memory", "TLBs",
         f"{config.tlb.entries}-entry, fully associative, split I/D"],
        ["Private core memory", "Data filter cache",
         f"{config.data_filter.size_bytes // 1024}KiB, "
         f"{config.data_filter.associativity}-way, "
         f"{config.data_filter.hit_latency}-cycle hit lat, "
         f"{config.data_filter.mshrs} MSHRs"],
        ["Private core memory", "Inst filter cache",
         f"{config.inst_filter.size_bytes // 1024}KiB, "
         f"{config.inst_filter.associativity}-way, "
         f"{config.inst_filter.hit_latency}-cycle hit lat, "
         f"{config.inst_filter.mshrs} MSHRs"],
        ["Shared system state", "L2 Cache",
         f"{config.l2.size_bytes // (1024 * 1024)}MiB, "
         f"{config.l2.associativity}-way, {config.l2.hit_latency}-cycle hit "
         f"lat, {config.l2.mshrs} MSHRs, {config.l2.prefetcher} prefetcher"],
        ["Shared system state", "Memory",
         f"{config.memory.access_latency}-cycle access latency"],
        ["Shared system state", "Core count", f"{config.num_cores} cores"],
    ]
    return rows


def format_table1(config: SystemConfig = None) -> str:
    rows = table1_rows(config)
    return "\n".join(f"{section:<22s} {name:<26s} {value}"
                     for section, name, value in rows)


def table1_as_dict(config: SystemConfig = None) -> Dict[str, str]:
    return {name: value for _, name, value in table1_rows(config)}
