"""Reproduction of every performance figure in the paper's evaluation.

Each ``figure*`` function runs the simulations behind the corresponding
exhibit and returns a :class:`FigureResult`: the per-benchmark series the
figure plots plus the headline aggregate the text quotes.  The number of
instructions per workload (and therefore the runtime) is controlled by the
``REPRO_INSTRUCTIONS`` environment variable through
:class:`~repro.sim.runner.ExperimentRunner`.

The functions are deliberately small wrappers over the experiment runner so
they can be called both from the pytest-benchmark harness (one benchmark per
figure) and from the examples / EXPERIMENTS.md generator.  Execution routes
through the campaign layer (:mod:`repro.harness.campaign`): pass a runner
built with ``jobs`` / ``store`` (or set ``REPRO_JOBS``) and the figure's run
matrix executes on a worker pool with results persisted across invocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.statistics import geometric_mean
from repro.harness.report import Report
from repro.sim.runner import (
    ExperimentRunner,
    cumulative_protection_configs,
    standard_modes,
    unprotected_config,
)
from repro.sim.sweeps import (
    DEFAULT_ASSOCIATIVITY_SWEEP,
    DEFAULT_SIZE_SWEEP,
    filter_cache_associativity_configs,
    filter_cache_size_configs,
)
from repro.workloads.profiles import (
    parsec_benchmarks,
    spec_benchmarks,
)


@dataclass
class FigureResult:
    """One reproduced exhibit: per-benchmark series plus aggregates."""

    figure: str
    description: str
    benchmarks: List[str]
    #: series label -> {benchmark -> normalised execution time (or rate)}
    series: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: series label -> geometric mean across benchmarks
    geomeans: Dict[str, float] = field(default_factory=dict)

    def compute_geomeans(self) -> None:
        self.geomeans = {
            label: geometric_mean([value for value in values.values()
                                   if value > 0])
            for label, values in self.series.items()
        }

    def to_report(self) -> Report:
        """This figure's table as a :class:`repro.harness.report.Report`."""
        return Report(benchmarks=list(self.benchmarks),
                      series={label: dict(values)
                              for label, values in self.series.items()},
                      geomeans=dict(self.geomeans),
                      title=self.description)

    def rows(self) -> List[List[str]]:
        """A printable table: one row per benchmark plus the geomean."""
        return self.to_report().rows()

    def format_table(self) -> str:
        return self.to_report().to_text()

    def to_markdown(self) -> str:
        return self.to_report().to_markdown()

    def to_csv(self) -> str:
        return self.to_report().to_csv()


def _run_mode_comparison(runner: ExperimentRunner, benchmarks: Sequence[str],
                         num_cores: int, figure: str,
                         description: str) -> FigureResult:
    configs = standard_modes(num_cores=num_cores)
    baseline = unprotected_config(num_cores=num_cores)
    series = runner.normalised_series(benchmarks, configs, baseline)
    result = FigureResult(figure=figure, description=description,
                          benchmarks=list(benchmarks),
                          series={label: dict(s.values)
                                  for label, s in series.items()})
    result.compute_geomeans()
    return result


def figure3(runner: Optional[ExperimentRunner] = None,
            benchmarks: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 3: SPEC CPU2006 normalised execution time for all five schemes."""
    runner = runner or ExperimentRunner()
    benchmarks = list(benchmarks or spec_benchmarks())
    return _run_mode_comparison(
        runner, benchmarks, num_cores=1, figure="figure3",
        description="Normalised execution time, SPEC CPU2006: MuonTrap vs "
                    "InvisiSpec and STT (lower is better)")


def figure4(runner: Optional[ExperimentRunner] = None,
            benchmarks: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 4: Parsec (4 threads) normalised execution time."""
    runner = runner or ExperimentRunner()
    benchmarks = list(benchmarks or parsec_benchmarks())
    return _run_mode_comparison(
        runner, benchmarks, num_cores=4, figure="figure4",
        description="Normalised execution time, Parsec with 4 threads: "
                    "MuonTrap vs InvisiSpec and STT (lower is better)")


def figure5(runner: Optional[ExperimentRunner] = None,
            sizes: Optional[Sequence[int]] = None,
            benchmarks: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 5: fully associative filter-cache size sweep on Parsec."""
    runner = runner or ExperimentRunner()
    sizes = list(sizes or DEFAULT_SIZE_SWEEP)
    benchmarks = list(benchmarks or parsec_benchmarks())
    configs = {f"{size}B": config for size, config in
               filter_cache_size_configs(sizes, num_cores=4).items()}
    baseline = unprotected_config(num_cores=4)
    series = runner.normalised_series(benchmarks, configs, baseline)
    result = FigureResult(
        figure="figure5",
        description="Normalised execution time with a fully associative "
                    "data filter cache of varying size, Parsec",
        benchmarks=benchmarks,
        series={label: dict(s.values) for label, s in series.items()})
    result.compute_geomeans()
    return result


def figure6(runner: Optional[ExperimentRunner] = None,
            associativities: Optional[Sequence[int]] = None,
            benchmarks: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 6: associativity sweep of the 2 KiB filter cache on Parsec."""
    runner = runner or ExperimentRunner()
    associativities = list(associativities or DEFAULT_ASSOCIATIVITY_SWEEP)
    benchmarks = list(benchmarks or parsec_benchmarks())
    configs = {f"{ways}-way": config for ways, config in
               filter_cache_associativity_configs(
                   associativities, num_cores=4).items()}
    baseline = unprotected_config(num_cores=4)
    series = runner.normalised_series(benchmarks, configs, baseline)
    result = FigureResult(
        figure="figure6",
        description="Normalised execution time when varying the "
                    "associativity of a 2 KiB filter cache, Parsec",
        benchmarks=benchmarks,
        series={label: dict(s.values) for label, s in series.items()})
    result.compute_geomeans()
    return result


def figure7(runner: Optional[ExperimentRunner] = None,
            benchmarks: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 7: proportion of writes triggering filter-cache invalidates."""
    from repro import api
    runner = runner or ExperimentRunner()
    benchmarks = list(benchmarks or spec_benchmarks())
    rates: Dict[str, float] = {}
    for benchmark in benchmarks:
        outcome = api.simulate(
            benchmark, "muontrap", seed=runner.seed,
            instructions=runner.instructions, warmup_fraction=0.0,
            collect_stats=True, store=runner.store)
        stores = outcome.stats.get(
            "system.memory_system.committed_stores", 0)
        broadcasts = outcome.stats.get(
            "system.memory_system.store_filter_broadcasts", 0)
        rates[benchmark] = broadcasts / stores if stores else 0.0
    result = FigureResult(
        figure="figure7",
        description="Proportion of committed stores that trigger a "
                    "filter-cache invalidation broadcast under MuonTrap, "
                    "SPEC CPU2006",
        benchmarks=benchmarks,
        series={"write fcache-invalidate rate": rates})
    mean = sum(rates.values()) / len(rates) if rates else 0.0
    result.geomeans = {"write fcache-invalidate rate": mean}
    return result


def figure8(runner: Optional[ExperimentRunner] = None,
            benchmarks: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 8: cumulative protection mechanisms on Parsec."""
    runner = runner or ExperimentRunner()
    benchmarks = list(benchmarks or parsec_benchmarks())
    configs = cumulative_protection_configs(num_cores=4,
                                            include_parallel_l1=False)
    baseline = unprotected_config(num_cores=4)
    series = runner.normalised_series(benchmarks, configs, baseline)
    result = FigureResult(
        figure="figure8",
        description="Normalised execution time from cumulatively adding "
                    "protection mechanisms, Parsec",
        benchmarks=benchmarks,
        series={label: dict(s.values) for label, s in series.items()})
    result.compute_geomeans()
    return result


def figure9(runner: Optional[ExperimentRunner] = None,
            benchmarks: Optional[Sequence[str]] = None) -> FigureResult:
    """Figure 9: cumulative protection mechanisms on SPEC CPU2006."""
    runner = runner or ExperimentRunner()
    benchmarks = list(benchmarks or spec_benchmarks())
    configs = cumulative_protection_configs(num_cores=1,
                                            include_parallel_l1=True)
    baseline = unprotected_config(num_cores=1)
    series = runner.normalised_series(benchmarks, configs, baseline)
    result = FigureResult(
        figure="figure9",
        description="Normalised execution time from cumulatively adding "
                    "protection mechanisms, SPEC CPU2006",
        benchmarks=benchmarks,
        series={label: dict(s.values) for label, s in series.items()})
    result.compute_geomeans()
    return result


def metrics_over_time(benchmark: str, scheme: str = "muontrap",
                      every: int = 1000, *,
                      seed: Optional[int] = None,
                      instructions: Optional[int] = None,
                      runner: Optional[ExperimentRunner] = None):
    """A benchmark's metrics sampled every N cycles, for over-time plots.

    Runs one instrumented simulation through :func:`repro.api.simulate`
    and returns its :class:`~repro.telemetry.metrics.TimeSeries` — MPKI,
    squash rate or filter occupancy over simulated time, e.g.::

        series = metrics_over_time("mcf", "muontrap", every=1000)
        mpki = series.rate("system.memory_system.data_misses",
                           "system.core0.committed_instructions",
                           scale=1000)

    The figures above plot end-of-run aggregates; this is the entry point
    for the time-resolved view of the same runs.
    """
    from repro import api
    runner = runner or ExperimentRunner()
    outcome = api.simulate(
        benchmark, scheme, seed=runner.seed if seed is None else seed,
        instructions=(runner.instructions if instructions is None
                      else instructions),
        warmup_fraction=0.0, collect_stats=True, metrics_every=every)
    return outcome.timeseries


ALL_FIGURES = {
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
}
