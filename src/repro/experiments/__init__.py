"""Experiment drivers that regenerate every table and figure of the paper."""

from repro.experiments.figures import (
    ALL_FIGURES,
    FigureResult,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
)
from repro.experiments.security import SecurityMatrix, run_security_evaluation
from repro.experiments.table1 import format_table1, table1_as_dict, table1_rows

__all__ = [
    "ALL_FIGURES",
    "FigureResult",
    "SecurityMatrix",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "format_table1",
    "run_security_evaluation",
    "table1_as_dict",
    "table1_rows",
]
