"""The security evaluation: Attacks 1-6 against every protection mode.

The paper's security argument is qualitative (each attack box names the
defence that stops it); this module makes it executable.  Each attack is run
against the unprotected baseline (where it must succeed) and against
MuonTrap (where it must fail); optionally against the other schemes too, to
show which channels they leave open (e.g. InvisiSpec does not protect the
prefetcher or the instruction cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type

from repro.attacks import ALL_ATTACKS, AttackOutcome
from repro.common.params import SchemeLike, scheme_name


@dataclass
class SecurityMatrix:
    """attack name -> {scheme -> leaked?}."""

    outcomes: Dict[str, Dict[str, AttackOutcome]] = field(default_factory=dict)

    def leaked(self, attack: str, mode: SchemeLike) -> bool:
        return self.outcomes[attack][scheme_name(mode)].succeeded

    def rows(self) -> List[List[str]]:
        modes = sorted({mode for per_attack in self.outcomes.values()
                        for mode in per_attack})
        header = ["attack"] + modes
        body = []
        for attack, per_mode in self.outcomes.items():
            body.append([attack] + [
                "LEAK" if per_mode[mode].succeeded else "safe"
                for mode in modes])
        return [header] + body

    def format_table(self) -> str:
        return "\n".join("  ".join(f"{cell:>24s}" for cell in row)
                         for row in self.rows())

    @property
    def muontrap_blocks_everything(self) -> bool:
        return all(not per_mode["muontrap"].succeeded
                   for per_mode in self.outcomes.values()
                   if "muontrap" in per_mode)

    @property
    def unprotected_leaks_everything(self) -> bool:
        return all(per_mode["unprotected"].succeeded
                   for per_mode in self.outcomes.values()
                   if "unprotected" in per_mode)


def run_security_evaluation(
        modes: Optional[Sequence[SchemeLike]] = None,
        attacks: Optional[Sequence[Type]] = None) -> SecurityMatrix:
    """Run every attack against every requested protection scheme.

    ``modes`` accepts registry scheme names (and the deprecated enum
    members); the default pits the baseline that must leak against the
    scheme that must not.
    """
    modes = list(modes or ["unprotected", "muontrap"])
    attacks = list(attacks or ALL_ATTACKS)
    matrix = SecurityMatrix()
    for attack_cls in attacks:
        per_mode: Dict[str, AttackOutcome] = {}
        for mode in modes:
            per_mode[scheme_name(mode)] = attack_cls(mode=mode).run()
        matrix.outcomes[attack_cls.name] = per_mode
    return matrix
