"""The stable public API of the reproduction.

Everything a consumer needs lives behind three calls:

* :func:`simulate` — one workload on one machine, returning a typed
  :class:`SimulationOutcome`;
* :func:`compare` — a suite × scheme (or machine) matrix normalised
  against a baseline, returning a :class:`ComparisonOutcome`;
* :func:`sweep` — :func:`compare` over a single configuration parameter
  (``"data_filter.size_bytes"``, ``"l2.associativity"``, ...), returning a
  :class:`SweepOutcome`.

All three accept *machine-likes* anywhere a machine is expected — a
:class:`~repro.common.params.SystemConfig`, a registered scheme name
(``"muontrap"``), a machine-preset name (``"biglittle-asym"``), a
description dict (:mod:`repro.common.machine`), or a path to a machine
JSON file — and *workload-likes* (benchmark / mix names or profile
objects) anywhere a workload is expected.  :func:`resolve_machine` and
:func:`resolve_workload` are that one authoritative resolution path; the
command line, the :class:`~repro.sim.runner.ExperimentRunner`, the figure
reproductions and the examples all construct their systems through it.

Execution routes through the campaign layer, so the facade inherits its
guarantees: deterministic results independent of worker count, in-memory
content-hash caching, and incremental persistence when a
:class:`~repro.harness.store.ResultStore` is attached.

Quickstart::

    from repro import api

    outcome = api.simulate("mcf", "muontrap", seed=42)
    print(outcome.cycles, outcome.ipc)

    comparison = api.compare(["muontrap", "stt-spectre"], suite="spec_int")
    print(comparison.render())
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.common.machine import load_machine, machine_from_dict
from repro.common.params import (
    ProtectionMode,
    SchemeLike,
    SystemConfig,
    scheme_name,
)
from repro.harness.campaign import (
    Campaign,
    CampaignResult,
    DEFAULT_SEED,
    RunSpec,
    execute_cells,
)
from repro.harness.report import Report
from repro.harness.store import ResultStore
from repro.schemes import get_scheme, is_registered
from repro.sim.runner import DEFAULT_WARMUP_FRACTION, instructions_per_workload
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.system import build_system
from repro.telemetry.metrics import MetricsSampler, TimeSeries
from repro.telemetry.tracer import Tracer, tracing
from repro.workloads.generator import generate_workload
from repro.workloads.profiles import get_profile

#: Anything that resolves to a machine configuration.
MachineLike = Union[SystemConfig, str, os.PathLike, Mapping]
#: Anything that resolves to a workload profile.
WorkloadLike = Union[str, object]

#: The scheme every comparison normalises against unless told otherwise.
DEFAULT_BASELINE = "unprotected"


# -- resolution ---------------------------------------------------------------

def resolve_workload(workload: WorkloadLike):
    """Resolve a workload-like to its profile object.

    Accepts a benchmark or mix name (``"mcf"``, ``"mix-quad"``) or any
    profile object carrying ``name``/``suite``/``num_threads`` (a
    :class:`~repro.workloads.profiles.WorkloadProfile` or
    :class:`~repro.workloads.mixes.MixProfile`).
    """
    if isinstance(workload, str):
        return get_profile(workload)
    for attribute in ("name", "suite", "num_threads"):
        if not hasattr(workload, attribute):
            raise TypeError(
                f"workload must be a benchmark name or a profile object; "
                f"{workload!r} has no {attribute!r}")
    return workload


def resolve_machine(machine: Optional[MachineLike] = None) -> SystemConfig:
    """Resolve a machine-like to a :class:`SystemConfig`.

    ``None`` is the Table 1 default machine.  Strings resolve in order:
    machine-preset name, registered scheme name (the default machine under
    that scheme), then path to a machine JSON file.  Mappings go through
    :func:`repro.common.machine.machine_from_dict`.
    """
    if machine is None:
        return SystemConfig()
    if isinstance(machine, SystemConfig):
        return machine
    if isinstance(machine, Mapping):
        return machine_from_dict(dict(machine))
    if isinstance(machine, os.PathLike):
        return load_machine(machine)
    if isinstance(machine, str):
        from repro.workloads.mixes import MACHINE_PRESETS, get_machine
        if machine in MACHINE_PRESETS:
            return get_machine(machine)
        if is_registered(machine):
            return SystemConfig(mode=machine)
        if machine.endswith(".json") or os.path.sep in machine \
                or Path(machine).exists():
            return load_machine(machine)
        from repro.workloads.mixes import machine_names
        from repro.schemes import scheme_names
        raise ValueError(
            f"unknown machine {machine!r}: not a machine preset "
            f"({', '.join(machine_names())}), not a registered scheme "
            f"({', '.join(scheme_names())}), and not a machine file on "
            f"disk")
    raise TypeError(f"cannot interpret {machine!r} as a machine")


def machine_label(machine: Optional[MachineLike]) -> str:
    """The default series label of a machine-like (used by :func:`compare`)."""
    if machine is None:
        return SystemConfig().mode_label
    if isinstance(machine, str):
        from repro.workloads.mixes import MACHINE_PRESETS
        if machine in MACHINE_PRESETS:
            return machine
        if is_registered(machine):
            return get_scheme(machine).display_name
        return Path(machine).stem
    if isinstance(machine, os.PathLike):
        return Path(machine).stem
    return resolve_machine(machine).mode_label


# -- outcomes -----------------------------------------------------------------

@dataclass(frozen=True)
class SimulationOutcome:
    """The result of one :func:`simulate` call."""

    benchmark: str
    label: str
    machine: SystemConfig
    seed: int
    instructions_requested: int
    result: SimulationResult
    #: Telemetry attachments — populated only by instrumented runs
    #: (``simulate(trace=..., chrome_trace=..., metrics_every=...)``).
    tracer: Optional[Tracer] = None
    trace_path: Optional[Path] = None
    chrome_path: Optional[Path] = None
    timeseries: Optional[TimeSeries] = None

    @property
    def scheme(self) -> str:
        """The machine's scheme label (one name, or the per-core list)."""
        return self.machine.mode_label

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def instructions(self) -> int:
        return self.result.instructions

    @property
    def ipc(self) -> float:
        return self.result.ipc

    @property
    def time(self) -> float:
        """Execution time in reference-clock cycles (frequency-scaled)."""
        return self.result.time

    @property
    def wall_seconds(self) -> float:
        """Simulated wall-clock execution time in seconds."""
        return self.result.wall_seconds

    @property
    def stats(self) -> Dict[str, int]:
        return self.result.stats

    def normalised_to(self, baseline: "SimulationOutcome") -> float:
        """Execution time relative to a baseline outcome (lower is better)."""
        if not baseline.time:
            return 0.0
        return self.time / baseline.time


@dataclass(frozen=True)
class ComparisonOutcome:
    """The result of one :func:`compare` call (a normalised matrix)."""

    campaign: Campaign
    result: CampaignResult

    @property
    def benchmarks(self) -> List[str]:
        return list(self.result.benchmarks)

    @property
    def labels(self) -> List[str]:
        """Series labels, baseline excluded."""
        return [label for label in self.result.labels
                if label != self.result.baseline_label]

    @property
    def baseline_label(self) -> str:
        return self.result.baseline_label

    def outcome(self, benchmark: str, label: str,
                seed: Optional[int] = None) -> SimulationOutcome:
        """The typed outcome of one cell of the matrix."""
        run = self.result.result(benchmark, label, seed)
        series = {**self.campaign.configs}
        if self.campaign.baseline_config is not None:
            series[self.campaign.baseline_label] = \
                self.campaign.baseline_config
        return SimulationOutcome(
            benchmark=benchmark, label=label, machine=series[label],
            seed=self.result.seeds[0] if seed is None else seed,
            instructions_requested=self.campaign.instructions, result=run)

    def normalised(self) -> Dict[str, Dict[str, float]]:
        """label -> {benchmark -> time normalised to the baseline}."""
        return self.result.normalised()

    def geomeans(self) -> Dict[str, float]:
        return self.result.geomeans()

    def render(self, fmt: str = "text", title: str = "") -> str:
        """The normalised table in ``text`` / ``markdown`` / ``csv``."""
        return Report.from_campaign(self.result, title=title).render(fmt)


@dataclass(frozen=True)
class SweepOutcome:
    """The result of one :func:`sweep` call: one series per value."""

    parameter: str
    values: List[Any]
    comparison: ComparisonOutcome

    def normalised(self) -> Dict[str, Dict[str, float]]:
        return self.comparison.normalised()

    def geomeans(self) -> Dict[str, float]:
        """str(value) -> geomean normalised time."""
        return self.comparison.geomeans()

    def best_value(self) -> Any:
        """The swept value with the lowest geomean normalised time."""
        geomeans = self.geomeans()
        return min(self.values, key=lambda value: geomeans[str(value)])

    def render(self, fmt: str = "text") -> str:
        return self.comparison.render(
            fmt, title=f"Sweep over {self.parameter}")


# -- the facade ---------------------------------------------------------------

def simulate(workload: WorkloadLike,
             machine: Optional[MachineLike] = None, *,
             scheme: Optional[SchemeLike] = None,
             seed: int = DEFAULT_SEED,
             instructions: Optional[int] = None,
             warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
             collect_stats: bool = False,
             label: Optional[str] = None,
             store: Optional[ResultStore] = None,
             cache: Optional[Dict[str, SimulationResult]] = None,
             trace: Union[bool, str, os.PathLike, Tracer, None] = None,
             chrome_trace: Union[str, os.PathLike, None] = None,
             metrics_every: Optional[int] = None
             ) -> SimulationOutcome:
    """Run one workload on one machine and return a typed outcome.

    ``workload`` and ``machine`` take anything :func:`resolve_workload` /
    :func:`resolve_machine` accept.  ``scheme`` overrides the machine's
    protection scheme uniformly (``simulate("mcf", scheme="stt-future")``).
    ``instructions`` defaults to ``REPRO_INSTRUCTIONS`` or the module
    default; the machine is widened automatically when the workload needs
    more cores.  ``store`` and ``cache`` opt into the campaign layer's
    persistent / in-memory result reuse.

    The telemetry options run the cell *instrumented*: ``trace=True``
    collects cycle-level events on the returned ``outcome.tracer``, a path
    additionally writes them as JSONL, a :class:`Tracer` collects into
    your own instance (preserving its category filter); ``chrome_trace``
    writes a Perfetto-loadable Chrome trace; ``metrics_every=N`` snapshots
    the statistics tree every N cycles onto ``outcome.timeseries``.
    Instrumented runs always simulate inline — caches are neither
    consulted nor written, because a cached result has no event stream.
    """
    profile = resolve_workload(workload)
    config = resolve_machine(machine)
    if scheme is not None:
        config = config.with_mode(scheme)
    label = label or (machine_label(machine) if scheme is None
                      else get_scheme(scheme).display_name)
    spec = RunSpec(profile=profile, label=label, config=config,
                   instructions=instructions_per_workload(instructions),
                   seed=seed, warmup_fraction=warmup_fraction,
                   collect_stats=collect_stats)
    instrumented = ((trace is not None and trace is not False)
                    or chrome_trace is not None or metrics_every is not None)
    if instrumented:
        return _simulate_instrumented(spec, trace=trace,
                                      chrome_trace=chrome_trace,
                                      metrics_every=metrics_every)
    results = execute_cells([spec], jobs=1, store=store, cache=cache)
    return SimulationOutcome(
        benchmark=profile.name, label=label, machine=config, seed=seed,
        instructions_requested=spec.instructions,
        result=results[spec.key()])


def _simulate_instrumented(spec: RunSpec, *,
                           trace: Union[bool, str, os.PathLike, Tracer, None],
                           chrome_trace: Union[str, os.PathLike, None],
                           metrics_every: Optional[int]
                           ) -> SimulationOutcome:
    """One cell, run inline with telemetry attached.

    Mirrors :func:`repro.harness.campaign.run_cell` exactly (same trace
    generation, core widening and simulator construction), so an
    instrumented run's cycles and statistics are bit-identical to the
    cached path's.
    """
    workload = generate_workload(spec.profile, spec.instructions,
                                 seed=spec.seed)
    cores_needed = max(1, spec.profile.num_threads)
    system_config = spec.config.with_cores(max(spec.config.num_cores,
                                               cores_needed))
    system = build_system(system_config, seed=spec.seed)
    tracer: Optional[Tracer] = None
    if (trace is not None and trace is not False) or chrome_trace is not None:
        tracer = trace if isinstance(trace, Tracer) else Tracer()
        tracer.attach(system)
    sampler = (MetricsSampler(metrics_every)
               if metrics_every is not None else None)
    simulator = Simulator(system, sampler=sampler)
    with tracing(tracer):
        result = simulator.run(workload, collect_stats=spec.collect_stats,
                               warmup_fraction=spec.warmup_fraction)
    trace_path: Optional[Path] = None
    if tracer is not None and isinstance(trace, (str, os.PathLike)):
        trace_path = Path(trace)
        tracer.write_jsonl(trace_path)
    chrome_path: Optional[Path] = None
    if tracer is not None and chrome_trace is not None:
        chrome_path = Path(chrome_trace)
        tracer.write_chrome(chrome_path)
    return SimulationOutcome(
        benchmark=spec.benchmark, label=spec.label, machine=spec.config,
        seed=spec.seed, instructions_requested=spec.instructions,
        result=result, tracer=tracer, trace_path=trace_path,
        chrome_path=chrome_path,
        timeseries=sampler.timeseries if sampler is not None else None)


def _entry_config(entry: Any, base: SystemConfig) -> SystemConfig:
    """One series entry: scheme names apply to the base machine, the rest
    resolve as machines."""
    if isinstance(entry, ProtectionMode):
        entry = scheme_name(entry)
    if isinstance(entry, str) and is_registered(entry):
        return base.with_mode(entry)
    return resolve_machine(entry)


def _entry_label(entry: Any) -> str:
    if isinstance(entry, ProtectionMode):
        entry = scheme_name(entry)
    if isinstance(entry, str) and is_registered(entry):
        return get_scheme(entry).display_name
    return machine_label(entry)


def _series_configs(schemes: Union[Sequence[Any], Mapping[str, Any]],
                    base: SystemConfig) -> Dict[str, SystemConfig]:
    """Expand :func:`compare`'s series argument into label -> config."""
    if isinstance(schemes, Mapping):
        return {str(label): _entry_config(entry, base)
                for label, entry in schemes.items()}
    configs: Dict[str, SystemConfig] = {}
    for entry in schemes:
        label = _entry_label(entry)
        if label in configs:
            # Silently overwriting would drop a requested series.
            raise ValueError(
                f"two compared machines derive the same series label "
                f"{label!r}; pass an explicit {{label: machine}} mapping "
                f"to disambiguate")
        configs[label] = _entry_config(entry, base)
    return configs


def compare(schemes: Union[Sequence[Any], Mapping[str, Any]],
            suite: Union[str, Sequence[str]] = "spec_int", *,
            machine: Optional[MachineLike] = None,
            baseline: Optional[MachineLike] = DEFAULT_BASELINE,
            instructions: Optional[int] = None,
            seed: int = DEFAULT_SEED,
            replicates: int = 1,
            warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
            collect_stats: bool = False,
            store: Optional[ResultStore] = None,
            jobs: Optional[int] = None,
            max_retries: Optional[int] = None,
            cell_timeout: Optional[float] = None,
            progress: Optional[Callable[[int, int], None]] = None
            ) -> ComparisonOutcome:
    """Run a suite × scheme matrix normalised against a baseline.

    ``schemes`` is a sequence of scheme names and/or machine-likes (series
    labels come from the registry's display names / preset names), or an
    explicit label -> machine-like mapping.  ``machine`` is the base
    machine scheme names are applied to (default: the Table 1 machine).
    ``baseline`` follows the same rules (default: the unprotected scheme);
    pass ``None`` to normalise against the first series instead.

    Execution is supervised (:mod:`repro.harness.executor`):
    ``max_retries`` / ``cell_timeout`` override the ``REPRO_MAX_RETRIES``
    / ``REPRO_CELL_TIMEOUT`` defaults; cells that fail permanently are
    quarantined on ``outcome.result.failures`` rather than aborting the
    matrix.  ``progress`` observes ``(done, total)`` over the unique
    cells (the simulation service uses this for job-status polling);
    ``None`` keeps the default TTY progress line.
    """
    campaign = build_comparison(
        schemes, suite, machine=machine, baseline=baseline,
        instructions=instructions, seed=seed, replicates=replicates,
        warmup_fraction=warmup_fraction, collect_stats=collect_stats,
        store=store, jobs=jobs, max_retries=max_retries,
        cell_timeout=cell_timeout)
    return ComparisonOutcome(campaign=campaign,
                             result=campaign.run(progress=progress))


def build_comparison(schemes: Union[Sequence[Any], Mapping[str, Any]],
                     suite: Union[str, Sequence[str]] = "spec_int", *,
                     machine: Optional[MachineLike] = None,
                     baseline: Optional[MachineLike] = DEFAULT_BASELINE,
                     baseline_label: str = "baseline",
                     instructions: Optional[int] = None,
                     seed: int = DEFAULT_SEED,
                     replicates: int = 1,
                     warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                     collect_stats: bool = False,
                     store: Optional[ResultStore] = None,
                     jobs: Optional[int] = None,
                     cache: Optional[Dict[str, SimulationResult]] = None,
                     max_retries: Optional[int] = None,
                     cell_timeout: Optional[float] = None
                     ) -> Campaign:
    """The :class:`Campaign` behind :func:`compare`, not yet executed.

    The command line uses this to run the same matrix under a profiler,
    and the :class:`~repro.sim.runner.ExperimentRunner` to share its
    in-memory result ``cache``; ordinary callers want :func:`compare`.
    """
    base = resolve_machine(machine)
    configs = _series_configs(schemes, base)
    if not configs:
        raise ValueError("compare needs at least one scheme or machine")
    baseline_config = None
    if baseline is not None:
        baseline_config = _entry_config(baseline, base)
    suites = [suite] if isinstance(suite, str) else list(suite)
    return Campaign.from_suites(
        suites, configs=configs, baseline_config=baseline_config,
        baseline_label=baseline_label, instructions=instructions,
        seed=seed, replicates=replicates, warmup_fraction=warmup_fraction,
        collect_stats=collect_stats, store=store, jobs=jobs, cache=cache,
        max_retries=max_retries, cell_timeout=cell_timeout)


def _replace_path(config: Any, path: str, value: Any) -> Any:
    """Replace a (possibly nested) configuration field by dotted path.

    Machine-level ``SystemConfig`` fields go through ``_override`` so an
    explicit per-core ``cores`` list is updated too — the per-core entries
    are what actually drive construction, and leaving them stale would
    silently ignore the swept value (every machine preset carries such a
    list).  The machine-level ``core`` pipeline maps onto the per-core
    ``pipeline`` field by hand, since the names differ.
    """
    head, _, rest = path.partition(".")
    if head not in getattr(type(config), "__dataclass_fields__", {}):
        raise ValueError(
            f"{type(config).__name__} has no field {head!r} "
            f"(sweep parameter paths use dots: 'data_filter.size_bytes')")
    if rest:
        value = _replace_path(getattr(config, head), rest, value)
    if isinstance(config, SystemConfig):
        if head == "core" and config.cores is not None:
            return replace(config, core=value, cores=tuple(
                replace(core, pipeline=value) for core in config.cores))
        return config._override(**{head: value})
    return replace(config, **{head: value})


def sweep(parameter: str, values: Sequence[Any],
          suite: Union[str, Sequence[str]] = "spec_int", *,
          machine: Optional[MachineLike] = None,
          scheme: Optional[SchemeLike] = None,
          baseline: Optional[MachineLike] = DEFAULT_BASELINE,
          instructions: Optional[int] = None,
          seed: int = DEFAULT_SEED,
          replicates: int = 1,
          warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
          store: Optional[ResultStore] = None,
          jobs: Optional[int] = None,
          progress: Optional[Callable[[int, int], None]] = None
          ) -> SweepOutcome:
    """Sweep one configuration parameter across ``values``.

    ``parameter`` is a dotted path into :class:`SystemConfig`
    (``"data_filter.size_bytes"``, ``"l2.associativity"``,
    ``"core.width"``); each value becomes one series labelled
    ``str(value)``, normalised against ``baseline`` like any comparison.
    """
    base = resolve_machine(machine)
    if scheme is not None:
        base = base.with_mode(scheme)
    series = {str(value): _replace_path(base, parameter, value)
              for value in values}
    if len(series) != len(values):
        raise ValueError(f"sweep values must be unique, got {values!r}")
    # The baseline must be the *swept* base machine under the baseline
    # scheme, not the Table 1 default — otherwise normalised times would
    # compare across different machines.
    comparison = compare(series, suite, machine=base, baseline=baseline,
                         instructions=instructions, seed=seed,
                         replicates=replicates,
                         warmup_fraction=warmup_fraction, store=store,
                         jobs=jobs, progress=progress)
    return SweepOutcome(parameter=parameter, values=list(values),
                        comparison=comparison)


__all__ = [
    "ComparisonOutcome",
    "DEFAULT_BASELINE",
    "MachineLike",
    "SimulationOutcome",
    "SweepOutcome",
    "WorkloadLike",
    "build_comparison",
    "compare",
    "machine_label",
    "resolve_machine",
    "resolve_workload",
    "simulate",
    "sweep",
]
