"""TLBs, the speculative filter TLB and the page-table walker."""

from repro.tlb.filter_tlb import FilterTLB
from repro.tlb.page_walker import MMU, PageTableWalker, TranslationResult
from repro.tlb.tlb import TLB, TLBEntry, TLBTag

__all__ = [
    "FilterTLB",
    "MMU",
    "PageTableWalker",
    "TLB",
    "TLBEntry",
    "TLBTag",
    "TranslationResult",
]
