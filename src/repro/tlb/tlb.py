"""Translation lookaside buffers.

Table 1 specifies 64-entry, fully associative, split instruction/data TLBs.
A TLB maps (process, virtual page) to a physical frame; misses are resolved
by the hardware page-table walker.  The speculative *filter TLB* of
section 4.7 lives in :mod:`repro.tlb.filter_tlb`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.params import TLBConfig
from repro.common.statistics import StatGroup


@dataclass(frozen=True, slots=True)
class TLBTag:
    """The (process, virtual page) key a TLB entry is looked up by.

    Kept as the public face of :attr:`TLBEntry.tag`; internally the TLB
    keys its entry map by plain ``(process_id, virtual_page)`` tuples,
    which hash several times faster than a frozen dataclass and allocate
    nothing on the lookup path.
    """

    process_id: int
    virtual_page: int


@dataclass(slots=True)
class TLBEntry:
    """One cached translation."""

    tag: TLBTag
    frame: int
    writable: bool = True
    speculative: bool = False


class TLB:
    """A fully associative TLB with LRU replacement."""

    def __init__(self, config: Optional[TLBConfig] = None,
                 entries: Optional[int] = None,
                 stats: Optional[StatGroup] = None,
                 name: str = "tlb") -> None:
        self.config = config or TLBConfig()
        self.capacity = entries if entries is not None else self.config.entries
        if self.capacity <= 0:
            raise ValueError("TLB needs at least one entry")
        self.page_size = self.config.page_size
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page size must be a power of two")
        self._page_shift = self.page_size.bit_length() - 1
        self._entries: "OrderedDict[Tuple[int, int], TLBEntry]" = OrderedDict()
        stats = stats or StatGroup(name)
        self.stats = stats
        self._hits = stats.counter("hits")
        self._misses = stats.counter("misses")
        self._evictions = stats.counter("evictions")
        self._flushes = stats.counter("flushes")

    def _tag(self, process_id: int, virtual_address: int) -> Tuple[int, int]:
        return process_id, virtual_address >> self._page_shift

    def lookup(self, process_id: int,
               virtual_address: int) -> Optional[TLBEntry]:
        """Return the entry translating ``virtual_address``, if cached."""
        tag = (process_id, virtual_address >> self._page_shift)
        entry = self._entries.get(tag)
        if entry is None:
            self._misses.increment()
            return None
        self._entries.move_to_end(tag)
        self._hits.increment()
        return entry

    def probe(self, process_id: int,
              virtual_address: int) -> Optional[TLBEntry]:
        """Lookup without updating LRU or statistics (attack/test helper)."""
        return self._entries.get(
            (process_id, virtual_address >> self._page_shift))

    def insert(self, process_id: int, virtual_address: int, frame: int,
               writable: bool = True,
               speculative: bool = False) -> Tuple[TLBEntry, Optional[TLBEntry]]:
        """Install a translation; returns (entry, evicted_entry_or_None)."""
        tag = (process_id, virtual_address >> self._page_shift)
        victim: Optional[TLBEntry] = None
        entry = self._entries.get(tag)
        if entry is not None:
            self._entries.move_to_end(tag)
            entry.frame = frame
            entry.writable = writable
            entry.speculative = speculative
            return entry, None
        if len(self._entries) >= self.capacity:
            _, victim = self._entries.popitem(last=False)
            self._evictions.increment()
        entry = TLBEntry(tag=TLBTag(*tag), frame=frame, writable=writable,
                         speculative=speculative)
        self._entries[tag] = entry
        return entry, victim

    def translate(self, process_id: int,
                  virtual_address: int) -> Optional[int]:
        """Full translation through the TLB (None on a miss)."""
        entry = self.lookup(process_id, virtual_address)
        if entry is None:
            return None
        return (entry.frame * self.page_size
                + (virtual_address & (self.page_size - 1)))

    def invalidate(self, process_id: int, virtual_address: int) -> bool:
        tag = self._tag(process_id, virtual_address)
        if tag in self._entries:
            del self._entries[tag]
            return True
        return False

    def flush(self) -> int:
        """Drop every entry; returns how many were dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        self._flushes.increment()
        return dropped

    def flush_process(self, process_id: int) -> int:
        """Drop entries belonging to one process (used on address-space exit)."""
        victims = [tag for tag in self._entries if tag[0] == process_id]
        for tag in victims:
            del self._entries[tag]
        return len(victims)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value
