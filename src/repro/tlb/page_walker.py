"""The hardware page-table walker.

On a TLB miss the walker resolves the translation from the per-process page
table.  The walk costs a fixed latency (several dependent memory accesses in
a real machine).  Under MuonTrap the walker's own cache fills go through the
filter cache, and translations triggered by speculative instructions are
installed only in the filter TLB; the committing instruction re-translates
(section 4.7), which this module models with the ``speculative`` flag on
:meth:`walk`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.params import TLBConfig
from repro.common.statistics import StatGroup
from repro.memory.page_table import AddressSpace
from repro.tlb.filter_tlb import FilterTLB
from repro.tlb.tlb import TLB


@dataclass(slots=True)
class TranslationResult:
    """Outcome of a translation request."""

    physical_address: Optional[int]
    latency: int
    tlb_hit: bool
    filter_hit: bool = False
    walked: bool = False
    fault: bool = False


class PageTableWalker:
    """Resolves TLB misses against an :class:`AddressSpace`."""

    def __init__(self, config: Optional[TLBConfig] = None,
                 stats: Optional[StatGroup] = None) -> None:
        self.config = config or TLBConfig()
        stats = stats or StatGroup("walker")
        self.stats = stats
        self._walks = stats.counter("walks")
        self._faults = stats.counter("faults")

    def walk(self, address_space: AddressSpace,
             virtual_address: int) -> Optional[int]:
        """Resolve one translation; returns the physical address or None."""
        self._walks.increment()
        physical = address_space.translate(virtual_address, allocate=True)
        if physical is None:
            self._faults.increment()
        return physical

    @property
    def walk_latency(self) -> int:
        return self.config.walk_latency

    # -- observability -------------------------------------------------------
    def attach_tracer(self, tracer, unit: str = "walker",
                      core: "Optional[int]" = None) -> None:
        """Emit a ``tlb walk`` trace event per page-table walk.

        The wrapper is an instance attribute shadowing the class method, so
        untraced walkers pay nothing (the zero-cost-when-disabled contract
        of :mod:`repro.telemetry`).  Events are stamped with the tracer's
        cycle cursor (walks carry no timestamp of their own).
        """
        emit = tracer.emit
        inner_walk = self.walk

        def walk(address_space: AddressSpace,
                 virtual_address: int) -> Optional[int]:
            physical = inner_walk(address_space, virtual_address)
            emit("tlb", "walk", core=core, address=virtual_address,
                 unit=unit, fault=physical is None)
            return physical

        self.walk = walk


class MMU:
    """Combines a TLB, an optional filter TLB and the page-table walker.

    This is the per-core translation path used by the memory systems: the
    data side and instruction side each instantiate one.
    """

    def __init__(self, config: Optional[TLBConfig] = None,
                 use_filter_tlb: bool = True,
                 stats: Optional[StatGroup] = None,
                 name: str = "mmu") -> None:
        self.config = config or TLBConfig()
        stats = stats or StatGroup(name)
        self.stats = stats
        self.tlb = TLB(config=self.config, stats=stats.child("tlb"))
        self.filter_tlb: Optional[FilterTLB] = None
        if use_filter_tlb:
            self.filter_tlb = FilterTLB(config=self.config, main_tlb=self.tlb,
                                        stats=stats.child("filter_tlb"))
        self.walker = PageTableWalker(config=self.config,
                                      stats=stats.child("walker"))

    def translate(self, address_space: AddressSpace, virtual_address: int,
                  speculative: bool = False) -> TranslationResult:
        """Translate a virtual address for a (possibly speculative) access.

        Non-speculative accesses fill the main TLB on a miss; speculative
        accesses fill only the filter TLB when one is present, leaving the
        non-speculative TLB untouched (section 4.7).
        """
        process_id = address_space.process_id
        entry = self.tlb.lookup(process_id, virtual_address)
        if entry is not None:
            physical = (entry.frame * self.config.page_size
                        + virtual_address % self.config.page_size)
            return TranslationResult(physical_address=physical,
                                     latency=self.config.hit_latency,
                                     tlb_hit=True)
        if self.filter_tlb is not None:
            filter_entry = self.filter_tlb.lookup(process_id, virtual_address)
            if filter_entry is not None:
                physical = (filter_entry.frame * self.config.page_size
                            + virtual_address % self.config.page_size)
                return TranslationResult(physical_address=physical,
                                         latency=self.config.hit_latency,
                                         tlb_hit=False, filter_hit=True)
        physical = self.walker.walk(address_space, virtual_address)
        if physical is None:
            return TranslationResult(physical_address=None,
                                     latency=self.walker.walk_latency,
                                     tlb_hit=False, walked=True, fault=True)
        frame = physical // self.config.page_size
        if speculative and self.filter_tlb is not None:
            self.filter_tlb.insert_speculative(process_id, virtual_address,
                                               frame)
        else:
            self.tlb.insert(process_id, virtual_address, frame)
        return TranslationResult(physical_address=physical,
                                 latency=self.walker.walk_latency,
                                 tlb_hit=False, walked=True)

    def translate_address(self, address_space: AddressSpace,
                          virtual_address: int,
                          speculative: bool = False
                          ) -> "tuple[Optional[int], int]":
        """Hot-path translation: ``(physical_address, latency)`` only.

        Same TLB / filter-TLB / walker semantics as :meth:`translate`, but
        returns a plain tuple instead of building a
        :class:`TranslationResult` — the memory systems call this once per
        simulated access and only ever read those two fields.
        """
        process_id = address_space.process_id
        config = self.config
        entry = self.tlb.lookup(process_id, virtual_address)
        if entry is not None:
            return (entry.frame * config.page_size
                    + (virtual_address & (config.page_size - 1)),
                    config.hit_latency)
        if self.filter_tlb is not None:
            filter_entry = self.filter_tlb.lookup(process_id, virtual_address)
            if filter_entry is not None:
                return (filter_entry.frame * config.page_size
                        + (virtual_address & (config.page_size - 1)),
                        config.hit_latency)
        physical = self.walker.walk(address_space, virtual_address)
        if physical is None:
            return None, self.walker.walk_latency
        frame = physical // config.page_size
        if speculative and self.filter_tlb is not None:
            self.filter_tlb.insert_speculative(process_id, virtual_address,
                                               frame)
        else:
            self.tlb.insert(process_id, virtual_address, frame)
        return physical, self.walker.walk_latency

    def commit_translation(self, address_space: AddressSpace,
                           virtual_address: int) -> None:
        """Promote a speculative translation when its instruction commits."""
        if self.filter_tlb is None:
            return
        promoted = self.filter_tlb.commit(address_space.process_id,
                                          virtual_address)
        if not promoted:
            # The paper re-translates at commit when the speculative entry is
            # gone; the result lands directly in the non-speculative TLB.
            physical = address_space.translate(virtual_address, allocate=True)
            if physical is not None:
                self.tlb.insert(address_space.process_id, virtual_address,
                                physical // self.config.page_size)

    def context_switch(self) -> None:
        """Flush speculative translation state on a protection-domain switch."""
        if self.filter_tlb is not None:
            self.filter_tlb.flush()

    # -- observability -------------------------------------------------------
    def attach_tracer(self, tracer, unit: str = "mmu",
                      core: Optional[int] = None) -> None:
        """Trace this MMU's page-table walks (see
        :meth:`PageTableWalker.attach_tracer`)."""
        self.walker.attach_tracer(tracer, unit=unit, core=core)
