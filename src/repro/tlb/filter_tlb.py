"""The speculative filter TLB (section 4.7).

Speculative translations must not evict non-speculative TLB entries,
otherwise an attacker can mount a prime-and-probe attack on the TLB itself.
MuonTrap therefore stores translations fetched by speculative instructions
in a small filter TLB; when the instruction commits, the translation is
moved into the non-speculative TLB, and the filter TLB is flushed on every
context switch exactly like the filter caches.
"""

from __future__ import annotations

from typing import Optional

from repro.common.params import TLBConfig
from repro.common.statistics import StatGroup
from repro.tlb.tlb import TLB, TLBEntry


class FilterTLB:
    """A small TLB holding only speculative translations."""

    def __init__(self, config: Optional[TLBConfig] = None,
                 main_tlb: Optional[TLB] = None,
                 stats: Optional[StatGroup] = None) -> None:
        self.config = config or TLBConfig()
        stats = stats or StatGroup("filter_tlb")
        self.stats = stats
        self._tlb = TLB(config=self.config, entries=self.config.filter_entries,
                        stats=stats.child("entries"), name="filter")
        self.main_tlb = main_tlb
        self._promotions = stats.counter("promotions",
                                         "translations committed to main TLB")
        self._flushes = stats.counter("flushes")

    def lookup(self, process_id: int,
               virtual_address: int) -> Optional[TLBEntry]:
        return self._tlb.lookup(process_id, virtual_address)

    def probe(self, process_id: int,
              virtual_address: int) -> Optional[TLBEntry]:
        return self._tlb.probe(process_id, virtual_address)

    def insert_speculative(self, process_id: int, virtual_address: int,
                           frame: int, writable: bool = True) -> TLBEntry:
        """Record a translation performed on behalf of a speculative access."""
        entry, _ = self._tlb.insert(process_id, virtual_address, frame,
                                    writable=writable, speculative=True)
        return entry

    def commit(self, process_id: int, virtual_address: int) -> bool:
        """Promote a speculative translation into the non-speculative TLB.

        Called when the instruction whose access required the translation
        commits.  Returns False if the translation has already been evicted
        from the filter TLB (the main TLB will simply re-walk on next use).
        """
        entry = self._tlb.probe(process_id, virtual_address)
        if entry is None:
            return False
        if self.main_tlb is not None:
            self.main_tlb.insert(process_id, virtual_address, entry.frame,
                                 writable=entry.writable, speculative=False)
        self._promotions.increment()
        return True

    def flush(self) -> int:
        """Invalidate all speculative translations (context switch)."""
        self._flushes.increment()
        return self._tlb.flush()

    def __len__(self) -> int:
        return len(self._tlb)

    @property
    def promotions(self) -> int:
        return self._promotions.value
