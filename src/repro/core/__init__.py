"""MuonTrap: the speculative filter caches and the protected memory system."""

from repro.core.domains import (
    DomainKind,
    DomainTracker,
    ProtectionDomain,
)
from repro.core.filter_cache import FilterLookupResult, SpeculativeFilterCache
from repro.core.muontrap import MuonTrapMemorySystem

__all__ = [
    "DomainKind",
    "DomainTracker",
    "FilterLookupResult",
    "MuonTrapMemorySystem",
    "ProtectionDomain",
    "SpeculativeFilterCache",
]
