"""The speculative filter cache (sections 4.1-4.5 of the paper).

A filter cache is a small, 1-cycle, set-associative L0 placed between the
core and the L1.  It is the only structure speculative memory state is
allowed to reach:

* lines are filled directly from the hierarchy without touching the L1/L2
  (non-inclusive, non-exclusive);
* every line carries a *committed* bit (section 4.2): it is set when an
  instruction using the line reaches in-order commit, at which point the
  line is written through to the L1;
* validity is stored in per-line valid bits held outside the SRAM so the
  whole cache can be invalidated in a single cycle (section 4.3);
* lines are tagged with both the virtual and the physical address
  (section 4.4) so the cache is virtually indexed from the CPU side and can
  still be snooped by physical address;
* coherence-wise a line is only ever Shared; the ``SE`` pseudo-state flag
  records that an unprotected system would have taken Exclusive, so an
  asynchronous upgrade can be launched at commit (section 4.5);
* each line records the hierarchy level it was filled from so commit-time
  prefetch notifications can be routed there (section 4.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.caches.cache_line import CacheLine
from repro.caches.mshr import MSHRFile
from repro.coherence.states import I, S
from repro.common.addresses import block_align
from repro.common.params import FilterCacheConfig
from repro.common.statistics import StatGroup


@dataclass(slots=True)
class FilterLookupResult:
    """Outcome of a CPU-side filter-cache lookup."""

    hit: bool
    latency: int
    line: Optional[CacheLine] = None


class SpeculativeFilterCache:
    """The MuonTrap L0 cache for one core (data or instruction side)."""

    def __init__(self, config: Optional[FilterCacheConfig] = None,
                 stats: Optional[StatGroup] = None,
                 name: str = "filter_cache") -> None:
        self.config = config or FilterCacheConfig()
        self.name = name
        self.line_size = self.config.line_size
        self.num_sets = self.config.num_sets
        self.associativity = min(self.config.associativity,
                                 self.config.num_lines)
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError("line size must be a power of two")
        self._offset_mask = -self.line_size          # == ~(line_size - 1)
        self._line_shift = self.line_size.bit_length() - 1
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(self.associativity)]
            for _ in range(self.num_sets)
        ]
        # Valid bits live in registers outside the SRAM so that a protection
        # domain switch can clear the whole cache in one cycle.
        self._valid_bits: List[List[bool]] = [
            [False] * self.associativity for _ in range(self.num_sets)
        ]
        # Physical-tag index: physical line address -> (set, way) of the
        # line installed by the last fill.  Verified before use (flushes and
        # invalidations leave stale entries behind), turning the
        # all-set snoop scan of probe_physical into an O(1) lookup.  Fills
        # are the only operation that sets a valid bit, and at most one
        # resident line can hold a given physical address (fills evict
        # aliases first), so the verified index is exact.
        self._physical_index: dict = {}
        self.mshrs = MSHRFile(self.config.mshrs)
        stats = stats or StatGroup(name)
        self.stats = stats
        self._hits = stats.counter("hits")
        self._misses = stats.counter("misses")
        self._fills = stats.counter("fills")
        self._evictions = stats.counter("evictions")
        self._uncommitted_evictions = stats.counter(
            "uncommitted_evictions",
            "lines evicted before any using instruction committed")
        self._flushes = stats.counter("flushes")
        self._lines_flushed = stats.counter("lines_flushed")
        self._commits = stats.counter("line_commits")
        self._snoop_invalidations = stats.counter("snoop_invalidations")

    # -- indexing -------------------------------------------------------------
    def line_address(self, address: int) -> int:
        return address & self._offset_mask

    def _set_index(self, address: int) -> int:
        return (address >> self._line_shift) % self.num_sets

    def _iter_valid(self, set_index: int):
        valid = self._valid_bits[set_index]
        lines = self._sets[set_index]
        for way in range(self.associativity):
            if valid[way]:
                yield way, lines[way]

    # -- CPU-side lookup (virtually indexed) -------------------------------------
    def lookup(self, virtual_address: int, now: int = 0,
               process_id: Optional[int] = None) -> FilterLookupResult:
        """Look the cache up by virtual address from the CPU side."""
        virtual_line = virtual_address & self._offset_mask
        set_index = (virtual_address >> self._line_shift) % self.num_sets
        valid = self._valid_bits[set_index]
        lines = self._sets[set_index]
        for way in range(self.associativity):
            if not valid[way]:
                continue
            line = lines[way]
            if line.virtual_tag != virtual_line:
                continue
            if process_id is not None and line.owner_process not in (
                    None, process_id):
                continue
            line.last_use = now
            self._hits.increment()
            return FilterLookupResult(hit=True,
                                      latency=self.config.hit_latency,
                                      line=line)
        self._misses.increment()
        return FilterLookupResult(hit=False, latency=self.config.hit_latency)

    # -- memory-side lookup (physically indexed) -----------------------------------
    def probe_physical(self, physical_address: int) -> Optional[CacheLine]:
        """Find a line by physical address (coherence snoops, aliasing).

        Lines are placed by their *virtual* set index (the cache is
        virtually indexed from the CPU side), so a physical probe cannot
        recompute the set from the address; the verified physical-tag index
        answers in O(1) what a scan of every set would.
        """
        physical_line = physical_address & self._offset_mask
        slot = self._physical_index.get(physical_line)
        if slot is None:
            return None
        set_index, way = slot
        if not self._valid_bits[set_index][way]:
            return None
        line = self._sets[set_index][way]
        if line.address != physical_line:
            return None
        return line

    def contains_physical(self, physical_address: int) -> bool:
        return self.probe_physical(physical_address) is not None

    def contains_virtual(self, virtual_address: int,
                         process_id: Optional[int] = None) -> bool:
        virtual_line = virtual_address & self._offset_mask
        set_index = (virtual_address >> self._line_shift) % self.num_sets
        valid = self._valid_bits[set_index]
        lines = self._sets[set_index]
        for way in range(self.associativity):
            if not valid[way]:
                continue
            line = lines[way]
            if line.virtual_tag == virtual_line and (
                    process_id is None or line.owner_process in (
                        None, process_id)):
                return True
        return False

    # -- fills ------------------------------------------------------------------
    def fill(self, virtual_address: int, physical_address: int, now: int, *,
             process_id: Optional[int] = None, committed: bool = False,
             se_upgrade: bool = False,
             fill_level: str = "l2") -> CacheLine:
        """Install a line brought in from the non-speculative hierarchy.

        The line is always installed in the Shared state; ``se_upgrade``
        records the SE pseudo-state.  Physical-address aliasing within the
        process is prevented by evicting any existing line with the same
        physical address first (section 4.4).
        """
        virtual_line = virtual_address & self._offset_mask
        physical_line = physical_address & self._offset_mask
        existing_physical = self.probe_physical(physical_address)
        if existing_physical is not None and (
                existing_physical.virtual_tag != virtual_line):
            self._invalidate_line(existing_physical)
        set_index = (virtual_address >> self._line_shift) % self.num_sets
        # Re-use the line if it is already present (refill after downgrade).
        valid = self._valid_bits[set_index]
        lines = self._sets[set_index]
        for reuse_way in range(self.associativity):
            if not valid[reuse_way]:
                continue
            line = lines[reuse_way]
            if line.virtual_tag == virtual_line:
                line.committed = line.committed or committed
                line.se_upgrade_pending = line.se_upgrade_pending or se_upgrade
                line.last_use = now
                return line
        way = self._choose_victim(set_index)
        line = lines[way]
        if valid[way]:
            self._evictions.increment()
            if not line.committed:
                self._uncommitted_evictions.increment()
        self._physical_index[physical_line] = (set_index, way)
        line.address = physical_line
        line.state = S
        line.dirty = False
        line.committed = committed
        line.virtual_tag = virtual_line
        line.owner_process = process_id
        line.se_upgrade_pending = se_upgrade
        line.fill_level = fill_level
        line.insert_time = now
        line.touch(now)
        self._valid_bits[set_index][way] = True
        self._fills.increment()
        return line

    def _choose_victim(self, set_index: int) -> int:
        for way in range(self.associativity):
            if not self._valid_bits[set_index][way]:
                return way
        # LRU among valid ways.
        oldest_way = 0
        oldest_time = self._sets[set_index][0].last_use
        for way in range(self.associativity):
            line = self._sets[set_index][way]
            if line.last_use < oldest_time:
                oldest_time = line.last_use
                oldest_way = way
        return oldest_way

    # -- commit / invalidation -----------------------------------------------------
    def mark_committed(self, virtual_address: int,
                       now: int = 0) -> Optional[CacheLine]:
        """Set the committed bit on the line holding ``virtual_address``.

        Returns the line so the caller can write it through to the L1 (and
        launch the SE upgrade if pending), or None if the line has already
        been evicted, in which case the caller re-requests it from the
        hierarchy (section 4.2).
        """
        virtual_line = virtual_address & self._offset_mask
        set_index = (virtual_address >> self._line_shift) % self.num_sets
        valid = self._valid_bits[set_index]
        lines = self._sets[set_index]
        for way in range(self.associativity):
            if not valid[way]:
                continue
            line = lines[way]
            if line.virtual_tag == virtual_line:
                if not line.committed:
                    line.committed = True
                    self._commits.increment()
                line.last_use = now
                return line
        return None

    def _invalidate_line(self, line: CacheLine) -> None:
        set_index = self._set_index(line.virtual_tag
                                    if line.virtual_tag is not None
                                    else line.address)
        for way in range(self.associativity):
            if self._sets[set_index][way] is line:
                self._valid_bits[set_index][way] = False
        line.invalidate()

    def invalidate_physical(self, physical_address: int) -> bool:
        """Invalidate by physical address (coherence broadcast target)."""
        line = self.probe_physical(physical_address)
        if line is None:
            return False
        self._snoop_invalidations.increment()
        self._invalidate_line(line)
        return True

    def flush(self) -> int:
        """Clear every valid bit in a single cycle (section 4.3).

        The write-through-at-commit policy means nothing needs writing back:
        committed data is already in the L1 and uncommitted data may simply
        disappear.  Returns the number of lines dropped.
        """
        dropped = 0
        for set_index in range(self.num_sets):
            for way in range(self.associativity):
                if self._valid_bits[set_index][way]:
                    dropped += 1
                    self._valid_bits[set_index][way] = False
                    self._sets[set_index][way].invalidate()
        self._flushes.increment()
        self._lines_flushed.increment(dropped)
        return dropped

    # -- observability ---------------------------------------------------------
    def attach_tracer(self, tracer, unit: str,
                      core: Optional[int] = None) -> None:
        """Emit trace events for installs/commits/invalidates/flushes.

        Instance-attribute wrappers shadow the class methods, so untraced
        filter caches pay nothing (the zero-cost-when-disabled contract of
        :mod:`repro.telemetry`).  Events carry physical line addresses so
        they correlate with the hierarchy's cache and coherence events.
        """
        emit = tracer.emit
        inner_fill = self.fill
        inner_commit = self.mark_committed
        inner_invalidate = self.invalidate_physical
        inner_flush = self.flush

        def fill(virtual_address, physical_address, now, **kwargs):
            line = inner_fill(virtual_address, physical_address, now,
                              **kwargs)
            emit("filter", "install", cycle=now, core=core,
                 address=line.address, unit=unit, committed=line.committed)
            return line

        def mark_committed(virtual_address, now=0):
            line = inner_commit(virtual_address, now)
            if line is not None:
                emit("filter", "commit", cycle=now, core=core,
                     address=line.address, unit=unit)
            return line

        def invalidate_physical(physical_address):
            present = inner_invalidate(physical_address)
            if present:
                emit("filter", "invalidate", core=core,
                     address=self.line_address(physical_address), unit=unit)
            return present

        def flush():
            dropped = inner_flush()
            emit("filter", "flush", core=core, unit=unit, lines=dropped)
            return dropped

        self.fill = fill
        self.mark_committed = mark_committed
        self.invalidate_physical = invalidate_physical
        self.flush = flush

    # -- introspection -------------------------------------------------------------
    def resident_lines(self) -> List[CacheLine]:
        return [line for set_index in range(self.num_sets)
                for _, line in self._iter_valid(set_index)]

    def occupancy(self) -> int:
        return len(self.resident_lines())

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def flushes(self) -> int:
        return self._flushes.value

    @property
    def uncommitted_evictions(self) -> int:
        return self._uncommitted_evictions.value
