"""The MuonTrap memory system (the paper's contribution, section 4).

One :class:`MuonTrapMemorySystem` serves all the cores of a simulated
machine.  Per core it owns a data filter cache, an instruction filter cache
and a filter TLB; underneath sits the shared non-speculative hierarchy
(private L1s, shared L2 with a stride prefetcher, MESI bus, DRAM).

Execute-time behaviour
    Speculative loads, stores-with-resolved-addresses and instruction
    fetches hit in the filter cache in one cycle or fill it from the
    hierarchy without touching any non-speculative cache.  Fills are always
    Shared; the ``SE`` pseudo-state is recorded when Exclusive would have
    been available.  Accesses that would disturb another core's private M/E
    line are NACKed and retried once non-speculative (section 4.5).

Commit-time behaviour
    The committed bit is set and the line written through to the L1
    (section 4.2); pending ``SE`` upgrades launch an asynchronous exclusive
    upgrade; commit-time prefetch notifications are sent to the level the
    line was filled from (section 4.6); committed stores obtain ownership,
    broadcasting filter-cache invalidations when the line was not already
    private (the Figure 7 event).

Domain switches
    Context switches, system calls and sandbox entries flush the filter
    caches and the filter TLB by clearing their valid bits (section 4.3);
    optionally the caches are also flushed on every misspeculation
    (section 4.9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.caches.hierarchy import NonSpeculativeHierarchy
from repro.common.params import ProtectionConfig, SystemConfig
from repro.common.rng import DeterministicRng
from repro.common.statistics import StatGroup
from repro.core.domains import DomainTracker
from repro.core.filter_cache import SpeculativeFilterCache
from repro.cpu.interface import MemoryAccessResult, MemorySystem
from repro.memory.page_table import PageTableManager
from repro.tlb.page_walker import MMU


@dataclass
class _CoreState:
    """Per-core MuonTrap structures."""

    data_filter: SpeculativeFilterCache
    inst_filter: SpeculativeFilterCache
    data_mmu: MMU
    inst_mmu: MMU
    domains: DomainTracker
    #: The core's own ablation switches: on a heterogeneous machine two
    #: MuonTrap cores may enable different subsets of the mechanisms.
    protection: ProtectionConfig


class MuonTrapMemorySystem(MemorySystem):
    """Filter caches + protected hierarchy implementing the full defence."""

    name = "muontrap"

    def __init__(self, config: SystemConfig,
                 page_tables: Optional[PageTableManager] = None,
                 stats: Optional[StatGroup] = None,
                 rng: Optional[DeterministicRng] = None,
                 hierarchy: Optional[NonSpeculativeHierarchy] = None,
                 core_ids: Optional[Sequence[int]] = None) -> None:
        self.config = config
        #: Machine-level view, kept for introspection; the access paths use
        #: the per-core protection in :class:`_CoreState`.
        self.protection: ProtectionConfig = config.protection
        stats = stats or StatGroup("muontrap")
        self.stats = stats
        rng = rng or DeterministicRng(0)
        self.page_tables = (page_tables if page_tables is not None
                            else PageTableManager(
                                page_size=config.tlb.page_size))
        self.hierarchy = (hierarchy if hierarchy is not None
                          else NonSpeculativeHierarchy(
                              config, stats=stats.child("hierarchy"),
                              rng=rng))
        self.core_ids = (list(core_ids) if core_ids is not None
                         else list(range(config.num_cores)))
        self._cores: Dict[int, _CoreState] = {}
        for core_id in self.core_ids:
            per_core = config.core_config(core_id)
            protection = per_core.protection
            core_stats = stats.child(f"core{core_id}")
            data_filter = SpeculativeFilterCache(
                per_core.data_filter, stats=core_stats.child("data_filter"),
                name="data_filter")
            inst_filter = SpeculativeFilterCache(
                per_core.inst_filter, stats=core_stats.child("inst_filter"),
                name="inst_filter")
            data_mmu = MMU(per_core.tlb,
                           use_filter_tlb=protection.filter_tlb,
                           stats=core_stats.child("dmmu"), name="dmmu")
            inst_mmu = MMU(per_core.tlb,
                           use_filter_tlb=protection.filter_tlb,
                           stats=core_stats.child("immu"), name="immu")
            domains = DomainTracker(core_id=core_id,
                                    stats=core_stats.child("domains"))
            state = _CoreState(data_filter=data_filter,
                               inst_filter=inst_filter,
                               data_mmu=data_mmu, inst_mmu=inst_mmu,
                               domains=domains, protection=protection)
            self._cores[core_id] = state
            # Register the filter caches as targets of exclusive-upgrade
            # invalidation broadcasts (section 4.5).  Registration is what
            # makes the fabric multicast to this core (see
            # CoherenceBus.has_peer_filter_listeners), so it is gated on
            # the core's coherence protection: the "fcache only" ablation
            # deliberately leaves its filter unprotected.
            if protection.coherence_protection:
                self.hierarchy.bus.register_filter_listener(
                    core_id, data_filter.invalidate_physical)
            domains.on_switch(
                lambda old, new, cid=core_id: self._flush_core(cid))
        self._committed_loads = stats.counter("committed_loads")
        self._committed_stores = stats.counter("committed_stores")
        self._store_broadcasts = stats.counter("store_filter_broadcasts")
        self._nack_retries = stats.counter("nack_retries")
        self._misspeculation_flushes = stats.counter("misspeculation_flushes")

    # -- helpers -----------------------------------------------------------------
    def core_state(self, core_id: int) -> _CoreState:
        return self._cores[core_id]

    def data_filter(self, core_id: int) -> SpeculativeFilterCache:
        return self._cores[core_id].data_filter

    def inst_filter(self, core_id: int) -> SpeculativeFilterCache:
        return self._cores[core_id].inst_filter

    def domains(self, core_id: int) -> DomainTracker:
        return self._cores[core_id].domains

    def _translate(self, core: _CoreState, process_id: int,
                   virtual_address: int, speculative: bool,
                   instruction: bool) -> tuple:
        space = self.page_tables.address_space(process_id)
        mmu = core.inst_mmu if instruction else core.data_mmu
        return mmu.translate_address(space, virtual_address,
                                     speculative=speculative)

    def _flush_core(self, core_id: int) -> None:
        """Clear all speculative state on a protection-domain switch."""
        core = self._cores[core_id]
        protection = core.protection
        if protection.data_filter_cache and \
                protection.clear_on_context_switch:
            core.data_filter.flush()
        if protection.instruction_filter_cache and \
                protection.clear_on_context_switch:
            core.inst_filter.flush()
        if protection.filter_tlb:
            core.data_mmu.context_switch()
            core.inst_mmu.context_switch()

    # -- execute-time data path -----------------------------------------------------
    def _data_access(self, core_id: int, process_id: int,
                     virtual_address: int, now: int, *, speculative: bool,
                     pc: int, is_store_prefetch: bool) -> MemoryAccessResult:
        core = self._cores[core_id]
        protection = core.protection
        physical, tlb_latency = self._translate(
            core, process_id, virtual_address, speculative, instruction=False)
        if physical is None:
            return MemoryAccessResult(latency=tlb_latency + 1,
                                      hit_level="fault")
        if not protection.data_filter_cache:
            # Ablation point "insecure L0 disabled entirely" is handled by the
            # baselines; with the data filter disabled we fall back to the
            # conventional L1 path.
            outcome = self.hierarchy.access(
                core_id, physical, now + tlb_latency, is_store=False,
                speculative=speculative, pc=pc,
                protect_coherence=protection.coherence_protection,
                train_prefetcher=not protection.commit_time_prefetch)
            return MemoryAccessResult(
                latency=tlb_latency + outcome.latency,
                hit_level=outcome.hit_level,
                must_retry_nonspeculative=outcome.nacked)

        filter_cache = core.data_filter
        lookup = filter_cache.lookup(virtual_address, now,
                                     process_id=process_id)
        if lookup.hit:
            return MemoryAccessResult(latency=tlb_latency + lookup.latency,
                                      hit_level="l0")
        # Filter miss: consult the L1 and below.  Serial lookup adds the
        # filter-cache cycle in front of the L1; the parallel-access
        # optimisation of section 6.5 overlaps the two.
        probe_penalty = 0 if protection.parallel_l1_access else \
            filter_cache.config.hit_latency
        outcome = self.hierarchy.read_for_filter(
            core_id, physical, now + tlb_latency + probe_penalty,
            speculative=speculative,
            protect_coherence=protection.coherence_protection,
            pc=pc, instruction=False,
            train_prefetcher_speculatively=not protection.commit_time_prefetch)
        if outcome.nacked:
            # Reduced coherency speculation: retry once non-speculative.
            return MemoryAccessResult(
                latency=tlb_latency + probe_penalty + outcome.latency,
                hit_level="nack", must_retry_nonspeculative=True)
        filter_cache.fill(virtual_address, physical,
                          now + tlb_latency + probe_penalty + outcome.latency,
                          process_id=process_id,
                          committed=not speculative,
                          se_upgrade=outcome.exclusive_available
                          and not is_store_prefetch,
                          fill_level=outcome.hit_level)
        return MemoryAccessResult(
            latency=tlb_latency + probe_penalty + outcome.latency,
            hit_level=outcome.hit_level)

    def load(self, core_id: int, process_id: int, virtual_address: int,
             now: int, *, speculative: bool, pc: int = 0
             ) -> MemoryAccessResult:
        return self._data_access(core_id, process_id, virtual_address, now,
                                 speculative=speculative, pc=pc,
                                 is_store_prefetch=False)

    def store_address_ready(self, core_id: int, process_id: int,
                            virtual_address: int, now: int, *,
                            speculative: bool, pc: int = 0
                            ) -> MemoryAccessResult:
        # A speculative store may prefetch the line into the filter cache in
        # Shared state, but must not obtain exclusive ownership until commit
        # (section 4.1 / 4.5).
        return self._data_access(core_id, process_id, virtual_address, now,
                                 speculative=speculative, pc=pc,
                                 is_store_prefetch=True)

    # -- execute-time instruction path -------------------------------------------------
    def fetch(self, core_id: int, process_id: int, virtual_address: int,
              now: int, *, speculative: bool, pc: int = 0
              ) -> MemoryAccessResult:
        core = self._cores[core_id]
        protection = core.protection
        physical, tlb_latency = self._translate(
            core, process_id, virtual_address, speculative, instruction=True)
        if physical is None:
            return MemoryAccessResult(latency=tlb_latency + 1,
                                      hit_level="fault")
        if not protection.instruction_filter_cache:
            outcome = self.hierarchy.access(
                core_id, physical, now + tlb_latency, instruction=True,
                speculative=speculative, pc=pc, train_prefetcher=False)
            return MemoryAccessResult(latency=tlb_latency + outcome.latency,
                                      hit_level=outcome.hit_level)
        filter_cache = core.inst_filter
        lookup = filter_cache.lookup(virtual_address, now,
                                     process_id=process_id)
        if lookup.hit:
            return MemoryAccessResult(latency=tlb_latency + lookup.latency,
                                      hit_level="l0i")
        probe_penalty = filter_cache.config.hit_latency
        outcome = self.hierarchy.read_for_filter(
            core_id, physical, now + tlb_latency + probe_penalty,
            speculative=speculative, protect_coherence=False,
            pc=pc, instruction=True)
        filter_cache.fill(virtual_address, physical,
                          now + tlb_latency + probe_penalty + outcome.latency,
                          process_id=process_id, committed=not speculative,
                          se_upgrade=False, fill_level=outcome.hit_level)
        return MemoryAccessResult(
            latency=tlb_latency + probe_penalty + outcome.latency,
            hit_level=outcome.hit_level)

    # -- commit-time ------------------------------------------------------------------
    def commit_load(self, core_id: int, process_id: int, virtual_address: int,
                    now: int, *, pc: int = 0) -> int:
        """Write-through-at-commit for a load (section 4.2); returns 0 cycles.

        The write-through and any SE upgrade are asynchronous, so commit is
        never stalled by the memory system under MuonTrap (section 4.5,
        "Wider Implications").
        """
        self._committed_loads.increment()
        core = self._cores[core_id]
        protection = core.protection
        space = self.page_tables.address_space(process_id)
        physical = space.translate(virtual_address)
        if physical is None:
            return 0
        core.data_mmu.commit_translation(space, virtual_address)
        if not protection.data_filter_cache:
            return 0
        line = core.data_filter.mark_committed(virtual_address, now)
        if line is not None:
            fill_level = line.fill_level or "l2"
            exclusive = line.se_upgrade_pending
            line.se_upgrade_pending = False
            self.hierarchy.commit_fill_l1(core_id, physical, now,
                                          exclusive=exclusive
                                          and protection.coherence_protection,
                                          instruction=False)
        else:
            # The line was evicted from the filter cache before commit: a
            # valid in-order execution would have cached it, so re-request it
            # into the L1 asynchronously (sections 4.2 and 4.10).
            fill_level = "l2"
            self.hierarchy.commit_fill_l1(core_id, physical, now,
                                          exclusive=False, instruction=False,
                                          asynchronous_reload=True)
        if protection.commit_time_prefetch and fill_level in (
                "l2", "memory"):
            self.hierarchy.notify_commit_prefetch(
                self.hierarchy.line_address(physical), pc, "l2", now)
        return 0

    def commit_store(self, core_id: int, process_id: int, virtual_address: int,
                     now: int, *, pc: int = 0) -> int:
        """A committed store obtains ownership and writes through to the L1."""
        self._committed_stores.increment()
        core = self._cores[core_id]
        protection = core.protection
        space = self.page_tables.address_space(process_id)
        physical = space.translate(virtual_address)
        if physical is None:
            return 0
        core.data_mmu.commit_translation(space, virtual_address)
        broadcast = protection.coherence_protection
        result = self.hierarchy.commit_store(core_id, physical, now,
                                             broadcast_to_filters=broadcast)
        if result.triggered_filter_broadcast:
            self._store_broadcasts.increment()
        if protection.data_filter_cache:
            line = core.data_filter.mark_committed(virtual_address, now)
            if line is not None:
                line.se_upgrade_pending = False
        if protection.commit_time_prefetch and result.hit_level in (
                "l2", "memory"):
            self.hierarchy.notify_commit_prefetch(
                self.hierarchy.line_address(physical), pc, "l2", now)
        # Ownership acquisition happens in the store buffer; only charge the
        # L1 portion against commit bandwidth.
        return min(result.latency,
                   self.hierarchy.l1d(core_id).config.hit_latency)

    def commit_fetch(self, core_id: int, process_id: int,
                     virtual_address: int, now: int, *, pc: int = 0) -> int:
        core = self._cores[core_id]
        space = self.page_tables.address_space(process_id)
        physical = space.translate(virtual_address)
        if physical is None:
            return 0
        core.inst_mmu.commit_translation(space, virtual_address)
        if not core.protection.instruction_filter_cache:
            return 0
        line = core.inst_filter.mark_committed(virtual_address, now)
        if line is not None:
            # Read-only data: no upgrade transaction is needed (section 4.7).
            self.hierarchy.commit_fill_l1(core_id, physical, now,
                                          exclusive=False, instruction=True)
        return 0

    # -- control events ------------------------------------------------------------------
    def squash(self, core_id: int, now: int) -> None:
        """Misspeculation: optionally clear the filter caches (section 4.9)."""
        core = self._cores[core_id]
        protection = core.protection
        if not protection.clear_on_misspeculate:
            return
        self._misspeculation_flushes.increment()
        if protection.data_filter_cache:
            core.data_filter.flush()
        if protection.instruction_filter_cache:
            core.inst_filter.flush()

    def context_switch(self, core_id: int, now: int) -> None:
        self._cores[core_id].domains.context_switch(
            to_process=self._cores[core_id].domains.current.process_id + 1)

    def switch_to_process(self, core_id: int, process_id: int,
                          now: int = 0) -> None:
        """Explicit context switch to a named process (attack framework)."""
        self._cores[core_id].domains.context_switch(to_process=process_id)

    def syscall(self, core_id: int, now: int = 0) -> None:
        self._cores[core_id].domains.syscall()

    def sandbox_entry(self, core_id: int, now: int) -> None:
        self._cores[core_id].domains.sandbox_entry(sandbox_id=1)

    def drain(self, core_id: int, now: int) -> None:
        """End of run: deliver prefetcher-training events still buffered."""
        self.hierarchy.flush_speculative_training(now)

    # -- statistics ------------------------------------------------------------------------
    @property
    def committed_stores(self) -> int:
        return self._committed_stores.value

    @property
    def store_filter_broadcasts(self) -> int:
        return self._store_broadcasts.value

    def filter_invalidate_rate(self) -> float:
        """Figure 7: proportion of committed stores needing a broadcast."""
        if not self._committed_stores.value:
            return 0.0
        return self._store_broadcasts.value / self._committed_stores.value


# -- scheme registration ------------------------------------------------------
from repro.schemes import SchemeSpec, _register_builtin

_register_builtin(SchemeSpec(
    name="muontrap",
    factory=MuonTrapMemorySystem,
    display_name="MuonTrap",
    description="The paper's contribution: speculative filter caches with "
                "timing-invariant coherence protection.",
    timing_invariant=True,
    supports_filter_caches=True,
    figure_series=True,
    builtin=True))
