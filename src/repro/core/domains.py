"""Protection-domain tracking.

MuonTrap clears its filter structures whenever execution crosses a
protection-domain boundary: a context switch between processes, a system
call into the kernel, or entry into (or out of) a sandboxed region of the
same process (sections 4.3 and 4.9).  This module provides a small per-core
tracker that the memory systems and the attack framework use to decide when
those flushes must happen, and to count them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.common.statistics import StatGroup


class DomainKind(enum.Enum):
    """The kinds of protection domain the threat model distinguishes."""

    USER_PROCESS = "user-process"
    KERNEL = "kernel"
    SANDBOX = "sandbox"


@dataclass(frozen=True)
class ProtectionDomain:
    """One protection domain: a process, the kernel, or a sandbox within one."""

    domain_id: int
    kind: DomainKind = DomainKind.USER_PROCESS
    process_id: int = 0
    label: str = ""

    def same_process(self, other: "ProtectionDomain") -> bool:
        return self.process_id == other.process_id


# Callbacks invoked when the domain changes; the MuonTrap memory system
# registers its filter-cache / filter-TLB flushes here.
DomainSwitchListener = Callable[[ProtectionDomain, ProtectionDomain], None]


@dataclass
class DomainTracker:
    """Tracks the protection domain currently executing on one core."""

    core_id: int = 0
    current: ProtectionDomain = field(default_factory=lambda: ProtectionDomain(
        domain_id=0, kind=DomainKind.USER_PROCESS, process_id=0,
        label="process-0"))
    stats: StatGroup = field(default_factory=lambda: StatGroup("domains"))

    def __post_init__(self) -> None:
        self._listeners: List[DomainSwitchListener] = []
        self._context_switches = self.stats.counter("context_switches")
        self._syscalls = self.stats.counter("syscall_entries")
        self._sandbox_entries = self.stats.counter("sandbox_entries")

    def on_switch(self, listener: DomainSwitchListener) -> None:
        self._listeners.append(listener)

    def _transition(self, new_domain: ProtectionDomain) -> None:
        old = self.current
        self.current = new_domain
        for listener in self._listeners:
            listener(old, new_domain)

    # -- the three boundary crossings of section 4.3 ----------------------------
    def context_switch(self, to_process: int,
                       label: Optional[str] = None) -> ProtectionDomain:
        """Switch to a different process (always a flush boundary)."""
        self._context_switches.increment()
        domain = ProtectionDomain(
            domain_id=to_process, kind=DomainKind.USER_PROCESS,
            process_id=to_process,
            label=label or f"process-{to_process}")
        self._transition(domain)
        return domain

    def syscall(self) -> ProtectionDomain:
        """Enter the kernel on behalf of the current process."""
        self._syscalls.increment()
        domain = ProtectionDomain(
            domain_id=-1, kind=DomainKind.KERNEL,
            process_id=self.current.process_id, label="kernel")
        self._transition(domain)
        return domain

    def sandbox_entry(self, sandbox_id: int,
                      label: Optional[str] = None) -> ProtectionDomain:
        """Cross into a sandboxed region within the current process."""
        self._sandbox_entries.increment()
        domain = ProtectionDomain(
            domain_id=sandbox_id, kind=DomainKind.SANDBOX,
            process_id=self.current.process_id,
            label=label or f"sandbox-{sandbox_id}")
        self._transition(domain)
        return domain

    def sandbox_exit(self) -> ProtectionDomain:
        """Return from the sandbox to the enclosing process code."""
        self._sandbox_entries.increment()
        domain = ProtectionDomain(
            domain_id=self.current.process_id, kind=DomainKind.USER_PROCESS,
            process_id=self.current.process_id,
            label=f"process-{self.current.process_id}")
        self._transition(domain)
        return domain

    @property
    def context_switches(self) -> int:
        return self._context_switches.value

    @property
    def sandbox_entries(self) -> int:
        return self._sandbox_entries.value
