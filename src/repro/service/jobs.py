"""The service's async job queue: submit, deduplicate, poll, drain.

Long-running requests (``POST /v1/compare`` / ``POST /v1/sweep``) are
executed on background worker threads; the HTTP handler returns a job id
immediately and clients poll ``GET /v1/jobs/<id>`` for status, progress
(wired to the campaign layer's ``(done, total)`` progress hooks) and the
final result payload.

Jobs are **deduplicated by content**: the job id is a hash of the
canonical JSON encoding of ``(kind, params)``, and submitting a request
whose job already exists — queued, running or completed — returns the
existing job instead of enqueueing a duplicate.  Combined with the
shared result store underneath, that is the service's exactly-once
guarantee: two concurrent clients asking for the same matrix share one
job, and that job computes each missing cell exactly once.  A *failed*
job is the exception — resubmitting it replaces the failed record with a
fresh attempt (the failure may have been environmental).

``drain()`` implements graceful shutdown: stop accepting new jobs, let
everything queued or running finish, then return — the SIGTERM path of
``python -m repro serve``.
"""

from __future__ import annotations

import hashlib
import itertools
import queue
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.service.serialize import canonical_json
from repro.telemetry.log import get_logger, log_event

#: States a job moves through (strictly forward).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"


def job_id_for(kind: str, params: Dict[str, Any]) -> str:
    """Deterministic job id: a content hash of the canonical request."""
    digest = hashlib.sha256(
        canonical_json({"kind": kind, "params": params})).hexdigest()
    return f"{kind}-{digest[:16]}"


class Job:
    """One asynchronous request and its lifecycle."""

    def __init__(self, job_id: str, kind: str,
                 params: Dict[str, Any], seq: int) -> None:
        self.id = job_id
        self.kind = kind
        self.params = params
        self.seq = seq
        self.status = QUEUED
        self.done = 0
        self.total = 0
        self.error: Optional[str] = None
        self.result: Optional[Dict[str, Any]] = None
        #: Quarantined-cell count surfaced without parsing the result.
        self.failed_cells = 0

    def update_progress(self, done: int, total: int) -> None:
        """Campaign progress hook (called from the worker thread)."""
        self.done = done
        self.total = total

    def payload(self, include_result: bool = False) -> Dict[str, Any]:
        """The job's status document (what ``GET /v1/jobs/<id>`` returns)."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "progress": {"done": self.done, "total": self.total},
            "failed_cells": self.failed_cells,
            "error": self.error,
        }
        if include_result:
            payload["result"] = self.result
        return payload


class JobQueue:
    """Background execution with content-hash deduplication.

    ``runner(job)`` executes one job and returns its result payload; it
    may call ``job.update_progress`` as cells complete.  ``workers``
    defaults to 1, which serialises job execution — with a shared result
    store that is the strongest exactly-once-compute setting, since no
    two jobs can race the same missing cell.
    """

    def __init__(self, runner: Callable[[Job], Dict[str, Any]],
                 workers: int = 1) -> None:
        self._runner = runner
        self._jobs: Dict[str, Job] = {}
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._outstanding = 0
        self._closed = False
        self._seq = itertools.count()
        self._logger = get_logger("service.jobs")
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"repro-job-worker-{index}")
            for index in range(max(1, workers))]
        for thread in self._threads:
            thread.start()

    # -- submission -----------------------------------------------------------
    def submit(self, kind: str,
               params: Dict[str, Any]) -> Tuple[Job, bool]:
        """Enqueue (or join) the job for ``(kind, params)``.

        Returns ``(job, created)``: ``created`` is ``False`` when the
        request deduplicated onto an existing queued / running / done
        job.  Raises :class:`RuntimeError` once the queue is draining.
        """
        job_id = job_id_for(kind, params)
        with self._lock:
            if self._closed:
                raise RuntimeError("job queue is draining; "
                                   "no new jobs accepted")
            existing = self._jobs.get(job_id)
            if existing is not None and existing.status != FAILED:
                return existing, False
            job = Job(job_id, kind, params, next(self._seq))
            self._jobs[job_id] = job
            self._outstanding += 1
        log_event(self._logger, "job_submitted", job=job_id, kind=kind)
        self._queue.put(job)
        return job, True

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        """All known jobs in submission order."""
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.seq)

    # -- execution ------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            job.status = RUNNING
            try:
                result = self._runner(job)
            except Exception as exc:  # noqa: BLE001 — reported to clients
                job.error = f"{type(exc).__name__}: {exc}"
                job.status = FAILED
                log_event(self._logger, "job_failed", job=job.id,
                          error=job.error)
            else:
                job.result = result
                job.status = DONE
                log_event(self._logger, "job_done", job=job.id,
                          cells=job.total, failed_cells=job.failed_cells)
            finally:
                with self._lock:
                    self._outstanding -= 1
                    self._idle.notify_all()

    # -- shutdown -------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop accepting jobs, wait for everything in flight to finish.

        Returns ``True`` when the queue emptied within ``timeout``
        (``None`` = wait forever).  Idempotent.
        """
        with self._lock:
            self._closed = True
            drained = self._idle.wait_for(
                lambda: self._outstanding == 0, timeout=timeout)
        if drained:
            self._stop_workers()
        return drained

    def _stop_workers(self) -> None:
        for _ in self._threads:
            self._queue.put(None)

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._closed


__all__ = ["DONE", "FAILED", "Job", "JobQueue", "QUEUED", "RUNNING",
           "job_id_for"]
