"""Simulation-as-a-service: a REST front end for :mod:`repro.api`.

The service turns the reproduction into a long-running shared resource:
one server process owns a result store (the SQLite-WAL backend is built
for exactly this), many concurrent clients submit work over HTTP, and
every cell of every sweep is computed at most once — a widened matrix
only simulates its missing cells, whoever asks for it.

* :mod:`repro.service.server` — the HTTP server
  (``python -m repro serve``): ``POST /v1/simulate`` runs synchronously;
  ``POST /v1/compare`` and ``POST /v1/sweep`` enqueue async jobs polled
  via ``GET /v1/jobs/<id>``; ``GET /v1/health`` and the listing endpoints
  (``suites`` / ``schemes`` / ``machines``) mirror the CLI's ``--json``
  output.  Stdlib only (:class:`http.server.ThreadingHTTPServer`), so
  tier-1 stays dependency-free and offline.
* :mod:`repro.service.jobs` — the in-process job queue: jobs are
  deduplicated by a content hash of their request, so two clients
  submitting the same matrix share one job (and one computation).
* :mod:`repro.service.auth` / :mod:`repro.service.ratelimit` — hashed
  API-key authentication (``REPRO_API_KEYS``) and a deterministic
  token-bucket rate limiter (``REPRO_RATE_LIMIT`` / ``REPRO_RATE_BURST``).
* :mod:`repro.service.serialize` — the canonical JSON serialisers shared
  by the CLI's ``--json`` modes and the HTTP endpoints; outcome payloads
  are byte-identical to serialising the same :mod:`repro.api` call run
  inline.
* :mod:`repro.service.client` — a thin stdlib client
  (:class:`~repro.service.client.ServiceClient`) used by the tests, the
  CI smoke job and ``examples/service_quickstart.py``.
"""

from repro.service.auth import ApiKeyAuth, hash_key
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobQueue
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.server import ReproServer, ServiceConfig

__all__ = [
    "ApiKeyAuth",
    "Job",
    "JobQueue",
    "RateLimiter",
    "ReproServer",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "TokenBucket",
    "hash_key",
]
