"""The simulation service's HTTP server (``python -m repro serve``).

Stdlib only — :class:`http.server.ThreadingHTTPServer` plus the
:mod:`repro.api` facade — so tier-1 stays dependency-free and offline.

Routes (all JSON, canonical encoding):

==============================  ==============================================
``GET  /v1/health``             version / capability facts (no auth required)
``GET  /v1/suites``             benchmark suites (mirrors ``suites --json``)
``GET  /v1/schemes``            protection schemes (``schemes --json``)
``GET  /v1/machines``           machine presets (``machines --json``)
``POST /v1/simulate``           one cell, synchronous; returns the outcome
``POST /v1/compare``            suite × scheme matrix; returns a job id
``POST /v1/sweep``              parameter sweep; returns a job id
``GET  /v1/jobs``               all jobs (status documents)
``GET  /v1/jobs/<id>``          one job's status + progress
``GET  /v1/jobs/<id>/result``   the finished job's result payload — the raw
                                canonical bytes, byte-identical to
                                serialising the same :mod:`repro.api` call
                                run inline
==============================  ==============================================

Authentication is hashed-API-key (:mod:`repro.service.auth`; the
``X-API-Key`` header, or ``Authorization: Bearer <key>``); the rate
limiter (:mod:`repro.service.ratelimit`) meters only the three
work-submitting POST endpoints, keyed by API key (or client address when
auth is off).  Machine descriptions in request bodies use the
``--machine-file`` schema and resolve through the same
:func:`repro.api.resolve_machine` path as every other consumer.
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import urlsplit

from repro.harness.campaign import DEFAULT_SEED
from repro.harness.store import StoreBackend
from repro.harness.suites import UnknownSuiteError
from repro.service.auth import ApiKeyAuth
from repro.service.jobs import DONE, FAILED, Job, JobQueue
from repro.service.ratelimit import RateLimiter
from repro.service.serialize import (
    canonical_json,
    comparison_payload,
    machines_payload,
    schemes_payload,
    simulation_payload,
    suites_payload,
    sweep_payload,
    version_payload,
)
from repro.telemetry.log import get_logger, log_event

#: Request-body keys accepted per endpoint; anything else is a 400, so a
#: typo (``"benchamrk"``) fails loudly instead of silently running the
#: default matrix.
_SIMULATE_PARAMS = frozenset(
    {"workload", "machine", "scheme", "seed", "instructions", "label"})
_COMPARE_PARAMS = frozenset(
    {"schemes", "suite", "machine", "baseline", "instructions", "seed",
     "replicates"})
_SWEEP_PARAMS = frozenset(
    {"parameter", "values", "suite", "machine", "scheme", "baseline",
     "instructions", "seed", "replicates"})

#: A sentinel distinguishing "caller did not pass baseline" (use the
#: facade default) from an explicit ``"baseline": null`` (normalise
#: against the first series).
_UNSET = object()


class RequestError(Exception):
    """A client error carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class ServiceConfig:
    """Everything :class:`ReproServer` needs, in one place."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Result store shared by all requests (``None`` = recompute always).
    store: Optional[StoreBackend] = None
    #: Campaign worker processes per job (1 = in-process, no fork).
    jobs: int = 1
    auth: ApiKeyAuth = field(default_factory=ApiKeyAuth)
    limiter: Optional[RateLimiter] = None
    #: Job-queue worker threads.  The default of 1 serialises jobs, which
    #: with a shared store is the strongest exactly-once-compute setting.
    queue_workers: int = 1
    max_body_bytes: int = 1 << 20


class ReproServer:
    """The HTTP front end: owns the socket, the job queue and the store."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.queue = JobQueue(self._run_job,
                              workers=self.config.queue_workers)
        self._logger = get_logger("service.server")
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.repro_server = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolved even when port 0 was
        requested."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        """Serve on a background thread; returns once the socket accepts."""
        self._thread = threading.Thread(
            target=lambda: self._httpd.serve_forever(poll_interval=0.05),
            daemon=True, name="repro-serve")
        self._thread.start()
        log_event(self._logger, "server_started", url=self.url,
                  auth=self.config.auth.enabled,
                  store=self.config.store.describe()
                  if self.config.store is not None else None)

    def serve_forever(self) -> None:
        """Serve on the calling thread (blocks until :meth:`shutdown`)."""
        log_event(self._logger, "server_started", url=self.url,
                  auth=self.config.auth.enabled,
                  store=self.config.store.describe()
                  if self.config.store is not None else None)
        self._httpd.serve_forever()

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = None) -> bool:
        """Stop serving; with ``drain`` wait for in-flight jobs first.

        Returns ``True`` when the queue drained within ``timeout`` (a
        non-draining shutdown always returns ``True``).
        """
        drained = self.queue.drain(timeout=timeout) if drain else True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        log_event(self._logger, "server_stopped", drained=drained)
        return drained

    # -- job execution --------------------------------------------------------
    def _run_job(self, job: Job) -> Dict[str, Any]:
        from repro import api
        params = dict(job.params)
        baseline = params.pop("baseline", _UNSET)
        common = dict(
            suite=params.pop("suite", "spec_int"),
            machine=params.pop("machine", None),
            instructions=params.pop("instructions", None),
            seed=params.pop("seed", DEFAULT_SEED),
            replicates=params.pop("replicates", 1),
            store=self.config.store,
            jobs=self.config.jobs,
            progress=job.update_progress,
        )
        if baseline is not _UNSET:
            common["baseline"] = baseline
        if job.kind == "compare":
            outcome = api.compare(params["schemes"], **common)
            job.failed_cells = len(outcome.result.failures)
            return comparison_payload(outcome)
        if job.kind == "sweep":
            outcome = api.sweep(params["parameter"], params["values"],
                                scheme=params.get("scheme"), **common)
            job.failed_cells = len(outcome.comparison.result.failures)
            return sweep_payload(outcome)
        raise ValueError(f"unknown job kind {job.kind!r}")

    # -- request handling (called from handler threads) -----------------------
    def handle(self, method: str, path: str, body: Optional[Dict[str, Any]],
               api_key: Optional[str], client: str
               ) -> Tuple[int, Dict[str, str], bytes]:
        """Dispatch one request; returns ``(status, headers, body_bytes)``."""
        if path == "/v1/health" and method == "GET":
            return self._json(200, version_payload())
        if not self.config.auth.authorise(api_key):
            raise RequestError(401, "missing or invalid API key")
        if method == "GET":
            return self._handle_get(path)
        if method == "POST":
            identity = api_key if api_key else client
            return self._handle_post(path, body, identity)
        raise RequestError(405, f"method {method} not allowed")

    def _handle_get(self, path: str) -> Tuple[int, Dict[str, str], bytes]:
        if path == "/v1/suites":
            return self._json(200, suites_payload())
        if path == "/v1/schemes":
            return self._json(200, schemes_payload())
        if path == "/v1/machines":
            return self._json(200, machines_payload())
        if path == "/v1/jobs":
            return self._json(200, [job.payload()
                                    for job in self.queue.jobs()])
        if path.startswith("/v1/jobs/"):
            return self._handle_job_get(path[len("/v1/jobs/"):])
        raise RequestError(404, f"no such resource: {path}")

    def _handle_job_get(self, tail: str
                        ) -> Tuple[int, Dict[str, str], bytes]:
        job_id, _, verb = tail.partition("/")
        job = self.queue.get(job_id)
        if job is None:
            raise RequestError(404, f"no such job: {job_id}")
        if not verb:
            return self._json(200, job.payload())
        if verb != "result":
            raise RequestError(404, f"no such resource: jobs/{tail}")
        if job.status == FAILED:
            raise RequestError(409, f"job {job_id} failed: {job.error}")
        if job.status != DONE:
            raise RequestError(409, f"job {job_id} is {job.status}; "
                               f"poll /v1/jobs/{job_id} until done")
        # The byte-identity contract: raw canonical bytes of the result
        # payload, nothing wrapped around them.
        return 200, {"Content-Type": "application/json"}, \
            canonical_json(job.result)

    def _handle_post(self, path: str, body: Optional[Dict[str, Any]],
                     identity: str) -> Tuple[int, Dict[str, str], bytes]:
        if path not in ("/v1/simulate", "/v1/compare", "/v1/sweep"):
            raise RequestError(404, f"no such resource: {path}")
        if self.config.limiter is not None:
            admitted, retry_after = self.config.limiter.allow(identity)
            if not admitted:
                raise RequestError(
                    429, f"rate limit exceeded; retry in "
                    f"{retry_after:.2f}s") from None
        params = body if body is not None else {}
        if not isinstance(params, dict):
            raise RequestError(400, "request body must be a JSON object")
        if path == "/v1/simulate":
            return self._simulate(params)
        kind = path.rsplit("/", 1)[1]
        return self._submit(kind, params)

    def _simulate(self, params: Dict[str, Any]
                  ) -> Tuple[int, Dict[str, str], bytes]:
        from repro import api
        _check_params("simulate", params, _SIMULATE_PARAMS,
                      required=("workload",))
        try:
            outcome = api.simulate(
                params["workload"], params.get("machine"),
                scheme=params.get("scheme"),
                seed=params.get("seed", DEFAULT_SEED),
                instructions=params.get("instructions"),
                label=params.get("label"),
                store=self.config.store)
        except (ValueError, TypeError, KeyError, UnknownSuiteError) as exc:
            raise RequestError(400, str(exc)) from exc
        return 200, {"Content-Type": "application/json"}, \
            canonical_json(simulation_payload(outcome))

    def _submit(self, kind: str, params: Dict[str, Any]
                ) -> Tuple[int, Dict[str, str], bytes]:
        if kind == "compare":
            _check_params(kind, params, _COMPARE_PARAMS,
                          required=("schemes",))
        else:
            _check_params(kind, params, _SWEEP_PARAMS,
                          required=("parameter", "values"))
        try:
            job, created = self.queue.submit(kind, params)
        except RuntimeError as exc:  # draining
            raise RequestError(503, str(exc)) from exc
        status = 202 if created else 200
        return self._json(status, job.payload())

    @staticmethod
    def _json(status: int, payload: Any
              ) -> Tuple[int, Dict[str, str], bytes]:
        return status, {"Content-Type": "application/json"}, \
            canonical_json(payload)


def _check_params(endpoint: str, params: Dict[str, Any],
                  allowed: frozenset, required: Tuple[str, ...]) -> None:
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise RequestError(
            400, f"{endpoint}: unknown parameter(s) {', '.join(unknown)}; "
            f"accepted: {', '.join(sorted(allowed))}")
    missing = [name for name in required if name not in params]
    if missing:
        raise RequestError(
            400, f"{endpoint}: missing required parameter(s) "
            f"{', '.join(missing)}")


class _Handler(BaseHTTPRequestHandler):
    """Thin adapter from ``http.server`` onto :meth:`ReproServer.handle`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    @property
    def _repro(self) -> ReproServer:
        return self.server.repro_server  # type: ignore[attr-defined]

    def _api_key(self) -> Optional[str]:
        key = self.headers.get("X-API-Key")
        if key:
            return key
        authorization = self.headers.get("Authorization", "")
        if authorization.startswith("Bearer "):
            return authorization[len("Bearer "):].strip()
        return None

    def _read_body(self) -> Optional[Dict[str, Any]]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        if length > self._repro.config.max_body_bytes:
            raise RequestError(
                413, f"request body of {length} bytes exceeds the "
                f"{self._repro.config.max_body_bytes}-byte limit")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(400, f"request body is not valid JSON: "
                               f"{exc}") from exc

    def _dispatch(self, method: str) -> None:
        path = urlsplit(self.path).path.rstrip("/") or "/"
        try:
            body = self._read_body() if method == "POST" else None
            status, headers, payload = self._repro.handle(
                method, path, body, self._api_key(),
                self.client_address[0])
        except RequestError as exc:
            status = exc.status
            headers = {"Content-Type": "application/json"}
            if status == 429:
                # exc.message ends "...retry in X.XXs"; the header wants
                # whole seconds.
                seconds = exc.message.rsplit(" ", 1)[-1].rstrip("s")
                try:
                    headers["Retry-After"] = str(
                        max(1, math.ceil(float(seconds))))
                except ValueError:
                    headers["Retry-After"] = "1"
            payload = canonical_json({"error": exc.message})
        except Exception as exc:  # noqa: BLE001 — never kill the thread
            log_event(get_logger("service.server"), "request_error",
                      path=path, error=f"{type(exc).__name__}: {exc}")
            status = 500
            headers = {"Content-Type": "application/json"}
            payload = canonical_json(
                {"error": f"{type(exc).__name__}: {exc}"})
        self.send_response(status)
        for name, value in headers.items():
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("POST")

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        log_event(get_logger("service.http"), "request",
                  _level=10, client=self.client_address[0],
                  line=format % args)


__all__ = ["ReproServer", "RequestError", "ServiceConfig"]
