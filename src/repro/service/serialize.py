"""Canonical JSON serialisers shared by the CLI and the HTTP service.

One serialiser per payload, used by *both* consumers — the CLI's
``--json`` output modes (``version`` / ``suites`` / ``schemes`` /
``machines``) and the service's endpoints — so the two surfaces cannot
drift apart.

:func:`canonical_json` is the byte-level contract: sorted keys, compact
separators, UTF-8.  The acceptance invariant of the service rests on it —
a sweep submitted over HTTP returns exactly
``canonical_json(sweep_payload(api.sweep(...)))``, so clients can diff
server responses byte-for-byte against inline runs.

Everything here is deterministic: no timestamps, wall-clock durations or
host names ever enter an outcome payload (job *status* payloads carry
progress counters, but those live in :mod:`repro.service.jobs`, outside
the byte-compared result).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro import __version__
from repro.harness.executor import FailedCell
from repro.harness.store import STORE_BACKENDS, result_to_dict
from repro.workloads.trace import numpy_available


def canonical_json(payload: Any) -> bytes:
    """The one true byte encoding of a payload (sorted keys, compact)."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def version_payload() -> Dict[str, Any]:
    """Package/version facts behind ``repro version`` and ``/v1/health``."""
    from repro.harness.suites import suite_names
    from repro.schemes import scheme_names
    return {
        "package": "repro",
        "version": __version__,
        "default_engine": "vectorized",
        "numpy": numpy_available(),
        "store_backends": list(STORE_BACKENDS),
        "schemes": len(scheme_names()),
        "suites": len(suite_names()),
    }


def suites_payload() -> List[Dict[str, Any]]:
    """The named benchmark suites with their expanded members."""
    from repro.harness.suites import resolve_suites, suite_names
    return [{"name": name, "benchmarks": resolve_suites([name])}
            for name in suite_names()]


def schemes_payload() -> List[Dict[str, Any]]:
    """The registered protection schemes with their capability flags."""
    from repro.schemes import available_schemes
    return [{
        "name": spec.name,
        "display_name": spec.display_name,
        "builtin": spec.builtin,
        "description": spec.description,
        "capabilities": dict(spec.capabilities()),
    } for spec in available_schemes()]


def machines_payload() -> List[Dict[str, Any]]:
    """The heterogeneous machine presets, cores summarised and the full
    machine description attached (the ``--machine-file`` format)."""
    from repro.common.machine import machine_to_dict
    from repro.workloads.mixes import get_machine, machine_names
    payload = []
    for name in machine_names():
        config = get_machine(name)
        cores = [{
            "scheme": core.scheme,
            "width": core.pipeline.width,
            "l1d_kib": core.l1d.size_bytes // 1024,
            "insecure_scoped_invalidate":
                core.protection.insecure_scoped_invalidate,
        } for core in config.core_configs()]
        payload.append({
            "name": name,
            "num_cores": config.num_cores,
            "cores": cores,
            "machine": machine_to_dict(config),
        })
    return payload


def failure_payload(failure: FailedCell) -> Dict[str, Any]:
    """One quarantined cell, deterministic fields only.

    ``seconds`` (wall-clock spent before quarantine) is deliberately
    excluded: outcome payloads must be byte-identical across runs and
    hosts.
    """
    return {
        "key": failure.key,
        "benchmark": failure.benchmark,
        "label": failure.label,
        "seed": failure.seed,
        "error": failure.error,
        "attempts": failure.attempts,
    }


def simulation_payload(outcome) -> Dict[str, Any]:
    """A :class:`repro.api.SimulationOutcome` as a plain dict."""
    from repro.common.machine import machine_to_dict
    return {
        "benchmark": outcome.benchmark,
        "label": outcome.label,
        "scheme": outcome.scheme,
        "seed": outcome.seed,
        "instructions_requested": outcome.instructions_requested,
        "machine": machine_to_dict(outcome.machine),
        "result": result_to_dict(outcome.result),
    }


def comparison_payload(outcome) -> Dict[str, Any]:
    """A :class:`repro.api.ComparisonOutcome` as a plain dict.

    Carries the full per-cell results (keyed ``benchmark|label|seed``)
    alongside the derived normalised table and geomeans, so a client can
    re-derive anything the report renders without another request.
    """
    result = outcome.result
    runs = {f"{benchmark}|{label}|{seed}": result_to_dict(run)
            for (benchmark, label, seed), run in result.runs.items()}
    return {
        "benchmarks": list(result.benchmarks),
        "labels": list(result.labels),
        "baseline_label": result.baseline_label,
        "seeds": list(result.seeds),
        "normalised": result.normalised(),
        "geomeans": result.geomeans(),
        "runs": runs,
        "failures": [failure_payload(failure)
                     for failure in result.failures],
    }


def sweep_payload(outcome) -> Dict[str, Any]:
    """A :class:`repro.api.SweepOutcome` as a plain dict."""
    return {
        "parameter": outcome.parameter,
        "values": list(outcome.values),
        "comparison": comparison_payload(outcome.comparison),
    }


__all__ = [
    "canonical_json",
    "comparison_payload",
    "failure_payload",
    "machines_payload",
    "schemes_payload",
    "simulation_payload",
    "suites_payload",
    "sweep_payload",
    "version_payload",
]
