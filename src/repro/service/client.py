"""A thin stdlib client for the simulation service.

:class:`ServiceClient` wraps :mod:`urllib.request` — no third-party HTTP
library — and speaks the service's JSON dialect: requests are canonical
JSON, errors surface as :class:`ServiceError` carrying the HTTP status
and the server's message, and async endpoints come in both explicit
(``submit_sweep`` + ``wait``) and convenience (``sweep``) forms.

:meth:`ServiceClient.job_result_bytes` returns the server's response
body *verbatim* — the raw canonical bytes — so callers can diff it
against ``canonical_json(sweep_payload(api.sweep(...)))`` without any
parse/re-serialise round trip in between.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional

from repro.service.serialize import canonical_json


class ServiceError(Exception):
    """An HTTP error from the service, with its status and message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to one :class:`~repro.service.server.ReproServer`."""

    def __init__(self, base_url: str, api_key: Optional[str] = None,
                 timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.api_key = api_key
        self.timeout = timeout

    # -- transport ------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None) -> bytes:
        url = f"{self.base_url}{path}"
        data = canonical_json(payload) if payload is not None else None
        request = urllib.request.Request(url, data=data, method=method)
        request.add_header("Content-Type", "application/json")
        if self.api_key:
            request.add_header("X-API-Key", self.api_key)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                message = json.loads(body.decode("utf-8"))["error"]
            except (ValueError, KeyError, UnicodeDecodeError):
                message = body.decode("utf-8", "replace") or exc.reason
            raise ServiceError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {url}: "
                               f"{exc.reason}") from None

    def _get(self, path: str) -> Any:
        return json.loads(self._request("GET", path).decode("utf-8"))

    def _post(self, path: str, payload: Dict[str, Any]) -> Any:
        return json.loads(
            self._request("POST", path, payload).decode("utf-8"))

    # -- read-only endpoints --------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._get("/v1/health")

    def suites(self) -> List[Dict[str, Any]]:
        return self._get("/v1/suites")

    def schemes(self) -> List[Dict[str, Any]]:
        return self._get("/v1/schemes")

    def machines(self) -> List[Dict[str, Any]]:
        return self._get("/v1/machines")

    # -- work -----------------------------------------------------------------
    def simulate(self, workload: str, **params: Any) -> Dict[str, Any]:
        """One cell, synchronous; returns the simulation payload."""
        return self._post("/v1/simulate",
                          {"workload": workload, **params})

    def submit_compare(self, schemes: List[Any],
                       **params: Any) -> Dict[str, Any]:
        """Enqueue a comparison; returns the job's status document."""
        return self._post("/v1/compare", {"schemes": schemes, **params})

    def submit_sweep(self, parameter: str, values: List[Any],
                     **params: Any) -> Dict[str, Any]:
        """Enqueue a sweep; returns the job's status document."""
        return self._post("/v1/sweep", {"parameter": parameter,
                                        "values": values, **params})

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._get(f"/v1/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._get("/v1/jobs")

    def job_result_bytes(self, job_id: str) -> bytes:
        """The finished job's result — raw canonical bytes, unparsed."""
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.05) -> Dict[str, Any]:
        """Poll until the job finishes; returns its final status document.

        Raises :class:`ServiceError` (status 0) on timeout and surfaces a
        failed job's error as ``ServiceError(500, ...)``.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status["status"] == "done":
                return status
            if status["status"] == "failed":
                raise ServiceError(500, f"job {job_id} failed: "
                                   f"{status['error']}")
            if time.monotonic() >= deadline:
                raise ServiceError(0, f"job {job_id} still "
                                   f"{status['status']} after {timeout}s")
            time.sleep(poll)

    # -- convenience: submit + wait + fetch -----------------------------------
    def compare(self, schemes: List[Any], timeout: float = 300.0,
                **params: Any) -> Dict[str, Any]:
        """Run a comparison end to end; returns the comparison payload."""
        job = self.submit_compare(schemes, **params)
        self.wait(job["id"], timeout=timeout)
        return json.loads(
            self.job_result_bytes(job["id"]).decode("utf-8"))

    def sweep(self, parameter: str, values: List[Any],
              timeout: float = 300.0, **params: Any) -> Dict[str, Any]:
        """Run a sweep end to end; returns the sweep payload."""
        job = self.submit_sweep(parameter, values, **params)
        self.wait(job["id"], timeout=timeout)
        return json.loads(
            self.job_result_bytes(job["id"]).decode("utf-8"))


__all__ = ["ServiceClient", "ServiceError"]
