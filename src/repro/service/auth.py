"""Hashed API-key authentication for the simulation service.

Keys are configured through the ``REPRO_API_KEYS`` environment variable
as a comma-separated list.  Each entry is either a plaintext key (hashed
with SHA-256 the moment it is read) or a pre-hashed ``sha256:<hexdigest>``
entry, so deployments never have to put plaintext secrets in process
environments they don't control.  Only digests are ever held in memory
and comparisons go through :func:`hmac.compare_digest`, following the
isnad reference service's never-store-plaintext discipline.

An empty / unset variable disables authentication entirely (a local
development server); :attr:`ApiKeyAuth.enabled` tells the server whether
to demand credentials.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from typing import FrozenSet, Iterable, Optional

#: Environment variable holding the accepted API keys.
API_KEYS_ENV = "REPRO_API_KEYS"

#: Prefix marking an already-hashed entry in ``REPRO_API_KEYS``.
_DIGEST_PREFIX = "sha256:"


def hash_key(key: str) -> str:
    """The stored (and compared) form of an API key."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


class ApiKeyAuth:
    """A set of accepted API-key digests.

    Construct from explicit keys (:meth:`from_keys`) or the environment
    (:meth:`from_env`).  ``authorise(presented)`` hashes the presented
    key and compares it against every accepted digest in constant time.
    """

    def __init__(self, digests: Iterable[str] = ()) -> None:
        self.digests: FrozenSet[str] = frozenset(digests)

    @classmethod
    def from_keys(cls, *keys: str) -> "ApiKeyAuth":
        return cls(hash_key(key) for key in keys)

    @classmethod
    def from_env(cls, raw: Optional[str] = None) -> "ApiKeyAuth":
        """Parse ``REPRO_API_KEYS`` (or an explicit ``raw`` string).

        Entries are comma-separated; whitespace around entries is
        ignored; empty entries are skipped.  ``sha256:<hex>`` entries
        must carry a full 64-character hex digest — anything else is a
        configuration mistake reported with a clear message.
        """
        if raw is None:
            raw = os.environ.get(API_KEYS_ENV, "")
        digests = set()
        for entry in raw.split(","):
            entry = entry.strip()
            if not entry:
                continue
            if entry.startswith(_DIGEST_PREFIX):
                digest = entry[len(_DIGEST_PREFIX):].strip().lower()
                if len(digest) != 64 or any(c not in "0123456789abcdef"
                                            for c in digest):
                    raise ValueError(
                        f"environment variable {API_KEYS_ENV}: "
                        f"'sha256:' entries must carry a 64-character hex "
                        f"digest, got {entry!r}")
                digests.add(digest)
            else:
                digests.add(hash_key(entry))
        return cls(digests)

    @property
    def enabled(self) -> bool:
        """Whether the server should demand credentials at all."""
        return bool(self.digests)

    def authorise(self, presented: Optional[str]) -> bool:
        """``True`` iff the presented key matches an accepted digest.

        With authentication disabled every request (including one with
        no key) is authorised.  Comparison is constant-time per digest.
        """
        if not self.enabled:
            return True
        if not presented:
            return False
        digest = hash_key(presented)
        # any() over compare_digest keeps each comparison constant-time;
        # the digest set's size is not a secret.
        return any(hmac.compare_digest(digest, accepted)
                   for accepted in self.digests)


__all__ = ["API_KEYS_ENV", "ApiKeyAuth", "hash_key"]
