"""A deterministic token-bucket rate limiter for the simulation service.

Classic token bucket: a bucket holds up to ``burst`` tokens, refills at
``rate`` tokens per second, and each admitted request spends one token.
The implementation is *deterministic* — all state transitions are pure
functions of the clock values observed, there is no randomised jitter,
and the clock itself is injectable — so tests drive it with a fake clock
and assert exact admit/deny sequences.

The server keeps one bucket per identity (the presented API key, or the
client address when authentication is disabled) and applies it to the
work-submitting endpoints only; health checks and job polling stay
unmetered so a client waiting on a long sweep is never pushed into
backoff by its own polling.

Configuration: ``REPRO_RATE_LIMIT`` (requests per second; unset disables
limiting) and ``REPRO_RATE_BURST`` (bucket capacity; default
``max(1, rate)``).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.harness.executor import env_float

#: Environment variable: sustained requests per second (unset = no limit).
RATE_LIMIT_ENV = "REPRO_RATE_LIMIT"

#: Environment variable: bucket capacity (burst size).
RATE_BURST_ENV = "REPRO_RATE_BURST"


class TokenBucket:
    """One token bucket: ``capacity`` tokens, refilled at ``rate``/s."""

    def __init__(self, rate: float, burst: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        self.rate = float(rate)
        self.capacity = float(burst) if burst is not None \
            else max(1.0, self.rate)
        if self.capacity < 1.0:
            raise ValueError(
                f"burst must admit at least one request, got {burst!r}")
        self._clock = clock
        self.tokens = self.capacity
        self._updated = self._clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self) -> bool:
        """Spend one token if available; ``False`` means rate-limited."""
        self._refill(self._clock())
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next token exists (0 when one is spare)."""
        self._refill(self._clock())
        if self.tokens >= 1.0:
            return 0.0
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """Per-identity token buckets behind one lock."""

    def __init__(self, rate: float, burst: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = burst
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_env(cls) -> Optional["RateLimiter"]:
        """A limiter per ``REPRO_RATE_LIMIT``, or ``None`` (unlimited)."""
        rate = env_float(RATE_LIMIT_ENV, minimum=0.0)
        if rate is None:
            return None
        burst = env_float(RATE_BURST_ENV, minimum=0.0)
        return cls(rate, burst=burst)

    def allow(self, identity: str) -> Tuple[bool, float]:
        """``(admitted, retry_after_seconds)`` for one request."""
        with self._lock:
            bucket = self._buckets.get(identity)
            if bucket is None:
                bucket = TokenBucket(self.rate, burst=self.burst,
                                     clock=self._clock)
                self._buckets[identity] = bucket
            if bucket.try_acquire():
                return True, 0.0
            return False, bucket.retry_after()


__all__ = ["RATE_BURST_ENV", "RATE_LIMIT_ENV", "RateLimiter", "TokenBucket"]
