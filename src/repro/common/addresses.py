"""Address arithmetic helpers.

Addresses are plain integers throughout the simulator.  Virtual and physical
addresses share the same representation; translation is handled by
:mod:`repro.memory.page_table`.  The helpers here centralise the line/page
alignment arithmetic that every cache and TLB needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

DEFAULT_LINE_SIZE = 64
DEFAULT_PAGE_SIZE = 4096


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


# The three block helpers below sit on every cache/TLB access path, so the
# power-of-two validation is inlined rather than delegated to
# ``is_power_of_two`` (a function call per address would dominate them).

def block_align(address: int, block_size: int = DEFAULT_LINE_SIZE) -> int:
    """Round ``address`` down to the start of its block."""
    if block_size <= 0 or block_size & (block_size - 1):
        raise ValueError("block size must be a power of two")
    return address & -block_size


def block_offset(address: int, block_size: int = DEFAULT_LINE_SIZE) -> int:
    """Offset of ``address`` within its block."""
    if block_size <= 0 or block_size & (block_size - 1):
        raise ValueError("block size must be a power of two")
    return address & (block_size - 1)


def block_number(address: int, block_size: int = DEFAULT_LINE_SIZE) -> int:
    """Index of the block containing ``address``."""
    if block_size <= 0 or block_size & (block_size - 1):
        raise ValueError("block size must be a power of two")
    return address >> block_size.bit_length() - 1


def page_align(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Round ``address`` down to the start of its page."""
    return block_align(address, page_size)


def page_number(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Virtual or physical page number of ``address``."""
    return block_number(address, page_size)


def page_offset(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Offset of ``address`` within its page."""
    return block_offset(address, page_size)


def set_index(address: int, num_sets: int,
              block_size: int = DEFAULT_LINE_SIZE) -> int:
    """Cache set index for ``address`` under the usual modulo mapping."""
    if num_sets <= 0:
        raise ValueError("number of sets must be positive")
    return block_number(address, block_size) % num_sets


def lines_covering(start: int, length: int,
                   block_size: int = DEFAULT_LINE_SIZE) -> Iterator[int]:
    """Yield the line-aligned addresses covering ``[start, start + length)``."""
    if length <= 0:
        return
    address = block_align(start, block_size)
    end = start + length
    while address < end:
        yield address
        address += block_size


@dataclass(frozen=True)
class AddressRange:
    """A half-open range of addresses ``[base, base + size)``."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("size must be non-negative")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def overlaps(self, other: "AddressRange") -> bool:
        return self.base < other.end and other.base < self.end

    def lines(self, block_size: int = DEFAULT_LINE_SIZE) -> Iterable[int]:
        return lines_covering(self.base, self.size, block_size)
