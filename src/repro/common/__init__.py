"""Shared configuration, statistics and utility code."""

from repro.common.addresses import (
    AddressRange,
    block_align,
    block_number,
    block_offset,
    page_align,
    page_number,
    page_offset,
    set_index,
)
from repro.common.params import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    FilterCacheConfig,
    MemoryConfig,
    ProtectionConfig,
    ProtectionMode,
    SystemConfig,
    TLBConfig,
    default_system_config,
    parsec_system_config,
    spec_system_config,
)
from repro.common.rng import DeterministicRng
from repro.common.statistics import Counter, Histogram, StatGroup, geometric_mean, ratio

__all__ = [
    "AddressRange",
    "BranchPredictorConfig",
    "CacheConfig",
    "CoreConfig",
    "Counter",
    "DeterministicRng",
    "FilterCacheConfig",
    "Histogram",
    "MemoryConfig",
    "ProtectionConfig",
    "ProtectionMode",
    "StatGroup",
    "SystemConfig",
    "TLBConfig",
    "block_align",
    "block_number",
    "block_offset",
    "default_system_config",
    "geometric_mean",
    "page_align",
    "page_number",
    "page_offset",
    "parsec_system_config",
    "ratio",
    "set_index",
    "spec_system_config",
]
