"""Declarative machine descriptions: config dataclasses ↔ dict/JSON.

A :class:`~repro.common.params.SystemConfig` (and every nested config
dataclass) round-trips losslessly through a plain, versioned dictionary:

* :func:`config_to_dict` emits **every** field, so the output is a
  complete, self-describing machine description — what
  ``SystemConfig.to_dict()`` returns and what the checked-in example
  machine files under ``examples/machines/`` contain.
* :func:`config_from_dict` accepts **partial** dictionaries: missing keys
  take the dataclass defaults, which is how the named machine presets in
  :mod:`repro.workloads.mixes` are written as compact data.  Unknown keys
  are configuration mistakes and raise :class:`MachineFormatError` naming
  the offending key and the keys the class knows; so does a
  ``schema_version`` this code does not understand.

Protection schemes serialise as their registry *names* (plain strings), so
a machine file can reference any scheme registered through
:mod:`repro.schemes` — including ones the repository has never heard of.

The schema is versioned independently of the result-store layout:
``schema_version`` is checked on load, and bumping it is how future,
incompatible field changes announce themselves to old files.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Type, TypeVar, Union, get_args, get_origin, get_type_hints

from repro.common.params import (
    BranchPredictorConfig,
    CacheConfig,
    CoreConfig,
    FilterCacheConfig,
    MemoryConfig,
    PipelineConfig,
    ProtectionConfig,
    ProtectionMode,
    SystemConfig,
    scheme_name,
)

#: Bump on incompatible field changes; :func:`config_from_dict` rejects
#: files written under a different major version with a clear error.
MACHINE_SCHEMA_VERSION = 1

#: The key carrying the version in serialised descriptions.
_VERSION_KEY = "schema_version"

_T = TypeVar("_T")

#: Classes that may appear as the top level of a description (and therefore
#: carry a ``schema_version`` key when serialised).
_PUBLIC_CLASSES = (SystemConfig, CoreConfig, ProtectionConfig)


class MachineFormatError(ValueError):
    """A machine description that cannot be interpreted."""


def _resolved_hints(cls: type) -> Dict[str, Any]:
    """Field name -> resolved type hint (params uses string annotations)."""
    return get_type_hints(cls)


def config_to_dict(config: Any) -> Dict[str, Any]:
    """A lossless, JSON-ready description of any config dataclass."""
    if not dataclasses.is_dataclass(config) or isinstance(config, type):
        raise TypeError(f"expected a config dataclass instance, "
                        f"got {config!r}")
    payload = _encode(config)
    if isinstance(config, _PUBLIC_CLASSES):
        payload = {_VERSION_KEY: MACHINE_SCHEMA_VERSION, **payload}
    return payload


def _encode(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _encode(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, ProtectionMode):
        return value.value
    if isinstance(value, tuple):
        return [_encode(item) for item in value]
    return value


def config_from_dict(payload: Dict[str, Any], cls: Type[_T]) -> _T:
    """Build a config dataclass from a (possibly partial) description.

    Missing keys take the dataclass defaults; unknown keys and
    unsupported ``schema_version`` values raise
    :class:`MachineFormatError`.
    """
    if not isinstance(payload, dict):
        raise MachineFormatError(
            f"{cls.__name__} description must be a mapping, "
            f"got {type(payload).__name__}")
    payload = dict(payload)
    version = payload.pop(_VERSION_KEY, MACHINE_SCHEMA_VERSION)
    if version != MACHINE_SCHEMA_VERSION:
        raise MachineFormatError(
            f"unsupported machine {_VERSION_KEY} {version!r} "
            f"(this version reads {MACHINE_SCHEMA_VERSION})")
    return _decode_dataclass(cls, payload, context=cls.__name__)


def _decode_dataclass(cls: Type[_T], payload: Any, context: str) -> _T:
    if not isinstance(payload, dict):
        raise MachineFormatError(
            f"{context}: expected a mapping for {cls.__name__}, "
            f"got {type(payload).__name__}")
    if issubclass(cls, _PUBLIC_CLASSES) and _VERSION_KEY in payload:
        # A nested description may itself be the output of a public
        # class's to_dict() (compose a machine from exported parts);
        # accept — and validate — its version stamp.
        payload = dict(payload)
        version = payload.pop(_VERSION_KEY)
        if version != MACHINE_SCHEMA_VERSION:
            raise MachineFormatError(
                f"{context}: unsupported {_VERSION_KEY} {version!r} "
                f"(this version reads {MACHINE_SCHEMA_VERSION})")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise MachineFormatError(
            f"{context}: unknown key(s) {', '.join(map(repr, unknown))} "
            f"for {cls.__name__} (known keys: {', '.join(sorted(known))})")
    hints = _resolved_hints(cls)
    kwargs = {name: _decode(payload[name], hints[name],
                            context=f"{context}.{name}")
              for name in payload}
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as error:
        raise MachineFormatError(f"{context}: {error}") from None


def _decode(value: Any, hint: Any, context: str) -> Any:
    origin = get_origin(hint)
    if origin is Union:
        args = get_args(hint)
        if value is None:
            if type(None) in args:
                return None
            raise MachineFormatError(f"{context}: null is not allowed")
        # The one non-Optional union in the schema is SchemeLike
        # (ProtectionMode | str): scheme names stay strings here and the
        # config's own __post_init__ normalises builtin names to the enum.
        members = [arg for arg in args if arg is not type(None)]
        if ProtectionMode in members:
            if not isinstance(value, str):
                raise MachineFormatError(
                    f"{context}: protection scheme must be a name string, "
                    f"got {type(value).__name__}")
            return value
        if len(members) == 1:
            return _decode(value, members[0], context)
        raise MachineFormatError(  # pragma: no cover - no such field today
            f"{context}: ambiguous union type {hint!r}")
    if origin is tuple:
        item_hint = get_args(hint)[0]
        if not isinstance(value, (list, tuple)):
            raise MachineFormatError(
                f"{context}: expected a list, got {type(value).__name__}")
        return tuple(_decode(item, item_hint, context=f"{context}[{index}]")
                     for index, item in enumerate(value))
    if dataclasses.is_dataclass(hint):
        return _decode_dataclass(hint, value, context)
    if hint is ProtectionMode:  # pragma: no cover - covered by the union
        return value
    return value


# -- whole-machine convenience wrappers ---------------------------------------

def machine_to_dict(config: SystemConfig) -> Dict[str, Any]:
    """Serialise a machine (alias of ``config.to_dict()``)."""
    return config_to_dict(config)


def machine_from_dict(payload: Dict[str, Any]) -> SystemConfig:
    """Build a machine from a description dict."""
    return config_from_dict(payload, SystemConfig)


def save_machine(config: SystemConfig, path: Union[str, os.PathLike]) -> Path:
    """Write a machine description as pretty-printed JSON; returns the path."""
    target = Path(path)
    target.write_text(json.dumps(machine_to_dict(config), indent=2,
                                 sort_keys=False) + "\n",
                      encoding="utf-8")
    return target


def load_machine(path: Union[str, os.PathLike]) -> SystemConfig:
    """Read a machine description from a JSON file.

    Errors carry the file name: a missing file, malformed JSON, and schema
    violations all raise :class:`MachineFormatError` (a ``ValueError``),
    which the CLI turns into a one-line message.
    """
    source = Path(path)
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as error:
        raise MachineFormatError(
            f"cannot read machine file {source}: {error}") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise MachineFormatError(
            f"machine file {source} is not valid JSON: {error}") from None
    try:
        return machine_from_dict(payload)
    except MachineFormatError as error:
        raise MachineFormatError(f"machine file {source}: {error}") from None


__all__ = [
    "MACHINE_SCHEMA_VERSION",
    "MachineFormatError",
    "config_from_dict",
    "config_to_dict",
    "load_machine",
    "machine_from_dict",
    "machine_to_dict",
    "save_machine",
]
