"""Configuration dataclasses for the simulated system.

The default values mirror Table 1 of the MuonTrap paper: an 8-wide
out-of-order core at 2 GHz with a 192-entry ROB, 64-entry issue queue,
32-entry load and store queues, a tournament branch predictor, split 32 KiB /
64 KiB L1 caches, 2 KiB 4-way filter caches with 1-cycle hit latency, a
shared 2 MiB L2 with a stride prefetcher, and DDR3-1600 main memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union


class ProtectionMode(enum.Enum):
    """The built-in protection schemes, as a (deprecated) enum.

    Scheme identity is a *name* resolved through the registry in
    :mod:`repro.schemes`; this enum survives as a thin alias for the seven
    built-in names so existing code (and configs pickled by older
    versions) keeps working.  New code should pass scheme name strings —
    every ``mode`` field and ``with_mode`` helper accepts them — and query
    capabilities via :func:`repro.schemes.get_scheme` rather than these
    properties.
    """

    UNPROTECTED = "unprotected"
    INSECURE_L0 = "insecure-l0"
    MUONTRAP = "muontrap"
    INVISISPEC_SPECTRE = "invisispec-spectre"
    INVISISPEC_FUTURE = "invisispec-future"
    STT_SPECTRE = "stt-spectre"
    STT_FUTURE = "stt-future"

    @property
    def is_invisispec(self) -> bool:
        """Deprecated: resolves through the scheme registry."""
        from repro.schemes import get_scheme
        return get_scheme(self).uses_speculative_buffers

    @property
    def is_stt(self) -> bool:
        """Deprecated: resolves through the scheme registry."""
        from repro.schemes import get_scheme
        return get_scheme(self).delays_transmitters

    @property
    def uses_filter_cache(self) -> bool:
        """Deprecated: resolves through the scheme registry."""
        from repro.schemes import get_scheme
        return get_scheme(self).supports_filter_caches


#: A protection scheme reference: a registry name, or (for the builtins)
#: the deprecated enum member.  Configs normalise builtin names to the
#: enum, so equality and hashing are unaffected by which form callers use.
SchemeLike = Union[str, ProtectionMode]


def scheme_name(mode: SchemeLike) -> str:
    """The canonical registry name of a scheme reference."""
    if isinstance(mode, ProtectionMode):
        return mode.value
    return str(mode)


def _normalise_mode(mode: SchemeLike) -> SchemeLike:
    """Builtin names become enum members; custom names stay strings."""
    if isinstance(mode, ProtectionMode):
        return mode
    try:
        return ProtectionMode(mode)
    except ValueError:
        return str(mode)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of a single cache."""

    name: str
    size_bytes: int
    associativity: int
    line_size: int = 64
    hit_latency: int = 1
    mshrs: int = 4
    replacement: str = "lru"
    prefetcher: Optional[str] = None
    prefetch_degree: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError("line size must be a positive power of two")
        if self.size_bytes % self.line_size:
            raise ValueError("cache size must be a multiple of the line size")
        lines = self.size_bytes // self.line_size
        if self.associativity <= 0 or self.associativity > lines:
            raise ValueError(
                "associativity must be between 1 and the number of lines")
        if lines % self.associativity:
            raise ValueError("lines must divide evenly into sets")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class FilterCacheConfig:
    """Geometry of a speculative filter cache (the MuonTrap L0)."""

    size_bytes: int = 2048
    associativity: int = 4
    line_size: int = 64
    hit_latency: int = 1
    mshrs: int = 4

    def __post_init__(self) -> None:
        lines = self.size_bytes // self.line_size
        if lines < 1:
            raise ValueError("filter cache must hold at least one line")
        if self.associativity > lines:
            raise ValueError("associativity larger than number of lines")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.associativity)

    def fully_associative(self) -> "FilterCacheConfig":
        """Return a copy that is fully associative (used by Figure 5)."""
        return replace(self, associativity=self.num_lines)


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Tournament predictor sizes from Table 1."""

    local_entries: int = 2048
    global_entries: int = 8192
    chooser_entries: int = 2048
    btb_entries: int = 4096
    ras_entries: int = 16


@dataclass(frozen=True)
class PipelineConfig:
    """Out-of-order pipeline parameters from Table 1."""

    width: int = 8
    rob_entries: int = 192
    iq_entries: int = 64
    lq_entries: int = 32
    sq_entries: int = 32
    int_registers: int = 256
    fp_registers: int = 256
    int_alus: int = 6
    fp_alus: int = 4
    mult_div_alus: int = 2
    branch_predictor: BranchPredictorConfig = field(
        default_factory=BranchPredictorConfig)
    mispredict_penalty: int = 12
    frequency_ghz: float = 2.0


@dataclass(frozen=True)
class TLBConfig:
    """Split instruction/data TLBs, 64 entries, fully associative."""

    entries: int = 64
    page_size: int = 4096
    hit_latency: int = 0
    walk_latency: int = 30
    filter_entries: int = 16


@dataclass(frozen=True)
class MemoryConfig:
    """DRAM timing (DDR3-1600 11-11-11-28 at a 2 GHz core clock)."""

    access_latency: int = 150
    line_size: int = 64


@dataclass(frozen=True)
class ProtectionConfig:
    """Which MuonTrap mechanisms are enabled.

    Figures 8 and 9 of the paper enable these cumulatively:
    ``data_filter_cache`` -> ``coherence_protection`` ->
    ``instruction_filter_cache`` -> ``commit_time_prefetch`` ->
    ``clear_on_misspeculate`` (optional) -> ``parallel_l1_access``
    (optional optimisation).
    """

    data_filter_cache: bool = True
    instruction_filter_cache: bool = True
    filter_tlb: bool = True
    coherence_protection: bool = True
    commit_time_prefetch: bool = True
    clear_on_misspeculate: bool = False
    clear_on_context_switch: bool = True
    parallel_l1_access: bool = False
    #: **Insecure ablation** (off by default): scope MuonTrap's filter-cache
    #: invalidation multicast by the snoop filter instead of broadcasting to
    #: every core.  The paper requires the broadcast to be timing-invariant
    #: precisely because the directory cannot see filter caches; with this
    #: flag set, a speculatively filled filter line whose core holds no
    #: non-speculative copy survives a peer's exclusive upgrade, which both
    #: violates coherence and reintroduces a measurable timing channel.  The
    #: flag exists to quantify that cost; it is a machine-wide fabric
    #: property (any core requesting it scopes the shared bus's multicast).
    insecure_scoped_invalidate: bool = False

    @staticmethod
    def none() -> "ProtectionConfig":
        """All mechanisms disabled (used for the insecure-L0 ablation)."""
        return ProtectionConfig(
            data_filter_cache=False,
            instruction_filter_cache=False,
            filter_tlb=False,
            coherence_protection=False,
            commit_time_prefetch=False,
            clear_on_misspeculate=False,
            clear_on_context_switch=False,
            parallel_l1_access=False,
        )

    @staticmethod
    def full() -> "ProtectionConfig":
        """The default MuonTrap configuration evaluated in the paper."""
        return ProtectionConfig()

    def to_dict(self) -> Dict[str, Any]:
        """A lossless, JSON-ready description (see :mod:`repro.common.machine`)."""
        from repro.common.machine import config_to_dict
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ProtectionConfig":
        from repro.common.machine import config_from_dict
        return config_from_dict(payload, cls)


def _default_l1i() -> CacheConfig:
    return CacheConfig(name="l1i", size_bytes=32 * 1024, associativity=2,
                       hit_latency=1, mshrs=4)


def _default_l1d() -> CacheConfig:
    return CacheConfig(name="l1d", size_bytes=64 * 1024, associativity=2,
                       hit_latency=2, mshrs=4)


@dataclass(frozen=True)
class CoreConfig:
    """Complete configuration of one hardware context.

    Bundles everything that can differ between the cores of a heterogeneous
    machine: the out-of-order pipeline, the private cache geometry (L1s and
    optional private L2), the speculative filter caches, the TLBs, and —
    crucially — the protection scheme the core runs under.  A
    :class:`SystemConfig` either derives one identical ``CoreConfig`` per
    core from its machine-level fields (the historical, homogeneous path)
    or carries an explicit per-core list (big.LITTLE mixes, asymmetric
    protection).
    """

    mode: SchemeLike = ProtectionMode.MUONTRAP
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    l1i: CacheConfig = field(default_factory=_default_l1i)
    l1d: CacheConfig = field(default_factory=_default_l1d)
    private_l2: Optional[CacheConfig] = None
    data_filter: FilterCacheConfig = field(default_factory=FilterCacheConfig)
    inst_filter: FilterCacheConfig = field(default_factory=FilterCacheConfig)
    tlb: TLBConfig = field(default_factory=TLBConfig)
    protection: ProtectionConfig = field(default_factory=ProtectionConfig)

    def __post_init__(self) -> None:
        object.__setattr__(self, "mode", _normalise_mode(self.mode))
        if self.l1d.line_size != self.l1i.line_size:
            raise ValueError("a core's L1 line sizes must match")
        if (self.private_l2 is not None
                and self.private_l2.line_size != self.l1d.line_size):
            raise ValueError("private L2 line size must match the core's L1s")

    @property
    def scheme(self) -> str:
        """The core's protection-scheme name (registry key)."""
        return scheme_name(self.mode)

    def with_mode(self, mode: SchemeLike) -> "CoreConfig":
        return replace(self, mode=mode)

    def with_protection(self, protection: ProtectionConfig) -> "CoreConfig":
        return replace(self, protection=protection)

    def to_dict(self) -> Dict[str, Any]:
        """A lossless, JSON-ready description (see :mod:`repro.common.machine`)."""
        from repro.common.machine import config_to_dict
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CoreConfig":
        from repro.common.machine import config_from_dict
        return config_from_dict(payload, cls)


#: Pipeline of a small in-order-ish efficiency core: 2-wide, shallow
#: windows, a modest predictor.  Used by the big.LITTLE machine presets.
LITTLE_PIPELINE = PipelineConfig(
    width=2, rob_entries=64, iq_entries=16, lq_entries=16, sq_entries=16,
    int_registers=96, fp_registers=96, int_alus=2, fp_alus=1,
    mult_div_alus=1,
    branch_predictor=BranchPredictorConfig(
        local_entries=512, global_entries=2048, chooser_entries=512,
        btb_entries=1024, ras_entries=8),
    mispredict_penalty=8, frequency_ghz=1.2)


def big_core(mode: SchemeLike = ProtectionMode.MUONTRAP,
             private_l2: Optional[CacheConfig] = None,
             protection: Optional[ProtectionConfig] = None) -> CoreConfig:
    """A Table 1 big core, under the requested protection scheme."""
    return CoreConfig(mode=mode, private_l2=private_l2,
                      protection=protection or ProtectionConfig())


def little_core(mode: SchemeLike = ProtectionMode.MUONTRAP,
                private_l2: Optional[CacheConfig] = None,
                protection: Optional[ProtectionConfig] = None) -> CoreConfig:
    """A LITTLE core: 2-wide pipeline, halved L1s, same filter geometry."""
    return CoreConfig(
        mode=mode, pipeline=LITTLE_PIPELINE,
        l1i=CacheConfig(name="l1i", size_bytes=16 * 1024, associativity=2,
                        hit_latency=1, mshrs=2),
        l1d=CacheConfig(name="l1d", size_bytes=32 * 1024, associativity=2,
                        hit_latency=2, mshrs=2),
        private_l2=private_l2,
        protection=protection or ProtectionConfig())


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of a simulated system (Table 1 by default).

    The machine-level fields (``mode``, ``core``, ``l1i``, ...) describe the
    homogeneous case: every hardware context gets the same pipeline, caches
    and protection scheme.  Setting ``cores`` to an explicit per-core
    :class:`CoreConfig` list overrides them per context, which is how
    big.LITTLE machines and asymmetric-protection deployments are built;
    :meth:`core_config` is the single accessor the construction code uses,
    so an explicit list whose entries all equal the derived homogeneous view
    is bit-identical to not passing one at all.
    """

    mode: SchemeLike = ProtectionMode.MUONTRAP
    num_cores: int = 1
    core: PipelineConfig = field(default_factory=PipelineConfig)
    l1i: CacheConfig = field(default_factory=_default_l1i)
    l1d: CacheConfig = field(default_factory=_default_l1d)
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l2", size_bytes=2 * 1024 * 1024, associativity=8,
        hit_latency=20, mshrs=16, prefetcher="stride"))
    #: Optional *private*, unified per-core L2 between the L1s and the
    #: shared ``l2`` (which then plays the role of the LLC).  ``None`` — the
    #: historical topology — keeps the L1s directly on the shared L2.
    #: Multi-programmed co-run systems enable this so each hardware context
    #: owns a full private hierarchy stitched to the LLC through the
    #: coherence bus and snoop filter.
    private_l2: Optional[CacheConfig] = None
    data_filter: FilterCacheConfig = field(default_factory=FilterCacheConfig)
    inst_filter: FilterCacheConfig = field(default_factory=FilterCacheConfig)
    tlb: TLBConfig = field(default_factory=TLBConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    protection: ProtectionConfig = field(default_factory=ProtectionConfig)
    #: Optional explicit per-core configurations.  ``None`` (the default)
    #: derives one identical :class:`CoreConfig` per core from the
    #: machine-level fields above; a tuple must have exactly ``num_cores``
    #: entries and makes the machine (potentially) heterogeneous.
    cores: Optional[Tuple[CoreConfig, ...]] = None
    #: Engine selection: drive cores through the vectorized packed-trace
    #: engine (``OutOfOrderCore.run_vectorized``) instead of the scalar
    #: packed loop.  Both engines are golden-tested bit-identical, so this
    #: never changes results — only wall-clock time — but it is part of
    #: the config (like ``use_packed`` on the :class:`Simulator`) so
    #: campaigns, the api and the CLI can pin an engine end to end.
    use_vectorized: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "mode", _normalise_mode(self.mode))
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.l1d.line_size != self.l2.line_size:
            raise ValueError("cache line sizes must match across the "
                             "hierarchy (section 4.1 of the paper)")
        if (self.private_l2 is not None
                and self.private_l2.line_size != self.l2.line_size):
            raise ValueError("private L2 line size must match the shared "
                             "hierarchy")
        if self.cores is not None:
            if len(self.cores) != self.num_cores:
                raise ValueError(
                    f"per-core config list has {len(self.cores)} entries "
                    f"but num_cores is {self.num_cores}; provide exactly "
                    f"one CoreConfig per hardware context")
            for index, core in enumerate(self.cores):
                if core.l1d.line_size != self.l2.line_size:
                    raise ValueError(
                        f"core {index}: private cache line size "
                        f"{core.l1d.line_size} must match the shared "
                        f"hierarchy's {self.l2.line_size}")
                if core.tlb.page_size != self.tlb.page_size:
                    # The machine has ONE page-table manager, built with
                    # the machine-level page size; a per-core MMU assuming
                    # a different one would translate to wrong frames.
                    raise ValueError(
                        f"core {index}: TLB page size "
                        f"{core.tlb.page_size} must match the machine's "
                        f"{self.tlb.page_size} (one shared page table)")

    # -- per-core views -------------------------------------------------------
    def core_config(self, core_id: int) -> CoreConfig:
        """The complete configuration of one hardware context.

        This is the accessor every construction site (hierarchy, memory
        systems, out-of-order cores) goes through, so homogeneous machines
        and explicit per-core lists share one code path.
        """
        if self.cores is not None:
            return self.cores[core_id]
        return self._homogeneous_core()

    def _homogeneous_core(self) -> CoreConfig:
        return CoreConfig(mode=self.mode, pipeline=self.core, l1i=self.l1i,
                          l1d=self.l1d, private_l2=self.private_l2,
                          data_filter=self.data_filter,
                          inst_filter=self.inst_filter, tlb=self.tlb,
                          protection=self.protection)

    def core_configs(self) -> List[CoreConfig]:
        return [self.core_config(core_id)
                for core_id in range(self.num_cores)]

    def as_heterogeneous(self) -> "SystemConfig":
        """An equivalent config with the per-core list made explicit.

        Used by the differential tests: the result must simulate
        bit-identically to ``self``.
        """
        return replace(self, cores=tuple(self.core_configs()))

    @property
    def core_modes(self) -> Tuple[SchemeLike, ...]:
        return tuple(core.mode for core in self.core_configs())

    @property
    def core_schemes(self) -> Tuple[str, ...]:
        """Per-core protection-scheme names (registry keys)."""
        return tuple(core.scheme for core in self.core_configs())

    @property
    def is_scheme_heterogeneous(self) -> bool:
        """True when different cores run different protection schemes."""
        return len(set(self.core_schemes)) > 1

    @property
    def mode_label(self) -> str:
        """The mode string reports carry: one scheme, or the per-core list."""
        schemes = self.core_schemes
        if len(set(schemes)) == 1:
            return schemes[0]
        return "+".join(schemes)

    # -- uniform overrides ----------------------------------------------------
    def _override(self, **fields) -> "SystemConfig":
        """Apply a machine-wide field override.

        Every ``with_*`` helper routes through here: the machine-level
        field is replaced and, when an explicit per-core list exists, the
        same-named field of every :class:`CoreConfig` entry is replaced
        too (entries actually drive construction, so leaving them stale
        would silently ignore the override).  Sweeping a preset over
        schemes therefore behaves the same as sweeping the homogeneous
        default.
        """
        cores = self.cores
        if cores is not None:
            per_core = {name: value for name, value in fields.items()
                        if name in CoreConfig.__dataclass_fields__}
            cores = tuple(replace(core, **per_core) for core in cores)
        return replace(self, cores=cores, **fields)

    def with_mode(self, mode: SchemeLike) -> "SystemConfig":
        return self._override(mode=mode)

    def with_protection(self, protection: ProtectionConfig) -> "SystemConfig":
        return self._override(protection=protection)

    def with_cores(self, num_cores: int) -> "SystemConfig":
        """Resize to ``num_cores`` contexts.

        An explicit per-core list is tiled round-robin (a 2-entry
        big.LITTLE preset resized to 4 cores becomes big, LITTLE, big,
        LITTLE), so machine presets compose with workloads of any width.
        """
        cores = self.cores
        if cores is not None and len(cores) != num_cores:
            cores = tuple(cores[index % len(cores)]
                          for index in range(num_cores))
        return replace(self, num_cores=num_cores, cores=cores)

    def with_data_filter(self, data_filter: FilterCacheConfig) -> "SystemConfig":
        return self._override(data_filter=data_filter)

    def with_private_l2(self,
                        private_l2: Optional[CacheConfig]) -> "SystemConfig":
        return self._override(private_l2=private_l2)

    def with_core_configs(self,
                          cores: Sequence[CoreConfig]) -> "SystemConfig":
        """An explicitly heterogeneous machine built from per-core configs."""
        return replace(self, num_cores=len(cores), cores=tuple(cores))

    def with_vectorized(self, use_vectorized: bool) -> "SystemConfig":
        """The same machine with the execution engine pinned.

        ``True`` selects the vectorized packed-trace engine (the default),
        ``False`` the scalar packed loop; results are bit-identical either
        way.
        """
        return replace(self, use_vectorized=use_vectorized)

    # -- serialisation --------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A lossless, JSON-ready machine description.

        The inverse of :meth:`from_dict`; see :mod:`repro.common.machine`
        for the schema (versioned, unknown keys rejected).
        """
        from repro.common.machine import config_to_dict
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SystemConfig":
        """Build a machine from a (possibly partial) description dict."""
        from repro.common.machine import config_from_dict
        return config_from_dict(payload, cls)


def default_system_config(mode: SchemeLike = ProtectionMode.MUONTRAP,
                          num_cores: int = 1) -> SystemConfig:
    """The Table 1 system, in the requested protection mode."""
    return SystemConfig(mode=mode, num_cores=num_cores)


def spec_system_config(mode: SchemeLike = ProtectionMode.MUONTRAP) -> SystemConfig:
    """Single-core system used for SPEC CPU2006 experiments."""
    return default_system_config(mode=mode, num_cores=1)


def parsec_system_config(mode: SchemeLike = ProtectionMode.MUONTRAP,
                         num_cores: int = 4) -> SystemConfig:
    """Four-core system used for Parsec experiments."""
    return default_system_config(mode=mode, num_cores=num_cores)


#: Default geometry of the optional private per-core L2 used by co-run
#: systems: 256 KiB 8-way, mid-way between the L1s and the shared LLC.
DEFAULT_PRIVATE_L2 = CacheConfig(name="l2p", size_bytes=256 * 1024,
                                 associativity=8, hit_latency=10, mshrs=8)


def corun_system_config(mode: SchemeLike = ProtectionMode.MUONTRAP,
                        num_cores: int = 2,
                        private_l2: bool = True) -> SystemConfig:
    """A multi-programmed co-run system: one private hierarchy per core.

    Each hardware context gets its own L1s (always) and, when
    ``private_l2`` is set, a private unified L2; the shared ``l2`` of the
    base configuration then acts as the LLC behind the coherence bus and
    snoop filter.
    """
    config = default_system_config(mode=mode, num_cores=num_cores)
    if private_l2:
        config = config.with_private_l2(DEFAULT_PRIVATE_L2)
    return config


#: Geometry of the LITTLE cores' private L2 in the big.LITTLE presets:
#: half the big cores' capacity, slightly faster.
LITTLE_PRIVATE_L2 = CacheConfig(name="l2p", size_bytes=128 * 1024,
                                associativity=8, hit_latency=8, mshrs=4)


def heterogeneous_corun_config(modes: Sequence[SchemeLike],
                               private_l2: bool = True) -> SystemConfig:
    """A co-run machine of identical big cores under *per-core* schemes.

    One hardware context per entry of ``modes``; every core gets the
    Table 1 pipeline and cache geometry (plus, when ``private_l2`` is set,
    the default private L2), differing only in protection scheme.  This is
    the asymmetric-protection building block the cross-scheme attack
    matrix uses: an attacker core and a victim core under different
    defences on one shared fabric.
    """
    base = corun_system_config(mode=modes[0], num_cores=len(modes),
                               private_l2=private_l2)
    template = base.core_config(0)
    return base.with_core_configs(
        [template.with_mode(mode) for mode in modes])


def biglittle_system_config(
        big_modes: Sequence[SchemeLike],
        little_modes: Sequence[SchemeLike]) -> SystemConfig:
    """A big.LITTLE machine: Table 1 big cores beside 2-wide LITTLE cores.

    Each big core owns the default 256 KiB private L2, each LITTLE core a
    128 KiB one; all of them share the LLC, bus and snoop filter.  The
    per-core protection schemes come from the two mode lists.
    """
    cores = ([big_core(mode=mode, private_l2=DEFAULT_PRIVATE_L2)
              for mode in big_modes]
             + [little_core(mode=mode, private_l2=LITTLE_PRIVATE_L2)
                for mode in little_modes])
    base = default_system_config(mode=cores[0].mode, num_cores=len(cores))
    return base.with_core_configs(cores)
