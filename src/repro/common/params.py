"""Configuration dataclasses for the simulated system.

The default values mirror Table 1 of the MuonTrap paper: an 8-wide
out-of-order core at 2 GHz with a 192-entry ROB, 64-entry issue queue,
32-entry load and store queues, a tournament branch predictor, split 32 KiB /
64 KiB L1 caches, 2 KiB 4-way filter caches with 1-cycle hit latency, a
shared 2 MiB L2 with a stride prefetcher, and DDR3-1600 main memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional


class ProtectionMode(enum.Enum):
    """Which defence (if any) the simulated memory system implements."""

    UNPROTECTED = "unprotected"
    INSECURE_L0 = "insecure-l0"
    MUONTRAP = "muontrap"
    INVISISPEC_SPECTRE = "invisispec-spectre"
    INVISISPEC_FUTURE = "invisispec-future"
    STT_SPECTRE = "stt-spectre"
    STT_FUTURE = "stt-future"

    @property
    def is_invisispec(self) -> bool:
        return self in (ProtectionMode.INVISISPEC_SPECTRE,
                        ProtectionMode.INVISISPEC_FUTURE)

    @property
    def is_stt(self) -> bool:
        return self in (ProtectionMode.STT_SPECTRE, ProtectionMode.STT_FUTURE)

    @property
    def uses_filter_cache(self) -> bool:
        return self in (ProtectionMode.MUONTRAP, ProtectionMode.INSECURE_L0)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of a single cache."""

    name: str
    size_bytes: int
    associativity: int
    line_size: int = 64
    hit_latency: int = 1
    mshrs: int = 4
    replacement: str = "lru"
    prefetcher: Optional[str] = None
    prefetch_degree: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("cache size must be positive")
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError("line size must be a positive power of two")
        if self.size_bytes % self.line_size:
            raise ValueError("cache size must be a multiple of the line size")
        lines = self.size_bytes // self.line_size
        if self.associativity <= 0 or self.associativity > lines:
            raise ValueError(
                "associativity must be between 1 and the number of lines")
        if lines % self.associativity:
            raise ValueError("lines must divide evenly into sets")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class FilterCacheConfig:
    """Geometry of a speculative filter cache (the MuonTrap L0)."""

    size_bytes: int = 2048
    associativity: int = 4
    line_size: int = 64
    hit_latency: int = 1
    mshrs: int = 4

    def __post_init__(self) -> None:
        lines = self.size_bytes // self.line_size
        if lines < 1:
            raise ValueError("filter cache must hold at least one line")
        if self.associativity > lines:
            raise ValueError("associativity larger than number of lines")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.associativity)

    def fully_associative(self) -> "FilterCacheConfig":
        """Return a copy that is fully associative (used by Figure 5)."""
        return replace(self, associativity=self.num_lines)


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Tournament predictor sizes from Table 1."""

    local_entries: int = 2048
    global_entries: int = 8192
    chooser_entries: int = 2048
    btb_entries: int = 4096
    ras_entries: int = 16


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters from Table 1."""

    width: int = 8
    rob_entries: int = 192
    iq_entries: int = 64
    lq_entries: int = 32
    sq_entries: int = 32
    int_registers: int = 256
    fp_registers: int = 256
    int_alus: int = 6
    fp_alus: int = 4
    mult_div_alus: int = 2
    branch_predictor: BranchPredictorConfig = field(
        default_factory=BranchPredictorConfig)
    mispredict_penalty: int = 12
    frequency_ghz: float = 2.0


@dataclass(frozen=True)
class TLBConfig:
    """Split instruction/data TLBs, 64 entries, fully associative."""

    entries: int = 64
    page_size: int = 4096
    hit_latency: int = 0
    walk_latency: int = 30
    filter_entries: int = 16


@dataclass(frozen=True)
class MemoryConfig:
    """DRAM timing (DDR3-1600 11-11-11-28 at a 2 GHz core clock)."""

    access_latency: int = 150
    line_size: int = 64


@dataclass(frozen=True)
class ProtectionConfig:
    """Which MuonTrap mechanisms are enabled.

    Figures 8 and 9 of the paper enable these cumulatively:
    ``data_filter_cache`` -> ``coherence_protection`` ->
    ``instruction_filter_cache`` -> ``commit_time_prefetch`` ->
    ``clear_on_misspeculate`` (optional) -> ``parallel_l1_access``
    (optional optimisation).
    """

    data_filter_cache: bool = True
    instruction_filter_cache: bool = True
    filter_tlb: bool = True
    coherence_protection: bool = True
    commit_time_prefetch: bool = True
    clear_on_misspeculate: bool = False
    clear_on_context_switch: bool = True
    parallel_l1_access: bool = False

    @staticmethod
    def none() -> "ProtectionConfig":
        """All mechanisms disabled (used for the insecure-L0 ablation)."""
        return ProtectionConfig(
            data_filter_cache=False,
            instruction_filter_cache=False,
            filter_tlb=False,
            coherence_protection=False,
            commit_time_prefetch=False,
            clear_on_misspeculate=False,
            clear_on_context_switch=False,
            parallel_l1_access=False,
        )

    @staticmethod
    def full() -> "ProtectionConfig":
        """The default MuonTrap configuration evaluated in the paper."""
        return ProtectionConfig()


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of a simulated system (Table 1 by default)."""

    mode: ProtectionMode = ProtectionMode.MUONTRAP
    num_cores: int = 1
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l1i", size_bytes=32 * 1024, associativity=2, hit_latency=1,
        mshrs=4))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l1d", size_bytes=64 * 1024, associativity=2, hit_latency=2,
        mshrs=4))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="l2", size_bytes=2 * 1024 * 1024, associativity=8,
        hit_latency=20, mshrs=16, prefetcher="stride"))
    #: Optional *private*, unified per-core L2 between the L1s and the
    #: shared ``l2`` (which then plays the role of the LLC).  ``None`` — the
    #: historical topology — keeps the L1s directly on the shared L2.
    #: Multi-programmed co-run systems enable this so each hardware context
    #: owns a full private hierarchy stitched to the LLC through the
    #: coherence bus and snoop filter.
    private_l2: Optional[CacheConfig] = None
    data_filter: FilterCacheConfig = field(default_factory=FilterCacheConfig)
    inst_filter: FilterCacheConfig = field(default_factory=FilterCacheConfig)
    tlb: TLBConfig = field(default_factory=TLBConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    protection: ProtectionConfig = field(default_factory=ProtectionConfig)

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ValueError("need at least one core")
        if self.l1d.line_size != self.l2.line_size:
            raise ValueError("cache line sizes must match across the "
                             "hierarchy (section 4.1 of the paper)")
        if (self.private_l2 is not None
                and self.private_l2.line_size != self.l2.line_size):
            raise ValueError("private L2 line size must match the shared "
                             "hierarchy")

    def with_mode(self, mode: ProtectionMode) -> "SystemConfig":
        return replace(self, mode=mode)

    def with_protection(self, protection: ProtectionConfig) -> "SystemConfig":
        return replace(self, protection=protection)

    def with_cores(self, num_cores: int) -> "SystemConfig":
        return replace(self, num_cores=num_cores)

    def with_data_filter(self, data_filter: FilterCacheConfig) -> "SystemConfig":
        return replace(self, data_filter=data_filter)

    def with_private_l2(self,
                        private_l2: Optional[CacheConfig]) -> "SystemConfig":
        return replace(self, private_l2=private_l2)


def default_system_config(mode: ProtectionMode = ProtectionMode.MUONTRAP,
                          num_cores: int = 1) -> SystemConfig:
    """The Table 1 system, in the requested protection mode."""
    return SystemConfig(mode=mode, num_cores=num_cores)


def spec_system_config(mode: ProtectionMode = ProtectionMode.MUONTRAP) -> SystemConfig:
    """Single-core system used for SPEC CPU2006 experiments."""
    return default_system_config(mode=mode, num_cores=1)


def parsec_system_config(mode: ProtectionMode = ProtectionMode.MUONTRAP,
                         num_cores: int = 4) -> SystemConfig:
    """Four-core system used for Parsec experiments."""
    return default_system_config(mode=mode, num_cores=num_cores)


#: Default geometry of the optional private per-core L2 used by co-run
#: systems: 256 KiB 8-way, mid-way between the L1s and the shared LLC.
DEFAULT_PRIVATE_L2 = CacheConfig(name="l2p", size_bytes=256 * 1024,
                                 associativity=8, hit_latency=10, mshrs=8)


def corun_system_config(mode: ProtectionMode = ProtectionMode.MUONTRAP,
                        num_cores: int = 2,
                        private_l2: bool = True) -> SystemConfig:
    """A multi-programmed co-run system: one private hierarchy per core.

    Each hardware context gets its own L1s (always) and, when
    ``private_l2`` is set, a private unified L2; the shared ``l2`` of the
    base configuration then acts as the LLC behind the coherence bus and
    snoop filter.
    """
    config = default_system_config(mode=mode, num_cores=num_cores)
    if private_l2:
        config = config.with_private_l2(DEFAULT_PRIVATE_L2)
    return config
