"""Lightweight statistics collection.

Every component in the simulator registers named counters and histograms on a
shared :class:`StatGroup`.  The groups form a tree rooted at the system so
experiment code can dump everything in one call, mirroring the role of gem5's
stats framework in the original evaluation.
"""

from __future__ import annotations

import math
from types import MappingProxyType
from typing import Dict, Iterator, List, Mapping, Optional, Tuple


class Counter:
    """A monotonically increasing integer statistic."""

    __slots__ = ("name", "description", "value")

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    #: Batched update: hot loops (the packed-trace core engine) accumulate
    #: counts in plain local integers and fold them in with one call; an
    #: explicit alias of :meth:`increment` naming that pattern.
    add = increment

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Histogram:
    """A sparse histogram of integer samples."""

    def __init__(self, name: str, description: str = "") -> None:
        self.name = name
        self.description = description
        self._buckets: Dict[int, int] = {}
        self._count = 0
        self._total = 0

    def sample(self, value: int, weight: int = 1) -> None:
        self._buckets[value] = self._buckets.get(value, 0) + weight
        self._count += weight
        self._total += value * weight

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> int:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """The nearest-rank ``p``-th percentile of the samples.

        ``percentile(50)`` is the median, ``percentile(99)`` the tail
        latency summaries quote.  An empty histogram has no percentiles:
        asking for one raises :class:`ValueError` rather than silently
        reading 0.0, which a dashboard would mistake for a measured
        zero-latency tail.
        """
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self._count:
            raise ValueError(
                f"histogram {self.name!r} is empty: percentiles are "
                f"undefined (guard with `if histogram.count:`)")
        rank = max(1, math.ceil(self._count * p / 100))
        seen = 0
        for value in sorted(self._buckets):
            seen += self._buckets[value]
            if seen >= rank:
                return float(value)
        return float(max(self._buckets))

    def stddev(self) -> float:
        """Population standard deviation of the samples.

        A single sample legitimately has deviation 0.0; *no* samples have
        no deviation at all, so an empty histogram raises
        :class:`ValueError` instead of returning a 0.0 indistinguishable
        from a perfectly tight distribution.
        """
        if not self._count:
            raise ValueError(
                f"histogram {self.name!r} is empty: the standard "
                f"deviation is undefined (guard with "
                f"`if histogram.count:`)")
        mean = self.mean
        variance = sum(weight * (value - mean) ** 2
                       for value, weight in self._buckets.items())
        return (variance / self._count) ** 0.5

    def buckets(self) -> Mapping[int, int]:
        """A read-only live view of the bucket contents.

        Returning a :class:`MappingProxyType` instead of a fresh dict copy
        keeps repeated reporting calls allocation-free; callers that need a
        snapshot can ``dict()`` it themselves.
        """
        return MappingProxyType(self._buckets)

    def reset(self) -> None:
        self._buckets.clear()
        self._count = 0
        self._total = 0


class StatGroup:
    """A named collection of counters, histograms and child groups."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._children: Dict[str, "StatGroup"] = {}

    # -- construction -----------------------------------------------------
    def counter(self, name: str, description: str = "") -> Counter:
        """Return the counter called ``name``, creating it if necessary."""
        if name not in self._counters:
            self._counters[name] = Counter(name, description)
        return self._counters[name]

    def histogram(self, name: str, description: str = "") -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, description)
        return self._histograms[name]

    def child(self, name: str) -> "StatGroup":
        if name not in self._children:
            self._children[name] = StatGroup(name)
        return self._children[name]

    # -- access -----------------------------------------------------------
    def get(self, path: str) -> int:
        """Read a counter by dotted path, e.g. ``"l1d.hits"``."""
        group, leaf = self._resolve(path)
        if leaf in group._counters:
            return group._counters[leaf].value
        raise KeyError(path)

    def get_or_zero(self, path: str) -> int:
        try:
            return self.get(path)
        except KeyError:
            return 0

    def _resolve(self, path: str) -> Tuple["StatGroup", str]:
        parts = path.split(".")
        group: StatGroup = self
        for part in parts[:-1]:
            if part not in group._children:
                raise KeyError(path)
            group = group._children[part]
        return group, parts[-1]

    # -- reporting --------------------------------------------------------
    def walk(self, prefix: str = "") -> Iterator[Tuple[str, int]]:
        """Yield ``(dotted_name, value)`` for every counter in the tree."""
        base = f"{prefix}{self.name}." if self.name else prefix
        for name, counter in sorted(self._counters.items()):
            yield base + name, counter.value
        for name, histogram in sorted(self._histograms.items()):
            yield base + name + ".count", histogram.count
            yield base + name + ".total", histogram.total
        for name in sorted(self._children):
            yield from self._children[name].walk(base)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.walk())

    def to_timeseries(self) -> "TimeSeries":
        """A :class:`~repro.telemetry.metrics.TimeSeries` over this tree.

        Each ``sample(cycle)`` call snapshots every counter (dotted-path
        columns); see :mod:`repro.telemetry.metrics` for the CSV export and
        the delta/rate helpers that turn cumulative counters into MPKI or
        squash rate over time.
        """
        from repro.telemetry.metrics import TimeSeries
        return TimeSeries(self)

    def reset(self) -> None:
        for counter in self._counters.values():
            counter.reset()
        for histogram in self._histograms.values():
            histogram.reset()
        for childgroup in self._children.values():
            childgroup.reset()

    def report(self, indent: int = 0) -> str:
        """A human-readable multi-line report of the whole tree."""
        lines: List[str] = []
        pad = "  " * indent
        if self.name:
            lines.append(f"{pad}{self.name}:")
            pad += "  "
        for name, counter in sorted(self._counters.items()):
            lines.append(f"{pad}{name:<32} {counter.value}")
        for name, histogram in sorted(self._histograms.items()):
            lines.append(
                f"{pad}{name:<32} count={histogram.count} mean={histogram.mean:.2f}")
        for name in sorted(self._children):
            lines.append(self._children[name].report(indent + 1))
        return "\n".join(lines)


def ratio(numerator: int, denominator: int,
          default: float = 0.0) -> float:
    """Safe division used by the experiment reporting code."""
    return numerator / denominator if denominator else default


def geometric_mean(values: List[float]) -> float:
    """Geometric mean of positive values (0 for an empty list)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        product *= value
    return product ** (1.0 / len(values))
