"""Deterministic random number generation.

Every stochastic component (the workload generator, random replacement, the
DRAM bank-conflict jitter) takes an explicit :class:`DeterministicRng` so
that simulations are reproducible given a seed.  The class wraps
:class:`random.Random` and adds a few distributions the workload generator
needs (Zipf-like reuse distances and bounded geometric run lengths).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with helpers used across the simulator."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, salt: int) -> "DeterministicRng":
        """Derive an independent stream; used per core / per workload."""
        return DeterministicRng((self.seed * 1000003 + salt) & 0xFFFFFFFF)

    # -- basic draws -------------------------------------------------------
    def uniform(self) -> float:
        return self._random.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    # -- distributions -----------------------------------------------------
    def geometric(self, mean: float, maximum: Optional[int] = None) -> int:
        """A geometric draw with the given mean, at least 1."""
        if mean <= 1.0:
            return 1
        p = 1.0 / mean
        value = 1
        while not self.chance(p):
            value += 1
            if maximum is not None and value >= maximum:
                return maximum
        return value

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """An index in ``[0, n)`` drawn with a Zipf-like bias toward 0.

        Used to model temporal locality: small indices (recently used
        addresses) are much more likely than large ones.
        """
        if n <= 1:
            return 0
        # Inverse-CDF of a continuous approximation of the Zipf distribution.
        u = self._random.random()
        value = int(n ** u) - 1
        if value < 0:
            value = 0
        if value >= n:
            value = n - 1
        if skew != 1.0:
            scaled = int(value * skew)
            value = min(n - 1, scaled)
        return value

    def weighted_choice(self, items: Sequence[T],
                        weights: Sequence[float]) -> T:
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        return self._random.choices(list(items), weights=list(weights), k=1)[0]
