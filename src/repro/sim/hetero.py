"""The heterogeneous (mixed-scheme) memory system.

A machine whose cores run *different* protection schemes — a MuonTrap big
core beside an unprotected LITTLE core, say — still has exactly one
non-speculative fabric: one shared LLC, one coherence bus, one snoop
filter, one main memory.  What differs per core is the speculative
front-end (filter caches, speculative buffers, taint rules).

:class:`HeterogeneousMemorySystem` therefore builds the shared
:class:`~repro.caches.hierarchy.NonSpeculativeHierarchy` once and
instantiates one *scheme frontend* per protection mode present in the
configuration, each serving only its cores and all wired to the same
hierarchy.  The frontends are the ordinary single-scheme memory systems
(MuonTrap, unprotected, insecure-L0, InvisiSpec, STT) constructed with
``hierarchy=``/``core_ids=``, so a heterogeneous machine reuses every line
of the single-scheme access paths — there is no separate "hetero" timing
model to drift out of sync.

The composite implements the full :class:`~repro.cpu.interface.MemorySystem`
API by dispatching on ``core_id``; :meth:`frontend` additionally lets
:func:`~repro.sim.system.build_system` hand each out-of-order core its own
scheme frontend directly, so the core's hoisted capability probes (STT
taint delays, InvisiSpec validation) reflect that core's scheme and not a
neighbour's.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.caches.hierarchy import NonSpeculativeHierarchy
from repro.common.params import SchemeLike, SystemConfig
from repro.common.rng import DeterministicRng
from repro.common.statistics import StatGroup
from repro.cpu.interface import MemoryAccessResult, MemorySystem
from repro.memory.page_table import PageTableManager
from repro.schemes import get_scheme


def frontend_factory(mode: SchemeLike) -> Callable[..., MemorySystem]:
    """The memory-system factory of one scheme.

    A thin wrapper over the scheme registry (:mod:`repro.schemes`), kept
    because every construction site historically dispatched through this
    name.  Accepts scheme name strings and (deprecated)
    :class:`~repro.common.params.ProtectionMode` members alike; raises
    :class:`~repro.schemes.UnknownSchemeError` (a ``ValueError``) for
    unregistered names.
    """
    return get_scheme(mode).factory


class HeterogeneousMemorySystem(MemorySystem):
    """Per-core scheme frontends over one shared non-speculative fabric."""

    name = "heterogeneous"

    def __init__(self, config: SystemConfig,
                 page_tables: Optional[PageTableManager] = None,
                 stats: Optional[StatGroup] = None,
                 rng: Optional[DeterministicRng] = None) -> None:
        self.config = config
        stats = stats or StatGroup("heterogeneous")
        self.stats = stats
        rng = rng or DeterministicRng(0)
        self.page_tables = (page_tables if page_tables is not None
                            else PageTableManager(
                                page_size=config.tlb.page_size))
        self.hierarchy = NonSpeculativeHierarchy(
            config, stats=stats.child("hierarchy"), rng=rng)
        # One frontend per scheme present, each serving its cores.  Stats
        # nest under the scheme slug so two frontends never share counters:
        # hetero.muontrap.core0.data_filter..., hetero.unprotected.core1...
        by_scheme: Dict[str, List[int]] = {}
        for core_id in range(config.num_cores):
            by_scheme.setdefault(config.core_config(core_id).scheme,
                                 []).append(core_id)
        self._frontends: Dict[int, MemorySystem] = {}
        self.scheme_frontends: Dict[str, MemorySystem] = {}
        for scheme, core_ids in by_scheme.items():
            spec = get_scheme(scheme)
            frontend = spec.factory(
                config, page_tables=self.page_tables,
                stats=stats.child(spec.slug),
                rng=rng, hierarchy=self.hierarchy, core_ids=core_ids)
            self.scheme_frontends[scheme] = frontend
            for core_id in core_ids:
                self._frontends[core_id] = frontend

    # -- per-core routing -----------------------------------------------------
    def frontend(self, core_id: int) -> MemorySystem:
        return self._frontends[core_id]

    # -- execute-time ---------------------------------------------------------
    def load(self, core_id: int, process_id: int, virtual_address: int,
             now: int, *, speculative: bool, pc: int = 0
             ) -> MemoryAccessResult:
        return self._frontends[core_id].load(
            core_id, process_id, virtual_address, now,
            speculative=speculative, pc=pc)

    def store_address_ready(self, core_id: int, process_id: int,
                            virtual_address: int, now: int, *,
                            speculative: bool, pc: int = 0
                            ) -> MemoryAccessResult:
        return self._frontends[core_id].store_address_ready(
            core_id, process_id, virtual_address, now,
            speculative=speculative, pc=pc)

    def fetch(self, core_id: int, process_id: int, virtual_address: int,
              now: int, *, speculative: bool, pc: int = 0
              ) -> MemoryAccessResult:
        return self._frontends[core_id].fetch(
            core_id, process_id, virtual_address, now,
            speculative=speculative, pc=pc)

    # -- commit-time ----------------------------------------------------------
    def commit_load(self, core_id: int, process_id: int, virtual_address: int,
                    now: int, *, pc: int = 0) -> int:
        return self._frontends[core_id].commit_load(
            core_id, process_id, virtual_address, now, pc=pc)

    def commit_store(self, core_id: int, process_id: int,
                     virtual_address: int, now: int, *, pc: int = 0) -> int:
        return self._frontends[core_id].commit_store(
            core_id, process_id, virtual_address, now, pc=pc)

    def commit_fetch(self, core_id: int, process_id: int,
                     virtual_address: int, now: int, *, pc: int = 0) -> int:
        return self._frontends[core_id].commit_fetch(
            core_id, process_id, virtual_address, now, pc=pc)

    # -- control events -------------------------------------------------------
    def squash(self, core_id: int, now: int) -> None:
        self._frontends[core_id].squash(core_id, now)

    def context_switch(self, core_id: int, now: int) -> None:
        self._frontends[core_id].context_switch(core_id, now)

    def switch_to_process(self, core_id: int, process_id: int,
                          now: int = 0) -> None:
        frontend = self._frontends[core_id]
        switch = getattr(frontend, "switch_to_process", None)
        if switch is not None:
            switch(core_id, process_id, now)
        else:  # pragma: no cover - every frontend implements it today
            frontend.context_switch(core_id, now)

    def sandbox_entry(self, core_id: int, now: int) -> None:
        self._frontends[core_id].sandbox_entry(core_id, now)

    def drain(self, core_id: int, now: int) -> None:
        self._frontends[core_id].drain(core_id, now)
