"""The experiment runner.

Runs a benchmark under several protection modes (or several configurations
of one mode) and reports normalised execution times relative to the
unprotected baseline — the metric every performance figure in the paper
uses.  The runner is deterministic: the same seed produces identical traces
for every mode, so the comparison isolates the memory-system differences.

The number of instructions per workload is configurable; the
``REPRO_INSTRUCTIONS`` environment variable overrides the default so the
benchmark harness can be scaled to the available time budget.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.params import ProtectionConfig, ProtectionMode, SystemConfig
from repro.common.statistics import geometric_mean
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.system import build_system
from repro.workloads.generator import generate_workload
from repro.workloads.profiles import WorkloadProfile, get_profile

DEFAULT_INSTRUCTIONS = 8000
DEFAULT_WARMUP_FRACTION = 0.35


def instructions_per_workload(default: Optional[int] = None) -> int:
    """Instruction sample length, overridable via ``REPRO_INSTRUCTIONS``."""
    value = os.environ.get("REPRO_INSTRUCTIONS")
    if value:
        return max(500, int(value))
    return default if default is not None else DEFAULT_INSTRUCTIONS


@dataclass
class BenchmarkRun:
    """One benchmark executed under one system configuration."""

    benchmark: str
    mode_label: str
    result: SimulationResult

    @property
    def cycles(self) -> int:
        return self.result.cycles


@dataclass
class NormalisedSeries:
    """Normalised execution times of one scheme over a set of benchmarks."""

    label: str
    values: Dict[str, float] = field(default_factory=dict)

    def geomean(self) -> float:
        return geometric_mean(list(self.values.values()))

    def worst_case(self) -> float:
        return max(self.values.values()) if self.values else 0.0

    def best_case(self) -> float:
        return min(self.values.values()) if self.values else 0.0


class ExperimentRunner:
    """Runs benchmark × configuration matrices and normalises the results."""

    def __init__(self, instructions: Optional[int] = None,
                 seed: int = 1234,
                 warmup_fraction: float = DEFAULT_WARMUP_FRACTION) -> None:
        self.instructions = instructions_per_workload(instructions)
        self.seed = seed
        self.warmup_fraction = warmup_fraction
        self._cache: Dict[tuple, SimulationResult] = {}

    # -- single runs -----------------------------------------------------------
    def run_benchmark(self, benchmark: str, config: SystemConfig,
                      label: Optional[str] = None,
                      collect_stats: bool = False) -> BenchmarkRun:
        """Run one benchmark on one configuration (cached per label)."""
        profile = get_profile(benchmark)
        return self.run_profile(profile, config, label=label,
                                collect_stats=collect_stats)

    def run_profile(self, profile: WorkloadProfile, config: SystemConfig,
                    label: Optional[str] = None,
                    collect_stats: bool = False) -> BenchmarkRun:
        label = label or config.mode.value
        cache_key = (profile.name, label, self.instructions, self.seed,
                     collect_stats)
        if cache_key not in self._cache:
            workload = generate_workload(profile, self.instructions,
                                         seed=self.seed)
            cores_needed = max(1, profile.num_threads)
            system_config = config.with_cores(max(config.num_cores,
                                                  cores_needed))
            system = build_system(system_config, seed=self.seed)
            simulator = Simulator(system)
            self._cache[cache_key] = simulator.run(
                workload, collect_stats=collect_stats,
                warmup_fraction=self.warmup_fraction)
        return BenchmarkRun(benchmark=profile.name, mode_label=label,
                            result=self._cache[cache_key])

    # -- normalised comparisons ---------------------------------------------------
    def normalised_series(self, benchmarks: Sequence[str],
                          configs: Dict[str, SystemConfig],
                          baseline_config: SystemConfig,
                          baseline_label: str = "baseline"
                          ) -> Dict[str, NormalisedSeries]:
        """Run every benchmark under every configuration and normalise.

        Returns one :class:`NormalisedSeries` per configuration label, with
        values >1 meaning slower than the unprotected baseline (the paper's
        convention: "normalised execution time, lower is better").
        """
        series = {label: NormalisedSeries(label=label) for label in configs}
        for benchmark in benchmarks:
            baseline = self.run_benchmark(benchmark, baseline_config,
                                          label=baseline_label)
            for label, config in configs.items():
                run = self.run_benchmark(benchmark, config, label=label)
                series[label].values[benchmark] = (
                    run.result.cycles / baseline.result.cycles
                    if baseline.result.cycles else 0.0)
        return series

    def clear_cache(self) -> None:
        self._cache.clear()


def standard_modes(num_cores: int = 1) -> Dict[str, SystemConfig]:
    """The five schemes compared in Figures 3 and 4."""
    base = SystemConfig(num_cores=num_cores)
    return {
        "MuonTrap": base.with_mode(ProtectionMode.MUONTRAP),
        "InvisiSpec-Spectre": base.with_mode(
            ProtectionMode.INVISISPEC_SPECTRE),
        "InvisiSpec-Future": base.with_mode(ProtectionMode.INVISISPEC_FUTURE),
        "STT-Spectre": base.with_mode(ProtectionMode.STT_SPECTRE),
        "STT-Future": base.with_mode(ProtectionMode.STT_FUTURE),
    }


def unprotected_config(num_cores: int = 1) -> SystemConfig:
    return SystemConfig(num_cores=num_cores,
                        mode=ProtectionMode.UNPROTECTED)


def cumulative_protection_configs(num_cores: int = 1,
                                  include_parallel_l1: bool = False
                                  ) -> Dict[str, SystemConfig]:
    """The cumulative ablation series of Figures 8 and 9.

    Each label enables the mechanisms of the previous one plus one more,
    matching the legend of the figures: ``insecure L0`` -> ``fcache only``
    -> ``coherency`` -> ``ifcache`` -> ``prefetching`` -> ``clear misspec``
    (-> ``parallel L1d`` for Figure 9).
    """
    base = SystemConfig(num_cores=num_cores, mode=ProtectionMode.MUONTRAP)
    none = ProtectionConfig.none()
    configs: Dict[str, SystemConfig] = {
        "insecure L0": SystemConfig(
            num_cores=num_cores, mode=ProtectionMode.INSECURE_L0,
            protection=none),
        "fcache only": base.with_protection(ProtectionConfig(
            data_filter_cache=True, instruction_filter_cache=False,
            filter_tlb=False, coherence_protection=False,
            commit_time_prefetch=False, clear_on_misspeculate=False)),
        "coherency": base.with_protection(ProtectionConfig(
            data_filter_cache=True, instruction_filter_cache=False,
            filter_tlb=False, coherence_protection=True,
            commit_time_prefetch=False, clear_on_misspeculate=False)),
        "ifcache": base.with_protection(ProtectionConfig(
            data_filter_cache=True, instruction_filter_cache=True,
            filter_tlb=True, coherence_protection=True,
            commit_time_prefetch=False, clear_on_misspeculate=False)),
        "prefetching": base.with_protection(ProtectionConfig(
            data_filter_cache=True, instruction_filter_cache=True,
            filter_tlb=True, coherence_protection=True,
            commit_time_prefetch=True, clear_on_misspeculate=False)),
        "clear misspec": base.with_protection(ProtectionConfig(
            data_filter_cache=True, instruction_filter_cache=True,
            filter_tlb=True, coherence_protection=True,
            commit_time_prefetch=True, clear_on_misspeculate=True)),
    }
    if include_parallel_l1:
        configs["parallel L1d"] = base.with_protection(ProtectionConfig(
            data_filter_cache=True, instruction_filter_cache=True,
            filter_tlb=True, coherence_protection=True,
            commit_time_prefetch=True, clear_on_misspeculate=False,
            parallel_l1_access=True))
    return configs
