"""The experiment runner.

Runs a benchmark under several protection modes (or several configurations
of one mode) and reports normalised execution times relative to the
unprotected baseline — the metric every performance figure in the paper
uses.  The runner is deterministic: the same seed produces identical traces
for every mode, so the comparison isolates the memory-system differences.

The number of instructions per workload is configurable; the
``REPRO_INSTRUCTIONS`` environment variable overrides the default so the
benchmark harness can be scaled to the available time budget, and
``REPRO_JOBS`` sets the worker count used when runs execute through the
campaign layer (:mod:`repro.harness.campaign`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.common.params import ProtectionConfig, SystemConfig
from repro.common.statistics import geometric_mean
from repro.sim.simulator import SimulationResult
from repro.workloads.profiles import WorkloadProfile, get_profile

if TYPE_CHECKING:  # imported lazily at runtime to avoid an import cycle
    from repro.harness.store import ResultStore

DEFAULT_INSTRUCTIONS = 8000
DEFAULT_WARMUP_FRACTION = 0.35


def env_int(name: str, minimum: int = 1) -> Optional[int]:
    """Read an integer environment variable, or ``None`` when unset.

    A set-but-non-integer value is a configuration mistake; fail with a
    clear message naming the variable instead of an uncaught
    ``ValueError`` from ``int()`` deep inside the harness.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name} must be an integer, "
            f"got {raw!r}") from None
    if value < minimum:
        # A set-but-too-small value (REPRO_JOBS=0, REPRO_INSTRUCTIONS=10)
        # is the same class of configuration mistake as a non-integer one;
        # silently clamping it would hide the error.
        raise ValueError(
            f"environment variable {name} must be at least {minimum}, "
            f"got {raw!r}")
    return value


def instructions_per_workload(explicit: Optional[int] = None,
                              default: Optional[int] = None) -> int:
    """Instruction sample length.

    Precedence: an ``explicit`` request (a CLI flag, a constructor
    argument) wins outright; otherwise the ``REPRO_INSTRUCTIONS``
    environment variable; otherwise ``default`` (or the module default).
    """
    if explicit is not None:
        return explicit
    value = env_int("REPRO_INSTRUCTIONS", minimum=500)
    if value is not None:
        return value
    return default if default is not None else DEFAULT_INSTRUCTIONS


def parallel_jobs(default: Optional[int] = None) -> int:
    """Worker-pool size, overridable via ``REPRO_JOBS``.

    When the variable is unset, ``default`` wins (callers that must stay
    sequential pass ``1``); a ``default`` of ``None`` means "use every
    core".
    """
    value = env_int("REPRO_JOBS", minimum=1)
    if value is not None:
        return value
    if default is not None:
        return max(1, default)
    return os.cpu_count() or 1


@dataclass
class BenchmarkRun:
    """One benchmark executed under one system configuration."""

    benchmark: str
    mode_label: str
    result: SimulationResult

    @property
    def cycles(self) -> int:
        return self.result.cycles


@dataclass
class NormalisedSeries:
    """Normalised execution times of one scheme over a set of benchmarks."""

    label: str
    values: Dict[str, float] = field(default_factory=dict)

    def geomean(self) -> float:
        return geometric_mean(list(self.values.values()))

    def worst_case(self) -> float:
        return max(self.values.values()) if self.values else 0.0

    def best_case(self) -> float:
        return min(self.values.values()) if self.values else 0.0


class ExperimentRunner:
    """Runs benchmark × configuration matrices and normalises the results.

    Execution routes through the campaign layer
    (:mod:`repro.harness.campaign`): results are cached in memory by a
    stable content hash of their inputs, optionally persisted to a
    :class:`~repro.harness.store.ResultStore`, and
    :meth:`normalised_series` fans the run matrix out over a worker pool
    when ``jobs`` (or ``REPRO_JOBS``) allows more than one worker.  The
    results are identical whatever the worker count.
    """

    def __init__(self, instructions: Optional[int] = None,
                 seed: int = 1234,
                 warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                 store: Optional["ResultStore"] = None,
                 jobs: Optional[int] = None) -> None:
        self.instructions = instructions_per_workload(instructions)
        self.seed = seed
        self.warmup_fraction = warmup_fraction
        self.store = store
        # Default to sequential unless REPRO_JOBS asks for a pool: single
        # runs are not worth a fork, and tests stay single-process.
        self.jobs = parallel_jobs(default=1) if jobs is None else max(1, jobs)
        self._cache: Dict[str, SimulationResult] = {}

    # -- single runs -----------------------------------------------------------
    def run_benchmark(self, benchmark: str, config: SystemConfig,
                      label: Optional[str] = None,
                      collect_stats: bool = False) -> BenchmarkRun:
        """Run one benchmark on one configuration (cached by content)."""
        profile = get_profile(benchmark)
        return self.run_profile(profile, config, label=label,
                                collect_stats=collect_stats)

    def _spec(self, profile: WorkloadProfile, config: SystemConfig,
              label: str, collect_stats: bool):
        from repro.harness.campaign import RunSpec
        return RunSpec(profile=profile, label=label, config=config,
                       instructions=self.instructions, seed=self.seed,
                       warmup_fraction=self.warmup_fraction,
                       collect_stats=collect_stats)

    def run_profile(self, profile: WorkloadProfile, config: SystemConfig,
                    label: Optional[str] = None,
                    collect_stats: bool = False) -> BenchmarkRun:
        # Single runs route through the public facade (repro.api), sharing
        # this runner's in-memory cache and result store.
        from repro import api
        label = label or config.mode_label
        outcome = api.simulate(
            profile, config, seed=self.seed, instructions=self.instructions,
            warmup_fraction=self.warmup_fraction,
            collect_stats=collect_stats, label=label, store=self.store,
            cache=self._cache)
        return BenchmarkRun(benchmark=profile.name, mode_label=label,
                            result=outcome.result)

    # -- normalised comparisons ---------------------------------------------------
    def normalised_series(self, benchmarks: Sequence[str],
                          configs: Dict[str, SystemConfig],
                          baseline_config: SystemConfig,
                          baseline_label: str = "baseline"
                          ) -> Dict[str, NormalisedSeries]:
        """Run every benchmark under every configuration and normalise.

        Returns one :class:`NormalisedSeries` per configuration label, with
        values >1 meaning slower than the unprotected baseline (the paper's
        convention: "normalised execution time, lower is better").  Times
        are frequency-scaled (identical to raw cycle counts when every
        core runs at the reference clock).  The matrix routes through the
        public facade (:func:`repro.api.build_comparison`, the campaign
        layer underneath), so independent cells run concurrently when
        more than one job is configured.
        """
        from repro import api
        campaign = api.build_comparison(
            dict(configs), list(benchmarks), baseline=baseline_config,
            baseline_label=baseline_label,
            instructions=self.instructions, seed=self.seed,
            warmup_fraction=self.warmup_fraction, store=self.store,
            jobs=self.jobs, cache=self._cache)
        return campaign.run().normalised_series()

    def clear_cache(self) -> None:
        self._cache.clear()


def standard_modes(num_cores: int = 1) -> Dict[str, SystemConfig]:
    """The five schemes compared in Figures 3 and 4.

    Derived from the scheme registry (the specs flagged
    ``figure_series``), so a registered scheme can opt into the standard
    comparison without this module changing.
    """
    from repro.schemes import figure_series_schemes
    base = SystemConfig(num_cores=num_cores)
    return {spec.display_name: base.with_mode(spec.name)
            for spec in figure_series_schemes()}


def unprotected_config(num_cores: int = 1) -> SystemConfig:
    return SystemConfig(num_cores=num_cores,
                        mode="unprotected")


def cumulative_protection_configs(num_cores: int = 1,
                                  include_parallel_l1: bool = False
                                  ) -> Dict[str, SystemConfig]:
    """The cumulative ablation series of Figures 8 and 9.

    Each label enables the mechanisms of the previous one plus one more,
    matching the legend of the figures: ``insecure L0`` -> ``fcache only``
    -> ``coherency`` -> ``ifcache`` -> ``prefetching`` -> ``clear misspec``
    (-> ``parallel L1d`` for Figure 9).
    """
    base = SystemConfig(num_cores=num_cores, mode="muontrap")
    none = ProtectionConfig.none()
    configs: Dict[str, SystemConfig] = {
        "insecure L0": SystemConfig(
            num_cores=num_cores, mode="insecure-l0",
            protection=none),
        "fcache only": base.with_protection(ProtectionConfig(
            data_filter_cache=True, instruction_filter_cache=False,
            filter_tlb=False, coherence_protection=False,
            commit_time_prefetch=False, clear_on_misspeculate=False)),
        "coherency": base.with_protection(ProtectionConfig(
            data_filter_cache=True, instruction_filter_cache=False,
            filter_tlb=False, coherence_protection=True,
            commit_time_prefetch=False, clear_on_misspeculate=False)),
        "ifcache": base.with_protection(ProtectionConfig(
            data_filter_cache=True, instruction_filter_cache=True,
            filter_tlb=True, coherence_protection=True,
            commit_time_prefetch=False, clear_on_misspeculate=False)),
        "prefetching": base.with_protection(ProtectionConfig(
            data_filter_cache=True, instruction_filter_cache=True,
            filter_tlb=True, coherence_protection=True,
            commit_time_prefetch=True, clear_on_misspeculate=False)),
        "clear misspec": base.with_protection(ProtectionConfig(
            data_filter_cache=True, instruction_filter_cache=True,
            filter_tlb=True, coherence_protection=True,
            commit_time_prefetch=True, clear_on_misspeculate=True)),
    }
    if include_parallel_l1:
        configs["parallel L1d"] = base.with_protection(ProtectionConfig(
            data_filter_cache=True, instruction_filter_cache=True,
            filter_tlb=True, coherence_protection=True,
            commit_time_prefetch=True, clear_on_misspeculate=False,
            parallel_l1_access=True))
    return configs
