"""Parameter-sweep helpers for the tuning experiments (Figures 5 and 6)."""

from __future__ import annotations

import warnings
from dataclasses import replace
from typing import Dict, List, Sequence

from repro.common.params import FilterCacheConfig, SystemConfig


def filter_cache_size_configs(sizes_bytes: Sequence[int],
                              num_cores: int = 4,
                              fully_associative: bool = True
                              ) -> Dict[int, SystemConfig]:
    """Figure 5: MuonTrap systems with varying (fully associative) L0 sizes."""
    configs: Dict[int, SystemConfig] = {}
    for size in sizes_bytes:
        lines = max(1, size // 64)
        ways = lines if fully_associative else min(4, lines)
        filter_config = FilterCacheConfig(size_bytes=size, associativity=ways)
        configs[size] = SystemConfig(
            num_cores=num_cores, mode="muontrap",
            data_filter=filter_config)
    return configs


def filter_cache_associativity_configs(associativities: Sequence[int],
                                        size_bytes: int = 2048,
                                        num_cores: int = 4
                                        ) -> Dict[int, SystemConfig]:
    """Figure 6: 2 KiB filter caches from direct mapped to fully associative."""
    configs: Dict[int, SystemConfig] = {}
    max_ways = size_bytes // 64
    for requested in associativities:
        ways = min(requested, max_ways)
        if ways != requested:
            if ways in configs:
                # Clamping already produced this design point; silently
                # overwriting would collapse distinct requested sweep
                # points into one dict key.
                warnings.warn(
                    f"associativity {requested} exceeds the {max_ways} "
                    f"lines of a {size_bytes}-byte filter cache and "
                    f"duplicates the {ways}-way point; skipping",
                    stacklevel=2)
                continue
            warnings.warn(
                f"associativity {requested} exceeds the {max_ways} lines "
                f"of a {size_bytes}-byte filter cache; clamping to "
                f"{ways}-way (fully associative)",
                stacklevel=2)
        filter_config = FilterCacheConfig(size_bytes=size_bytes,
                                          associativity=ways)
        configs[ways] = SystemConfig(
            num_cores=num_cores, mode="muontrap",
            data_filter=filter_config)
    return configs


DEFAULT_SIZE_SWEEP: List[int] = [64, 128, 256, 512, 1024, 2048, 4096]
DEFAULT_ASSOCIATIVITY_SWEEP: List[int] = [1, 2, 4, 8, 16, 32]
