"""Simulation driver: system construction, execution and experiment running."""

from repro.sim.runner import (
    BenchmarkRun,
    ExperimentRunner,
    NormalisedSeries,
    cumulative_protection_configs,
    env_int,
    instructions_per_workload,
    parallel_jobs,
    standard_modes,
    unprotected_config,
)
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.sweeps import (
    DEFAULT_ASSOCIATIVITY_SWEEP,
    DEFAULT_SIZE_SWEEP,
    filter_cache_associativity_configs,
    filter_cache_size_configs,
)
from repro.sim.system import SimulatedSystem, build_memory_system, build_system

__all__ = [
    "BenchmarkRun",
    "DEFAULT_ASSOCIATIVITY_SWEEP",
    "DEFAULT_SIZE_SWEEP",
    "ExperimentRunner",
    "NormalisedSeries",
    "SimulatedSystem",
    "SimulationResult",
    "Simulator",
    "build_memory_system",
    "build_system",
    "cumulative_protection_configs",
    "env_int",
    "filter_cache_associativity_configs",
    "filter_cache_size_configs",
    "instructions_per_workload",
    "parallel_jobs",
    "standard_modes",
    "unprotected_config",
]
