"""The simulation driver.

Executes one workload (single- or multi-threaded) on a
:class:`~repro.sim.system.SimulatedSystem` and reports the execution time.
Multi-threaded workloads are interleaved across cores in small instruction
chunks so that the per-core clocks advance roughly together and the threads'
memory traffic interacts in the shared L2 and on the coherence bus, which is
what the Parsec experiments (Figures 4, 5, 6 and 8) depend on.

Execution runs on the packed-trace fast path by default
(:meth:`~repro.cpu.core.OutOfOrderCore.run_packed` over index ranges — no
per-chunk slice copies, no per-op allocation).  Constructing the simulator
with ``use_packed=False`` drives the same traces through the per-op
:meth:`~repro.cpu.core.OutOfOrderCore.execute_op` boundary path instead;
the two are golden-tested to produce bit-identical results, which is also
what the hot-path benchmark uses to report the engine speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.core import CoreResult
from repro.sim.system import SimulatedSystem
from repro.workloads.trace import Trace, WorkloadTraces


@dataclass
class SimulationResult:
    """Outcome of running one workload on one system."""

    benchmark: str
    mode: str
    cycles: int
    instructions: int
    core_results: List[CoreResult] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    warmup_cycles: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def normalised_to(self, baseline: "SimulationResult") -> float:
        """Execution time relative to a baseline run (the paper's metric)."""
        if baseline.cycles == 0:
            return 0.0
        return self.cycles / baseline.cycles


class Simulator:
    """Runs traces on the cores of a simulated system."""

    #: Instructions executed per core before rotating to the next core.
    INTERLEAVE_CHUNK = 64

    def __init__(self, system: SimulatedSystem,
                 use_packed: bool = True) -> None:
        self.system = system
        self.use_packed = use_packed

    def run(self, workload: WorkloadTraces, collect_stats: bool = False,
            warmup_fraction: float = 0.0) -> SimulationResult:
        """Execute every thread of the workload; returns the timing summary.

        Threads are assigned to cores round-robin.  The workload's execution
        time is the maximum cycle count over all cores (the paper runs
        Parsec to completion and reports whole-program time).

        ``warmup_fraction`` plays the role of the paper's one-billion-
        instruction fast-forward: the first fraction of every trace is
        executed through the full timing model to warm the caches, TLBs and
        branch predictors, but its cycles are excluded from the reported
        execution time.
        """
        traces = list(workload)
        if not traces:
            raise ValueError("workload has no traces")
        if len(traces) > self.system.num_cores:
            raise ValueError(
                f"workload has {len(traces)} threads but the system has "
                f"only {self.system.num_cores} cores")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        warmup_cycles = 0
        if warmup_fraction > 0.0:
            splits = [int(len(trace.ops) * warmup_fraction)
                      for trace in traces]
            self._run_interleaved(
                traces, [(0, split) for split in splits])
            warmup_ends = [core.current_cycle for core in self.system.cores]
            warmup_cycles = max(warmup_ends)
            warmup_instructions = sum(splits)
            self._run_interleaved(
                traces, [(split, len(trace.ops))
                         for trace, split in zip(traces, splits)])
            self._drain_memory_system()
            core_results = [core.result() for core in self.system.cores]
            cycles = max(
                result.cycles - warmup_end
                for result, warmup_end in zip(core_results, warmup_ends))
            instructions = sum(result.committed_instructions
                               for result in core_results) - warmup_instructions
        else:
            self._run_interleaved(
                traces, [(0, len(trace.ops)) for trace in traces])
            self._drain_memory_system()
            core_results = [core.result() for core in self.system.cores]
            cycles = max(result.cycles for result in core_results)
            instructions = sum(result.committed_instructions
                               for result in core_results)
        stats = self.system.stats.as_dict() if collect_stats else {}
        return SimulationResult(
            benchmark=workload.benchmark,
            mode=self.system.config.mode.value,
            cycles=cycles,
            instructions=instructions,
            core_results=core_results,
            stats=stats,
            warmup_cycles=warmup_cycles)

    def run_trace_on_core(self, trace: Trace, core_index: int) -> CoreResult:
        """Run a single trace to completion on one core (test helper)."""
        core = self.system.core(core_index)
        core.process_id = trace.process_id
        if self.use_packed:
            core.run_packed(trace.packed())
            return core.result()
        return core.run(trace.ops)

    # -- internals ------------------------------------------------------------
    def _drain_memory_system(self) -> None:
        """Flush end-of-run buffers (e.g. pending prefetcher training)."""
        memory = self.system.memory_system
        for core in self.system.cores:
            memory.drain(core.core_id, core.current_cycle)

    def _run_interleaved(self, traces: List[Trace],
                         bounds: Sequence[Tuple[int, int]]) -> None:
        """Interleave execution of ``traces[i].ops[bounds[i]]`` across cores.

        Iterates by index over each trace's packed columns (or op list on
        the per-op path) — no per-chunk slice copies.
        """
        chunk = self.INTERLEAVE_CHUNK
        use_packed = self.use_packed
        packs = [trace.packed() if use_packed else None for trace in traces]
        cursors = [start for start, _ in bounds]
        ends = [end for _, end in bounds]
        done = [cursors[i] >= ends[i] for i in range(len(traces))]
        for thread_id, trace in enumerate(traces):
            self.system.core(thread_id).process_id = trace.process_id
        remaining = done.count(False)
        while remaining:
            for thread_id, trace in enumerate(traces):
                if done[thread_id]:
                    continue
                core = self.system.core(thread_id)
                start = cursors[thread_id]
                end = min(ends[thread_id], start + chunk)
                if use_packed:
                    core.run_packed(packs[thread_id], start, end)
                else:
                    ops = trace.ops
                    execute_op = core.execute_op
                    for index in range(start, end):
                        execute_op(ops[index])
                cursors[thread_id] = end
                if end >= ends[thread_id]:
                    done[thread_id] = True
                    remaining -= 1
