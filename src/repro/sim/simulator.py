"""The simulation driver.

Executes one workload (single-threaded, multi-threaded, or a multi-
programmed co-run *mix*) on a :class:`~repro.sim.system.SimulatedSystem`
and reports the execution time.  Workloads with several traces are
interleaved across cores in small instruction chunks so that the per-core
clocks advance roughly together and the threads' memory traffic interacts
in the shared caches and on the coherence bus, which is what the Parsec
experiments (Figures 4, 5, 6 and 8) and the cross-core attack scenarios
depend on.

For a co-run mix (see :mod:`repro.workloads.mixes`) each trace belongs to a
different benchmark and process: every core then runs its own program in
its own address space on its own private cache hierarchy, and the programs
contend in the shared LLC and on the bus.  :attr:`SimulationResult.core_benchmarks`
records which benchmark ran on which core and
:meth:`SimulationResult.per_benchmark` splits the aggregate back out.

Execution runs on the packed-trace fast path by default
(:meth:`~repro.cpu.core.OutOfOrderCore.run_packed` over index ranges — no
per-chunk slice copies, no per-op allocation).  Constructing the simulator
with ``use_packed=False`` drives the same traces through the per-op
:meth:`~repro.cpu.core.OutOfOrderCore.execute_op` boundary path instead;
the two are golden-tested to produce bit-identical results, which is also
what the hot-path benchmark uses to report the engine speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.cpu.core import CoreResult
from repro.sim.system import SimulatedSystem
from repro.workloads.trace import Trace, WorkloadTraces

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.metrics import MetricsSampler

#: The Table 1 core clock.  Execution *times* are reported in cycles of
#: this reference clock: a core running at a different
#: ``PipelineConfig.frequency_ghz`` has its cycle count scaled by
#: ``reference / frequency``, so a 2× faster clock halves the reported
#: time at identical cycle counts.  At the reference frequency the scale
#: factor is exactly 1.0 and times coincide with raw cycle counts.
REFERENCE_FREQUENCY_GHZ = 2.0


@dataclass
class SimulationResult:
    """Outcome of running one workload on one system."""

    benchmark: str
    mode: str
    cycles: int
    instructions: int
    core_results: List[CoreResult] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)
    warmup_cycles: int = 0
    #: Which benchmark each core executed (one entry per occupied core).
    #: For single-program workloads every entry equals :attr:`benchmark`;
    #: for a co-run mix this records the per-core placement.
    core_benchmarks: List[str] = field(default_factory=list)
    #: Per-core warm-up cycle/instruction counts (empty when no warm-up was
    #: run), so per-constituent views can exclude warm-up exactly as the
    #: aggregate numbers do.
    core_warmup_cycles: List[int] = field(default_factory=list)
    core_warmup_instructions: List[int] = field(default_factory=list)
    #: Per-core clock frequencies (one entry per ``core_results`` entry;
    #: empty means every core ran at the reference clock).  Applied as a
    #: cycle-time multiplier by the ``*_time``/``*_seconds`` accessors.
    core_frequencies_ghz: List[float] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    # -- frequency-scaled times ----------------------------------------------
    def _frequencies(self) -> List[float]:
        if self.core_frequencies_ghz:
            return list(self.core_frequencies_ghz)
        return [REFERENCE_FREQUENCY_GHZ] * len(self.core_results)

    def core_times(self) -> List[float]:
        """Per-core post-warm-up execution time, in reference-clock cycles.

        A core at the reference frequency contributes exactly its cycle
        count; a core clocked ``k``× faster contributes ``cycles / k``.
        """
        warmups = list(self.core_warmup_cycles)
        warmups += [0] * (len(self.core_results) - len(warmups))
        return [(core.cycles - warmup)
                * (REFERENCE_FREQUENCY_GHZ / frequency)
                for core, warmup, frequency
                in zip(self.core_results, warmups, self._frequencies())]

    @property
    def time(self) -> float:
        """Execution time in reference-clock cycles (the report metric).

        Identical to ``float(cycles)`` when every core runs at the
        reference frequency, which keeps homogeneous results bit-identical
        to the historical cycle-based accounting.
        """
        if not self.core_results:
            return float(self.cycles)
        return max(self.core_times())

    def core_wall_seconds(self) -> List[float]:
        """Per-core post-warm-up wall-clock time in simulated seconds."""
        return [time / (REFERENCE_FREQUENCY_GHZ * 1e9)
                for time in self.core_times()]

    @property
    def wall_seconds(self) -> float:
        """Whole-workload wall-clock execution time in simulated seconds."""
        return self.time / (REFERENCE_FREQUENCY_GHZ * 1e9)

    @property
    def is_corun(self) -> bool:
        """True when different cores ran different benchmarks."""
        return len(set(self.core_benchmarks)) > 1

    def per_benchmark(self) -> Dict[str, "SimulationResult"]:
        """Split a co-run result into one aggregate per constituent.

        Each constituent's execution time is the maximum post-warm-up cycle
        count over the cores it occupied and its instruction count the sum
        of committed instructions minus warm-up over those cores, so the
        parts use exactly the accounting of the aggregate numbers.  The
        shared statistics tree is not split (it describes the whole
        machine) and is left empty on the parts.
        """
        warmup_cycles = (self.core_warmup_cycles
                         or [0] * len(self.core_results))
        warmup_instructions = (self.core_warmup_instructions
                               or [0] * len(self.core_results))
        frequencies = self._frequencies()
        parts: Dict[str, SimulationResult] = {}
        for benchmark in dict.fromkeys(self.core_benchmarks):
            rows = [(core, warm_cycles, warm_instructions, frequency)
                    for core, owner, warm_cycles, warm_instructions, frequency
                    in zip(self.core_results, self.core_benchmarks,
                           warmup_cycles, warmup_instructions, frequencies)
                    if owner == benchmark]
            parts[benchmark] = SimulationResult(
                benchmark=benchmark,
                mode=self.mode,
                cycles=max((core.cycles - warm_cycles
                            for core, warm_cycles, _, _ in rows), default=0),
                instructions=sum(core.committed_instructions
                                 - warm_instructions
                                 for core, _, warm_instructions, _ in rows),
                core_results=[core for core, _, _, _ in rows],
                core_benchmarks=[benchmark] * len(rows),
                core_warmup_cycles=[warm for _, warm, _, _ in rows],
                core_frequencies_ghz=[freq for _, _, _, freq in rows])
        return parts

    def normalised_to(self, baseline: "SimulationResult") -> float:
        """Execution time relative to a baseline run (the paper's metric)."""
        if baseline.cycles == 0:
            return 0.0
        return self.cycles / baseline.cycles


class Simulator:
    """Runs traces on the cores of a simulated system."""

    #: Instructions executed per core before rotating to the next core.
    INTERLEAVE_CHUNK = 64

    def __init__(self, system: SimulatedSystem,
                 use_packed: bool = True,
                 use_vectorized: Optional[bool] = None,
                 sampler: Optional["MetricsSampler"] = None) -> None:
        self.system = system
        self.use_packed = use_packed
        # Engine selection: None defers to the system configuration
        # (SystemConfig.use_vectorized, default on), exactly like the
        # harness does; an explicit flag pins it for this simulator.  The
        # vectorized engine is a refinement of the packed loop, so
        # ``use_packed=False`` (the per-op boundary path) wins over it.
        if use_vectorized is None:
            use_vectorized = system.config.use_vectorized
        self.use_vectorized = use_packed and use_vectorized
        # Time-series metrics (repro.telemetry.metrics): the sampler
        # snapshots the system's statistics tree at interleave boundaries.
        self.sampler = sampler
        if sampler is not None:
            sampler.bind(system)

    def run(self, workload: WorkloadTraces, collect_stats: bool = False,
            warmup_fraction: float = 0.0) -> SimulationResult:
        """Execute every thread of the workload; returns the timing summary.

        Threads are assigned to cores round-robin.  The workload's execution
        time is the maximum cycle count over all cores (the paper runs
        Parsec to completion and reports whole-program time).

        ``warmup_fraction`` plays the role of the paper's one-billion-
        instruction fast-forward: the first fraction of every trace is
        executed through the full timing model to warm the caches, TLBs and
        branch predictors, but its cycles are excluded from the reported
        execution time.
        """
        traces = list(workload)
        if not traces:
            raise ValueError("workload has no traces")
        if len(traces) > self.system.num_cores:
            raise ValueError(
                f"workload has {len(traces)} threads but the system has "
                f"only {self.system.num_cores} cores")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        warmup_cycles = 0
        warmup_ends: List[int] = []
        splits: List[int] = []
        if warmup_fraction > 0.0:
            splits = [int(len(trace.ops) * warmup_fraction)
                      for trace in traces]
            self._run_interleaved(
                traces, [(0, split) for split in splits])
            warmup_ends = [core.current_cycle for core in self.system.cores]
            warmup_cycles = max(warmup_ends)
            warmup_instructions = sum(splits)
            self._run_interleaved(
                traces, [(split, len(trace.ops))
                         for trace, split in zip(traces, splits)])
            self._drain_memory_system()
            core_results = [core.result() for core in self.system.cores]
            cycles = max(
                result.cycles - warmup_end
                for result, warmup_end in zip(core_results, warmup_ends))
            instructions = sum(result.committed_instructions
                               for result in core_results) - warmup_instructions
        else:
            self._run_interleaved(
                traces, [(0, len(trace.ops)) for trace in traces])
            self._drain_memory_system()
            core_results = [core.result() for core in self.system.cores]
            cycles = max(result.cycles for result in core_results)
            instructions = sum(result.committed_instructions
                               for result in core_results)
        if self.sampler is not None:
            self.sampler.finish(max(core.current_cycle
                                    for core in self.system.cores))
        stats = self.system.stats.as_dict() if collect_stats else {}
        config = self.system.config
        return SimulationResult(
            benchmark=workload.benchmark,
            mode=config.mode_label,
            cycles=cycles,
            instructions=instructions,
            core_results=core_results,
            stats=stats,
            warmup_cycles=warmup_cycles,
            core_benchmarks=[trace.benchmark for trace in traces],
            core_warmup_cycles=warmup_ends[:len(traces)],
            core_warmup_instructions=splits,
            core_frequencies_ghz=[
                config.core_config(core_id).pipeline.frequency_ghz
                for core_id in range(config.num_cores)])

    def run_trace_on_core(self, trace: Trace, core_index: int) -> CoreResult:
        """Run a single trace to completion on one core (test helper)."""
        core = self.system.core(core_index)
        core.process_id = trace.process_id
        if self.use_vectorized:
            core.run_vectorized(trace.packed())
            return core.result()
        if self.use_packed:
            core.run_packed(trace.packed())
            return core.result()
        return core.run(trace.ops)

    # -- internals ------------------------------------------------------------
    def _drain_memory_system(self) -> None:
        """Flush end-of-run buffers (e.g. pending prefetcher training)."""
        memory = self.system.memory_system
        for core in self.system.cores:
            memory.drain(core.core_id, core.current_cycle)

    def _run_interleaved(self, traces: List[Trace],
                         bounds: Sequence[Tuple[int, int]]) -> None:
        """Interleave execution of ``traces[i].ops[bounds[i]]`` across cores.

        Iterates by index over each trace's packed columns (or op list on
        the per-op path) — no per-chunk slice copies.
        """
        chunk = self.INTERLEAVE_CHUNK
        use_packed = self.use_packed
        use_vectorized = self.use_vectorized
        if use_vectorized and len(traces) == 1 and self.sampler is None:
            # Single-threaded workload with no sampler: interleaving is a
            # no-op, so run the whole remaining range in one engine call
            # (state persists across calls, so this is bit-identical to
            # chunked execution — it only avoids per-chunk re-hoisting).
            chunk = max(end - start for start, end in bounds) or chunk
        packs = [trace.packed() if use_packed else None for trace in traces]
        runners = [self.system.core(thread_id).run_vectorized
                   if use_vectorized else self.system.core(thread_id).run_packed
                   for thread_id in range(len(traces))]
        cursors = [start for start, _ in bounds]
        ends = [end for _, end in bounds]
        done = [cursors[i] >= ends[i] for i in range(len(traces))]
        for thread_id, trace in enumerate(traces):
            self.system.core(thread_id).process_id = trace.process_id
        remaining = done.count(False)
        sampler = self.sampler
        while remaining:
            for thread_id, trace in enumerate(traces):
                if done[thread_id]:
                    continue
                core = self.system.core(thread_id)
                start = cursors[thread_id]
                end = min(ends[thread_id], start + chunk)
                if use_packed:
                    runners[thread_id](packs[thread_id], start, end)
                else:
                    ops = trace.ops
                    execute_op = core.execute_op
                    for index in range(start, end):
                        execute_op(ops[index])
                cursors[thread_id] = end
                if end >= ends[thread_id]:
                    done[thread_id] = True
                    remaining -= 1
            if sampler is not None:
                sampler.on_cycle(max(
                    self.system.core(thread_id).current_cycle
                    for thread_id in range(len(traces))))
