"""System construction.

Builds a complete simulated machine — memory system plus one out-of-order
core per hardware context — for any protection mode and configuration.  The
protection mode determines which memory system is instantiated; the
MuonTrap ablation points of Figures 8 and 9 are expressed through the
:class:`~repro.common.params.ProtectionConfig` carried by the system
configuration.

Multi-core machines come in two topologies.  The historical one puts every
core's private L1s directly on the shared L2.  Co-run systems (built from
:func:`~repro.common.params.corun_system_config`) additionally give each
hardware context a private unified L2, so each core owns a full private
hierarchy — L1s, private L2 and, per protection mode, filter caches —
stitched to the shared LLC through the coherence bus and snoop filter.
``process_ids`` assigns an address space per core: one shared process for
multi-threaded workloads (Parsec), distinct processes for multi-programmed
co-run mixes and for cross-core attacker/victim pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.params import SystemConfig
from repro.common.rng import DeterministicRng
from repro.common.statistics import StatGroup
from repro.cpu.core import OutOfOrderCore
from repro.cpu.interface import MemorySystem
from repro.memory.page_table import PageTableManager


def build_memory_system(config: SystemConfig,
                        page_tables: Optional[PageTableManager] = None,
                        stats: Optional[StatGroup] = None,
                        rng: Optional[DeterministicRng] = None
                        ) -> MemorySystem:
    """Instantiate the memory system for the configured protection mode(s).

    A configuration whose cores all share one scheme gets the ordinary
    single-scheme system (including when an explicit per-core list is
    provided — identical entries are bit-identical to the homogeneous
    path).  Mixed schemes get the
    :class:`~repro.sim.hetero.HeterogeneousMemorySystem` composite: one
    shared fabric, one scheme frontend per protection scheme.
    """
    from repro.schemes import get_scheme
    from repro.sim.hetero import HeterogeneousMemorySystem

    if config.is_scheme_heterogeneous:
        return HeterogeneousMemorySystem(config, page_tables=page_tables,
                                         stats=stats, rng=rng)
    # Uniform machines dispatch on the (single) per-core scheme, so an
    # explicit per-core list can override the machine-level ``mode`` field.
    # The scheme registry (repro.schemes) is the one authoritative
    # name -> memory-system dispatch, shared with the heterogeneous
    # composite.
    mode = config.core_config(0).mode if config.cores is not None \
        else config.mode
    return get_scheme(mode).factory(config, page_tables=page_tables,
                                    stats=stats, rng=rng)


@dataclass
class SimulatedSystem:
    """A memory system plus its cores, ready to execute traces."""

    config: SystemConfig
    memory_system: MemorySystem
    cores: List[OutOfOrderCore]
    stats: StatGroup
    page_tables: PageTableManager

    def core(self, index: int) -> OutOfOrderCore:
        return self.cores[index]

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def hierarchy(self):
        """The shared non-speculative hierarchy (bus, snoop filter, LLC)."""
        return getattr(self.memory_system, "hierarchy", None)


def build_system(config: SystemConfig, seed: int = 0,
                 process_ids: Optional[List[int]] = None) -> SimulatedSystem:
    """Build the memory system and one core per hardware context.

    ``process_ids`` assigns a process (address space) to each core; by
    default every core runs process 0, which matches a multi-threaded
    workload sharing one address space (Parsec).
    """
    stats = StatGroup("system")
    rng = DeterministicRng(seed)
    page_tables = PageTableManager(page_size=config.tlb.page_size)
    memory_system = build_memory_system(config, page_tables=page_tables,
                                        stats=stats.child("memory_system"),
                                        rng=rng)
    if process_ids is None:
        process_ids = [0] * config.num_cores
    if len(process_ids) != config.num_cores:
        raise ValueError("need one process id per core")
    # Each core is driven against its scheme frontend (the memory system
    # itself on single-scheme machines), so its hoisted capability probes
    # see the core's own protection scheme.
    cores = [
        OutOfOrderCore(core_id, config, memory_system.frontend(core_id),
                       process_id=process_ids[core_id],
                       stats=stats.child(f"core{core_id}"))
        for core_id in range(config.num_cores)
    ]
    return SimulatedSystem(config=config, memory_system=memory_system,
                           cores=cores, stats=stats, page_tables=page_tables)
