"""System construction.

Builds a complete simulated machine — memory system plus one out-of-order
core per hardware context — for any protection mode and configuration.  The
protection mode determines which memory system is instantiated; the
MuonTrap ablation points of Figures 8 and 9 are expressed through the
:class:`~repro.common.params.ProtectionConfig` carried by the system
configuration.

Multi-core machines come in two topologies.  The historical one puts every
core's private L1s directly on the shared L2.  Co-run systems (built from
:func:`~repro.common.params.corun_system_config`) additionally give each
hardware context a private unified L2, so each core owns a full private
hierarchy — L1s, private L2 and, per protection mode, filter caches —
stitched to the shared LLC through the coherence bus and snoop filter.
``process_ids`` assigns an address space per core: one shared process for
multi-threaded workloads (Parsec), distinct processes for multi-programmed
co-run mixes and for cross-core attacker/victim pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.baselines.insecure_l0 import InsecureL0MemorySystem
from repro.baselines.invisispec import InvisiSpecMemorySystem
from repro.baselines.stt import STTMemorySystem
from repro.baselines.unprotected import UnprotectedMemorySystem
from repro.common.params import ProtectionMode, SystemConfig
from repro.common.rng import DeterministicRng
from repro.common.statistics import StatGroup
from repro.core.muontrap import MuonTrapMemorySystem
from repro.cpu.core import OutOfOrderCore
from repro.cpu.interface import MemorySystem
from repro.memory.page_table import PageTableManager


def build_memory_system(config: SystemConfig,
                        page_tables: Optional[PageTableManager] = None,
                        stats: Optional[StatGroup] = None,
                        rng: Optional[DeterministicRng] = None
                        ) -> MemorySystem:
    """Instantiate the memory system for the configured protection mode."""
    mode = config.mode
    if mode is ProtectionMode.MUONTRAP:
        return MuonTrapMemorySystem(config, page_tables=page_tables,
                                    stats=stats, rng=rng)
    if mode is ProtectionMode.UNPROTECTED:
        return UnprotectedMemorySystem(config, page_tables=page_tables,
                                       stats=stats, rng=rng)
    if mode is ProtectionMode.INSECURE_L0:
        return InsecureL0MemorySystem(config, page_tables=page_tables,
                                      stats=stats, rng=rng)
    if mode is ProtectionMode.INVISISPEC_SPECTRE:
        return InvisiSpecMemorySystem(config, future_variant=False,
                                      page_tables=page_tables, stats=stats,
                                      rng=rng)
    if mode is ProtectionMode.INVISISPEC_FUTURE:
        return InvisiSpecMemorySystem(config, future_variant=True,
                                      page_tables=page_tables, stats=stats,
                                      rng=rng)
    if mode is ProtectionMode.STT_SPECTRE:
        return STTMemorySystem(config, future_variant=False,
                               page_tables=page_tables, stats=stats, rng=rng)
    if mode is ProtectionMode.STT_FUTURE:
        return STTMemorySystem(config, future_variant=True,
                               page_tables=page_tables, stats=stats, rng=rng)
    raise ValueError(f"unknown protection mode: {mode!r}")


@dataclass
class SimulatedSystem:
    """A memory system plus its cores, ready to execute traces."""

    config: SystemConfig
    memory_system: MemorySystem
    cores: List[OutOfOrderCore]
    stats: StatGroup
    page_tables: PageTableManager

    def core(self, index: int) -> OutOfOrderCore:
        return self.cores[index]

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def hierarchy(self):
        """The shared non-speculative hierarchy (bus, snoop filter, LLC)."""
        return getattr(self.memory_system, "hierarchy", None)


def build_system(config: SystemConfig, seed: int = 0,
                 process_ids: Optional[List[int]] = None) -> SimulatedSystem:
    """Build the memory system and one core per hardware context.

    ``process_ids`` assigns a process (address space) to each core; by
    default every core runs process 0, which matches a multi-threaded
    workload sharing one address space (Parsec).
    """
    stats = StatGroup("system")
    rng = DeterministicRng(seed)
    page_tables = PageTableManager(page_size=config.tlb.page_size)
    memory_system = build_memory_system(config, page_tables=page_tables,
                                        stats=stats.child("memory_system"),
                                        rng=rng)
    if process_ids is None:
        process_ids = [0] * config.num_cores
    if len(process_ids) != config.num_cores:
        raise ValueError("need one process id per core")
    cores = [
        OutOfOrderCore(core_id, config, memory_system,
                       process_id=process_ids[core_id],
                       stats=stats.child(f"core{core_id}"))
        for core_id in range(config.num_cores)
    ]
    return SimulatedSystem(config=config, memory_system=memory_system,
                           cores=cores, stats=stats, page_tables=page_tables)
