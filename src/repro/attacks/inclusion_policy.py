"""Attack 2: the inclusion-policy attack.

Instead of observing what the victim brought *into* the cache, the attacker
observes what the victim's speculative fill pushed *out*.  The attacker
primes the L1 set of every candidate probe line with as many lines as the
L1 has ways (all drawn from the physically contiguous shared region, so set
indices can be computed from addresses); the victim's squashed speculative
load of the secret-indexed address lands in one of those sets and evicts a
primed line, which the attacker then finds slow.

MuonTrap's defence is that the filter cache is non-inclusive, non-exclusive
with the rest of the hierarchy: a speculative fill goes only into the L0 and
never displaces anything from the L1 or L2, so the attacker's primed lines
are all still fast.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.attacks.framework import (
    AttackEnvironment,
    AttackOutcome,
    classify_probe,
    VICTIM_SECRET_ADDRESS,
)
from repro.common.params import (SchemeLike,
                                 SystemConfig, scheme_name)


class InclusionPolicyAttack:
    """Attack 2 of the paper (prime, speculatively evict, probe)."""

    name = "inclusion-policy"

    def __init__(self, mode: SchemeLike = "unprotected",
                 secret: int = 5, num_secret_values: int = 8,
                 config: Optional[SystemConfig] = None) -> None:
        base = config or SystemConfig()
        l1_ways = base.l1d.associativity
        set_stride = base.l1d.num_sets * base.l1d.line_size
        # Enough physically contiguous shared memory for the probe slots plus
        # one full way-stride per L1 way above them.
        shared_bytes = (l1_ways + 1) * set_stride + 2 * 4096
        self.environment = AttackEnvironment(
            config=config, mode=mode, num_cores=1, secret=secret,
            num_secret_values=num_secret_values, shared_bytes=shared_bytes)
        self.mode = mode
        self.l1_ways = l1_ways
        self.set_stride = set_stride

    def _eviction_set(self, value: int) -> List[int]:
        """Shared-region addresses that map to the probe line's L1 set."""
        target = self.environment.probe_address(value)
        return [target + way * self.set_stride
                for way in range(1, self.l1_ways + 1)]

    def run(self) -> AttackOutcome:
        env = self.environment
        secret = env.secret

        # Step 1 (attacker): prime every candidate's L1 set so that any later
        # fill in that set must evict one of the primed lines.
        primed: Dict[int, List[int]] = {}
        for value in range(env.num_secret_values):
            primed[value] = self._eviction_set(value)
            for address in primed[value]:
                env.attacker_load(address)
        # Touch them once more so they are resident and equally recent.
        for value in range(env.num_secret_values):
            for address in primed[value]:
                env.attacker_load(address)

        # Step 2 (victim, speculative, squashed): secret-dependent fill.
        env.victim_speculative_load(VICTIM_SECRET_ADDRESS)
        env.victim_speculative_load(env.probe_address(secret))
        env.victim_squash()

        # Step 3 (attacker): re-time the primed lines; the set whose line got
        # evicted shows a slow access.
        slow_per_value: Dict[int, int] = {}
        for value in range(env.num_secret_values):
            slowest = 0
            for address in primed[value]:
                slowest = max(slowest, env.attacker_load(address))
            slow_per_value[value] = slowest

        # The *slowest* candidate is the leaked one here, so invert the sign
        # before reusing the shared classifier.
        inverted = {value: -latency for value, latency in
                    slow_per_value.items()}
        recovered, _ = classify_probe(inverted)
        return AttackOutcome(name=self.name, mode=scheme_name(self.mode),
                             actual_secret=secret,
                             recovered_secret=recovered,
                             probe_latencies=slow_per_value)
