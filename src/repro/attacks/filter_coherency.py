"""Attack 4: the filter-cache coherency attack.

This attack targets a *naive* filter-cache design rather than the baseline:
if a filter cache were allowed to take lines in Exclusive (or its presence
otherwise influenced the coherence protocol), then an attacker sharing data
with the victim could detect whether the victim's filter cache holds a line
by timing how long its own request takes — even though the data never
reached a non-speculative cache.

MuonTrap's defence is filter-cache state reduction: lines enter the filter
cache only in Shared (the ``SE`` pseudo-state is invisible to the protocol
until the access commits), so the presence or absence of a line in any
filter cache never changes the latency of anyone else's access.  The
"attack" therefore measures timing *invariance*: it reports success (i.e. a
leak) only if the attacker can distinguish which shared line the victim
speculatively touched.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.attacks.framework import (
    AttackEnvironment,
    AttackOutcome,
    classify_probe,
    VICTIM_SECRET_ADDRESS,
)
from repro.common.params import (SchemeLike,
                                 SystemConfig, scheme_name)


class FilterCacheCoherencyAttack:
    """Attack 4 of the paper: probing speculative state through coherence."""

    name = "filter-cache-coherency"

    def __init__(self, mode: SchemeLike = "muontrap",
                 secret: int = 1, num_secret_values: int = 4,
                 config: Optional[SystemConfig] = None) -> None:
        self.environment = AttackEnvironment(
            config=config, mode=mode, num_cores=2, secret=secret,
            num_secret_values=num_secret_values, shared_writable=True)
        self.mode = mode
        self.attacker_core = 0
        self.victim_core = 1

    def run(self) -> AttackOutcome:
        env = self.environment
        secret = env.secret

        # Step 1 (victim, core 1, speculative, squashed): touch the shared
        # line selected by the secret.  Under MuonTrap this only populates
        # the victim's filter cache, in Shared.
        env.victim_speculative_load(VICTIM_SECRET_ADDRESS,
                                    core_id=self.victim_core)
        env.victim_speculative_load(env.probe_address(secret),
                                    core_id=self.victim_core)
        env.victim_squash(core_id=self.victim_core)

        # Step 2 (attacker, core 0): load every probe line and look for one
        # whose latency differs because of the victim's filter-cache state
        # (e.g. an extra invalidation or a denied exclusive grant).
        latencies: Dict[int, int] = {}
        for value in range(env.num_secret_values):
            latencies[value] = env.attacker_load(
                env.probe_address(value), core_id=self.attacker_core)

        recovered, margin = classify_probe(latencies)
        # Timing invariance: if every probe takes the same time the channel
        # carries nothing and recovered is None.
        return AttackOutcome(name=self.name, mode=scheme_name(self.mode),
                             actual_secret=secret,
                             recovered_secret=recovered,
                             probe_latencies=latencies,
                             notes=f"margin={margin}")
