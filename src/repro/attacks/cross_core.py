"""Cross-core attacks executed through the real simulated fabric.

These are the multicore counterparts of Attacks 1 and 4: the attacker and
victim are *resident on different cores* of one
:class:`~repro.sim.system.SimulatedSystem`, and every transmission and
probe flows through the real out-of-order cores, private hierarchies,
coherence bus, snoop filter and shared LLC — nothing drives a memory
system directly.

* :class:`CrossCoreReloadAttack` — evict + speculate + reload over a
  shared page: the victim's squashed wrong-path load of a secret-indexed
  shared line leaves (on an insecure system) a copy in the shared LLC /
  the victim's private caches, which the attacker detects from another
  core by timing committed reloads that are served over the coherence
  fabric instead of from memory.

* :class:`CrossCoreLLCPrimeProbeAttack` — classic prime + probe over LLC
  *contention*, needing no shared data for the probe: the attacker fills
  the LLC sets that the candidate secret lines map to with its own
  physically-colliding lines, lets the victim speculate, and finds the set
  where its primed lines were evicted.

Under MuonTrap both channels are closed: the victim's speculative fill
only ever reaches its per-core filter cache, which is invisible to the
coherence protocol and never installs into any non-speculative cache, so
every probe is timing-invariant in the secret.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.attacks.framework import (
    AttackOutcome,
    CrossCoreAttackEnvironment,
    classify_probe,
)
from repro.common.params import (SchemeLike, SystemConfig,
                                 scheme_name)


def classify_contention(latencies: Dict[int, int]) -> Tuple[Optional[int], int]:
    """Pick the value whose probe was distinctly *slowest* (prime+probe).

    The mirror image of :func:`classify_probe`: contention channels signal
    through evictions, so the secret-bearing set is the slow one.
    """
    recovered, margin = classify_probe(
        {value: -latency for value, latency in latencies.items()})
    return recovered, margin


def _scheme_plan(mode: SchemeLike, num_cores: int,
                 victim_mode: Optional[SchemeLike],
                 attacker_mode: Optional[SchemeLike]):
    """Resolve the per-core scheme assignment and its report label.

    With neither override set, the machine is homogeneous under ``mode``
    (the historical behaviour, bit-identical to before heterogeneity).
    Setting ``victim_mode`` / ``attacker_mode`` builds an asymmetric
    machine — attacker on core 0, victims on the rest — and labels the
    outcome ``victim=<scheme>,attacker=<scheme>``.
    """
    if victim_mode is None and attacker_mode is None:
        return None, scheme_name(mode)
    victim = victim_mode if victim_mode is not None else mode
    attacker = attacker_mode if attacker_mode is not None else mode
    core_modes = [attacker] + [victim] * (num_cores - 1)
    return core_modes, (f"victim={scheme_name(victim)},"
                        f"attacker={scheme_name(attacker)}")


class CrossCoreReloadAttack:
    """Cross-core evict + speculate + reload through the coherence fabric."""

    name = "cross-core-reload"

    def __init__(self, mode: SchemeLike = "unprotected",
                 secret: int = 3, num_secret_values: int = 8,
                 num_cores: int = 2, seed: int = 0,
                 config: Optional[SystemConfig] = None,
                 victim_mode: Optional[SchemeLike] = None,
                 attacker_mode: Optional[SchemeLike] = None) -> None:
        core_modes, self.mode_label = _scheme_plan(
            mode, num_cores, victim_mode, attacker_mode)
        self.environment = CrossCoreAttackEnvironment(
            mode=mode, num_cores=num_cores, secret=secret,
            num_secret_values=num_secret_values, seed=seed, config=config,
            core_modes=core_modes)
        self.mode = mode

    def run(self) -> AttackOutcome:
        env = self.environment
        # Step 1 (attacker, core 0): unrelated committed work of its own;
        # the shared probe array has never been touched, so it is uncached.
        for index in range(8):
            env.attacker_timed_load(env.attacker_private_address(512 + index))
        # Step 2 (victim, core 1): the Spectre gadget — a mispredicted
        # branch whose squashed wrong-path load touches the shared line
        # selected by the secret.
        env.victim_speculative_touch([env.probe_address(env.secret)])
        # Step 3 (attacker, core 0): time a committed reload of every
        # candidate line; a fast one was supplied by the fabric (peer cache
        # or LLC) rather than by memory.
        latencies = env.attacker_probe_all()
        recovered, margin = classify_probe(latencies)
        return AttackOutcome(name=self.name, mode=self.mode_label,
                             actual_secret=env.secret,
                             recovered_secret=recovered,
                             probe_latencies=latencies,
                             notes=f"margin={margin}")


class CrossCoreLLCPrimeProbeAttack:
    """Cross-core prime + probe on the shared LLC (pure contention)."""

    name = "cross-core-llc-prime-probe"

    def __init__(self, mode: SchemeLike = "unprotected",
                 secret: int = 3, num_secret_values: int = 4,
                 num_cores: int = 2, seed: int = 0,
                 config: Optional[SystemConfig] = None,
                 victim_mode: Optional[SchemeLike] = None,
                 attacker_mode: Optional[SchemeLike] = None) -> None:
        core_modes, self.mode_label = _scheme_plan(
            mode, num_cores, victim_mode, attacker_mode)
        self.environment = CrossCoreAttackEnvironment(
            mode=mode, num_cores=num_cores, secret=secret,
            num_secret_values=num_secret_values, seed=seed, config=config,
            core_modes=core_modes)
        self.mode = mode

    # -- eviction-set construction -------------------------------------------
    def _llc(self):
        hierarchy = self.environment.system.hierarchy
        if hierarchy is None:  # pragma: no cover - every mode has one today
            raise RuntimeError("memory system exposes no shared hierarchy")
        return hierarchy.l2

    def eviction_addresses(self, value: int,
                           ways: Optional[int] = None) -> List[int]:
        """Attacker-private addresses whose *physical* lines collide, in the
        LLC, with the shared probe line encoding ``value``.

        Physical frames are allocate-on-touch, so the attacker pins its
        prime region's mapping by translating it in a fixed order — the
        simulated equivalent of the hugepage / timing tricks real LLC
        attacks use to build eviction sets.
        """
        env = self.environment
        llc = self._llc()
        ways = llc.associativity if ways is None else ways
        target_set = llc.set_index_of(
            env.shared_physical(env.probe_address(value)))
        addresses: List[int] = []
        index = 0
        while len(addresses) < ways:
            virtual = env.attacker_private_address(4096 + index)
            physical = env.attacker_physical(virtual)
            if llc.set_index_of(physical) == target_set:
                addresses.append(virtual)
            index += 1
            if index > llc.num_sets * (ways + 2):  # pragma: no cover
                raise RuntimeError("could not build an eviction set")
        return addresses

    def run(self) -> AttackOutcome:
        env = self.environment
        eviction_sets = {value: self.eviction_addresses(value)
                         for value in range(env.num_secret_values)}
        # Step 0 (victim): ordinary committed work, including the load of
        # its own secret, happens *before* the prime phase — only the
        # squashed speculative access lands between prime and probe.
        env.victim_load_secret()
        # Step 1 (attacker): prime — fill every candidate's LLC set with
        # the attacker's own lines.
        for value in range(env.num_secret_values):
            for address in eviction_sets[value]:
                env.attacker_timed_load(address)
        # Step 2 (victim): the squashed speculative touch.  On an insecure
        # system its LLC fill evicts one of the primed lines.
        env.victim_speculative_touch([env.probe_address(env.secret)],
                                     load_secret=False)
        # Step 3 (attacker): probe — re-time the primed lines per set; the
        # victim's set shows misses (served from memory), the rest hit.
        latencies = {
            value: sum(env.attacker_timed_load(address)
                       for address in eviction_sets[value])
            for value in range(env.num_secret_values)}
        recovered, margin = classify_contention(latencies)
        return AttackOutcome(name=self.name, mode=self.mode_label,
                             actual_secret=env.secret,
                             recovered_secret=recovered,
                             probe_latencies=latencies,
                             notes=f"margin={margin}")


CROSS_CORE_ATTACKS = [CrossCoreReloadAttack, CrossCoreLLCPrimeProbeAttack]


def run_cross_core_suite(modes: Sequence[SchemeLike],
                         seeds: Sequence[int] = (0,),
                         num_cores: int = 2,
                         config: Optional[SystemConfig] = None
                         ) -> Dict[Tuple[str, str, int], AttackOutcome]:
    """Run every cross-core attack for each mode × seed.

    Returns ``{(attack name, mode value, seed): outcome}``; the harness is
    fully deterministic, so repeated invocations produce identical maps.
    """
    outcomes: Dict[Tuple[str, str, int], AttackOutcome] = {}
    for attack_cls in CROSS_CORE_ATTACKS:
        for mode in modes:
            for seed in seeds:
                attack = attack_cls(mode=mode, num_cores=num_cores,
                                    seed=seed, config=config)
                outcome = attack.run()
                outcomes[(attack.name, scheme_name(mode),
                          seed)] = outcome
    return outcomes


def run_cross_scheme_matrix(victim_modes: Sequence[SchemeLike],
                            attacker_modes: Sequence[SchemeLike],
                            seeds: Sequence[int] = (0,),
                            num_cores: int = 2,
                            config: Optional[SystemConfig] = None
                            ) -> Dict[Tuple[str, str, str, int],
                                      AttackOutcome]:
    """The asymmetric-protection threat matrix.

    Runs every cross-core attack for each (victim scheme × attacker
    scheme × seed) on one machine whose attacker core (0) and victim
    cores run *different* protection schemes.  Returns
    ``{(attack name, victim mode, attacker mode, seed): outcome}``.  The
    security property the tests pin down: whether the channel leaks
    depends only on the victim core's scheme — protecting the attacker's
    own core neither opens nor closes it.
    """
    outcomes: Dict[Tuple[str, str, str, int], AttackOutcome] = {}
    for attack_cls in CROSS_CORE_ATTACKS:
        for victim_mode in victim_modes:
            for attacker_mode in attacker_modes:
                for seed in seeds:
                    attack = attack_cls(victim_mode=victim_mode,
                                        attacker_mode=attacker_mode,
                                        num_cores=num_cores, seed=seed,
                                        config=config)
                    outcome = attack.run()
                    outcomes[(attack.name, scheme_name(victim_mode),
                              scheme_name(attacker_mode),
                              seed)] = outcome
    return outcomes
