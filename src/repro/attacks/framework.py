"""The attacker/victim harness used by all six attacks of the paper.

Every attack follows the same structure:

1. an *attacker* process primes some microarchitectural state;
2. a *victim* process is tricked into executing a few instructions under
   speculation that touch memory at a secret-dependent location, after
   which the speculation is squashed (the accesses never commit);
3. control returns to the attacker (via a context switch, or the attacker
   runs concurrently on another core), which *probes* the state by timing
   committed accesses and infers the secret.

The harness drives a :class:`~repro.cpu.interface.MemorySystem` directly
rather than going through the out-of-order core: the attacks need precise
control over which accesses are speculative, which commit and when the
protection-domain switches happen, and timing is exactly the latency the
memory system reports.  This mirrors how the paper reasons about the attacks
(Attack boxes 1-6) as sequences of loads/stores with coherence-state
annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.params import (SchemeLike, SystemConfig,
                                 scheme_name)
from repro.cpu.instructions import MicroOp, OpKind, WrongPathAccess
from repro.cpu.interface import MemorySystem
from repro.memory.page_table import PageTableManager
from repro.sim.system import build_memory_system, build_system

#: Virtual addresses used by the attack programs.  The attacker and victim
#: are distinct processes, so equal virtual addresses do not alias unless a
#: page is explicitly shared.
ATTACKER_PROCESS = 100
VICTIM_PROCESS = 200
SANDBOX_PROCESS = 300

SHARED_ARRAY_BASE = 0x0200_0000
ATTACKER_PRIVATE_BASE = 0x0300_0000
VICTIM_PRIVATE_BASE = 0x0400_0000
VICTIM_SECRET_ADDRESS = 0x0400_8000
LINE_SIZE = 64
PAGE_SIZE = 4096


@dataclass
class AttackOutcome:
    """What an attack run produced."""

    name: str
    mode: str
    actual_secret: int
    recovered_secret: Optional[int]
    probe_latencies: Dict[int, int] = field(default_factory=dict)
    notes: str = ""

    @property
    def succeeded(self) -> bool:
        """True when the attacker recovered the right secret value."""
        return (self.recovered_secret is not None
                and self.recovered_secret == self.actual_secret)

    @property
    def signal_margin(self) -> int:
        """Latency gap between the best and second-best probe candidates."""
        if len(self.probe_latencies) < 2:
            return 0
        ordered = sorted(self.probe_latencies.values())
        return ordered[1] - ordered[0]


class AttackEnvironment:
    """A memory system plus the attacker/victim processes and shared pages."""

    def __init__(self, config: Optional[SystemConfig] = None,
                 mode: SchemeLike = "unprotected",
                 num_cores: int = 1, secret: int = 3,
                 num_secret_values: int = 8,
                 shared_writable: bool = True,
                 shared_bytes: Optional[int] = None) -> None:
        base = config or SystemConfig()
        self.config = base.with_mode(mode).with_cores(num_cores)
        self.secret = secret % num_secret_values
        self.num_secret_values = num_secret_values
        self.page_tables = PageTableManager(page_size=PAGE_SIZE)
        self.memory: MemorySystem = build_memory_system(
            self.config, page_tables=self.page_tables)
        self.now = 1000
        # Pre-create the two address spaces and share the probe array pages
        # (models a shared library or page-deduplicated data).  The pages
        # are allocated consecutively, so the shared region is physically
        # contiguous — which is what lets the inclusion-policy attack build
        # eviction sets from virtual addresses.
        attacker_space = self.page_tables.address_space(ATTACKER_PROCESS)
        victim_space = self.page_tables.address_space(VICTIM_PROCESS)
        self.shared_bytes = shared_bytes or max(
            PAGE_SIZE, num_secret_values * 4 * LINE_SIZE)
        for offset in range(0, self.shared_bytes, PAGE_SIZE):
            attacker_space.share_page_with(victim_space,
                                           SHARED_ARRAY_BASE + offset,
                                           writable=shared_writable)
        self._current_process: Dict[int, int] = {}

    # -- time -----------------------------------------------------------------
    def advance(self, cycles: int = 50) -> int:
        self.now += cycles
        return self.now

    # -- protection-domain control ------------------------------------------------
    def run_as(self, core_id: int, process_id: int) -> None:
        """Context-switch ``core_id`` to ``process_id`` (flushes under MuonTrap)."""
        if self._current_process.get(core_id) == process_id:
            return
        self._current_process[core_id] = process_id
        switch = getattr(self.memory, "switch_to_process", None)
        if switch is not None:
            switch(core_id, process_id, self.now)
        else:
            self.memory.context_switch(core_id, self.now)
        self.advance(200)

    # -- attacker operations (always committed) --------------------------------------
    def attacker_load(self, address: int, core_id: int = 0) -> int:
        """A committed attacker load; returns its observed latency."""
        self.run_as(core_id, ATTACKER_PROCESS)
        result = self.memory.load(core_id, ATTACKER_PROCESS, address,
                                  self.now, speculative=False)
        self.memory.commit_load(core_id, ATTACKER_PROCESS, address,
                                self.now + result.latency)
        self.advance(result.latency + 5)
        return result.latency

    def attacker_store(self, address: int, core_id: int = 0) -> int:
        """A committed attacker store; returns the commit-visible latency."""
        self.run_as(core_id, ATTACKER_PROCESS)
        result = self.memory.store_address_ready(core_id, ATTACKER_PROCESS,
                                                 address, self.now,
                                                 speculative=False)
        commit_latency = self.memory.commit_store(
            core_id, ATTACKER_PROCESS, address, self.now + result.latency)
        total = result.latency + commit_latency
        self.advance(total + 5)
        return total

    def attacker_fetch(self, address: int, core_id: int = 0) -> int:
        """A committed attacker instruction fetch (for the I-cache attack)."""
        self.run_as(core_id, ATTACKER_PROCESS)
        result = self.memory.fetch(core_id, ATTACKER_PROCESS, address,
                                   self.now, speculative=False)
        self.memory.commit_fetch(core_id, ATTACKER_PROCESS, address,
                                 self.now + result.latency)
        self.advance(result.latency + 5)
        return result.latency

    # -- victim operations -------------------------------------------------------------
    def victim_speculative_load(self, address: int, core_id: int = 0) -> int:
        """A victim load executed under (ultimately squashed) speculation."""
        self.run_as(core_id, VICTIM_PROCESS)
        result = self.memory.load(core_id, VICTIM_PROCESS, address, self.now,
                                  speculative=True)
        self.advance(result.latency + 1)
        return result.latency

    def victim_speculative_store(self, address: int, core_id: int = 0) -> int:
        """A victim store whose address resolves under squashed speculation."""
        self.run_as(core_id, VICTIM_PROCESS)
        result = self.memory.store_address_ready(core_id, VICTIM_PROCESS,
                                                 address, self.now,
                                                 speculative=True)
        self.advance(result.latency + 1)
        return result.latency

    def victim_speculative_fetch(self, address: int, core_id: int = 0) -> int:
        """A victim instruction fetch on a mispredicted (squashed) path."""
        self.run_as(core_id, VICTIM_PROCESS)
        result = self.memory.fetch(core_id, VICTIM_PROCESS, address, self.now,
                                   speculative=True)
        self.advance(result.latency + 1)
        return result.latency

    def victim_committed_load(self, address: int, core_id: int = 0) -> int:
        """A victim load that really commits (non-speculative work)."""
        self.run_as(core_id, VICTIM_PROCESS)
        result = self.memory.load(core_id, VICTIM_PROCESS, address, self.now,
                                  speculative=False)
        self.memory.commit_load(core_id, VICTIM_PROCESS, address,
                                self.now + result.latency)
        self.advance(result.latency + 5)
        return result.latency

    def victim_squash(self, core_id: int = 0) -> None:
        """The victim's misprediction is discovered; speculation is rolled back."""
        self.memory.squash(core_id, self.now)
        self.advance(20)

    # -- address helpers ------------------------------------------------------------------
    def probe_address(self, value: int) -> int:
        """Shared-array element whose cache state encodes ``value``."""
        return SHARED_ARRAY_BASE + value * 4 * LINE_SIZE

    def attacker_private_address(self, index: int) -> int:
        return ATTACKER_PRIVATE_BASE + index * LINE_SIZE

    def victim_private_address(self, index: int) -> int:
        return VICTIM_PRIVATE_BASE + index * LINE_SIZE


class CrossCoreAttackEnvironment:
    """Attacker and victim on *different cores* of a real simulated machine.

    Unlike :class:`AttackEnvironment`, which drives a memory system
    directly, this harness builds a complete
    :class:`~repro.sim.system.SimulatedSystem` — out-of-order cores,
    per-core private caches (and filter caches, per protection mode),
    coherence bus, snoop filter, shared LLC — and executes real micro-op
    sequences on the cores:

    * the *victim* transmits by executing a deliberately mispredicted
      branch whose wrong-path loads touch secret-dependent addresses; the
      accesses issue speculatively through the fabric and are squashed by
      the core, exactly as in a real Spectre gadget;
    * the *attacker* probes by executing committed loads on its own core
      and timing them through the core's register-dependency chain
      (:meth:`~repro.cpu.core.OutOfOrderCore.register_ready_time`), so the
      observed latency is precisely what the coherence fabric charged.

    The attacker always runs on core 0, the victim on core 1; systems with
    more cores leave the extra contexts idle (they still participate in
    snoops and broadcasts).
    """

    ATTACKER_CORE = 0
    VICTIM_CORE = 1

    #: Per-core code lines; a probe pair reuses its pcs so the instruction
    #: fetch path stays warm and never perturbs a measurement.
    ATTACKER_CODE = 0x0050_0000
    VICTIM_CODE = 0x0060_0000

    #: Registers used by the timing chain.
    _SYNC_REG = 60
    _DEST_REG = 61

    def __init__(self, mode: SchemeLike = "unprotected",
                 num_cores: int = 2, secret: int = 3,
                 num_secret_values: int = 8, seed: int = 0,
                 config: Optional[SystemConfig] = None,
                 core_modes: Optional[Sequence[SchemeLike]] = None
                 ) -> None:
        base = config or SystemConfig()
        if core_modes is not None:
            # Asymmetric protection: one scheme per core (attacker on core
            # 0, victim on core 1).  Each core keeps its own geometry from
            # ``config`` (a big.LITTLE base stays big.LITTLE); only the
            # protection scheme is overridden, so the threat matrix
            # isolates the victim's defence.
            if len(core_modes) < 2:
                raise ValueError(
                    "a cross-core attack needs at least two cores")
            num_cores = len(core_modes)
            sized = base.with_cores(num_cores)
            self.config = sized.with_core_configs(
                [sized.core_config(index).with_mode(core_mode)
                 for index, core_mode in enumerate(core_modes)])
        else:
            if num_cores < 2:
                raise ValueError(
                    "a cross-core attack needs at least two cores")
            self.config = base.with_mode(mode).with_cores(num_cores)
        self.core_modes = self.config.core_modes
        self.mode = mode
        self.secret = secret % num_secret_values
        self.num_secret_values = num_secret_values
        process_ids = [ATTACKER_PROCESS] + [VICTIM_PROCESS] * (num_cores - 1)
        self.system = build_system(self.config, seed=seed,
                                   process_ids=process_ids)
        self.attacker = self.system.core(self.ATTACKER_CORE)
        self.victim = self.system.core(self.VICTIM_CORE)
        # Share the probe-array pages between the two address spaces
        # (models a shared library or page-deduplicated data).
        attacker_space = self.system.page_tables.address_space(
            ATTACKER_PROCESS)
        victim_space = self.system.page_tables.address_space(VICTIM_PROCESS)
        self.shared_bytes = max(PAGE_SIZE, num_secret_values * 4 * LINE_SIZE)
        for offset in range(0, self.shared_bytes, PAGE_SIZE):
            attacker_space.share_page_with(victim_space,
                                           SHARED_ARRAY_BASE + offset,
                                           writable=True)
        self._attacker_space = attacker_space
        self._victim_space = victim_space
        # Warm both cores' code lines and timing chains so the first real
        # measurement is not polluted by cold instruction fetches.
        self.attacker_timed_load(self.attacker_private_address(0))
        self.victim_committed_work(2)

    # -- address helpers ------------------------------------------------------
    def probe_address(self, value: int) -> int:
        """Shared-array element whose cache state encodes ``value``."""
        return SHARED_ARRAY_BASE + value * 4 * LINE_SIZE

    def attacker_private_address(self, index: int) -> int:
        return ATTACKER_PRIVATE_BASE + index * LINE_SIZE

    def attacker_physical(self, virtual_address: int) -> int:
        """The attacker-space physical address (allocates on first use)."""
        physical = self._attacker_space.translate(virtual_address)
        assert physical is not None
        return physical

    def shared_physical(self, virtual_address: int) -> int:
        physical = self._victim_space.translate(virtual_address)
        assert physical is not None
        return physical

    # -- attacker operations (committed, on core 0) ---------------------------
    def attacker_timed_load(self, virtual_address: int) -> int:
        """Execute a committed attacker load; returns its memory latency.

        The load depends on a just-produced register, so its issue time is
        pinned to the producer's completion; the difference between the two
        completion times is exactly the latency the memory system charged.
        The producer in turn depends on the *previous* timed load, which
        serialises the attacker's probes — each one issues only after the
        last completed, exactly like the dependency chains real timing
        attacks build around ``rdtsc``.
        """
        core = self.attacker
        pc = self.ATTACKER_CODE
        core.execute_op(MicroOp(kind=OpKind.INT_ALU, pc=pc,
                                src_regs=(self._DEST_REG,),
                                dst_reg=self._SYNC_REG))
        start = core.register_ready_time(self._SYNC_REG)
        core.execute_op(MicroOp(kind=OpKind.LOAD, pc=pc + 4,
                                address=virtual_address,
                                src_regs=(self._SYNC_REG,),
                                dst_reg=self._DEST_REG))
        return core.register_ready_time(self._DEST_REG) - start

    def attacker_probe_all(self) -> Dict[int, int]:
        """Time a committed reload of every probe-array element."""
        return {value: self.attacker_timed_load(self.probe_address(value))
                for value in range(self.num_secret_values)}

    def attacker_store(self, virtual_address: int) -> None:
        """A committed attacker store, through the real core.

        The commit-time write obtains exclusive ownership on the fabric
        and — when the attacker core runs MuonTrap — multicasts a
        filter-cache invalidation to its peers (section 4.5), which is
        the event the scoped-invalidate ablation makes conditional.
        """
        self.attacker.execute_op(MicroOp(kind=OpKind.STORE,
                                         pc=self.ATTACKER_CODE + 128,
                                         address=virtual_address))

    # -- test instrumentation ---------------------------------------------------
    def victim_probe_latencies(self) -> Dict[int, int]:
        """The victim's speculative reload latency for every candidate.

        Measured directly against the victim core's memory system — this
        is measurement instrumentation for the scoped-invalidate
        ablation, not an attacker capability: a stale line the
        invalidation multicast failed to reach shows up as a 1-cycle
        filter hit only for the secret-dependent candidate, i.e. as
        secret-dependent timing inside the victim's own execution.
        """
        memory = self.victim.memory
        now = max(self.victim.current_cycle,
                  self.attacker.current_cycle) + 10_000
        latencies: Dict[int, int] = {}
        for value in range(self.num_secret_values):
            result = memory.load(self.VICTIM_CORE, VICTIM_PROCESS,
                                 self.probe_address(value), now,
                                 speculative=True)
            latencies[value] = result.latency
            now += 1_000
        return latencies

    # -- victim operations (on core 1) ----------------------------------------
    def victim_committed_work(self, count: int = 4) -> None:
        """Committed victim instructions (warms its fetch path / clock)."""
        for _ in range(count):
            self.victim.execute_op(MicroOp(kind=OpKind.INT_ALU,
                                           pc=self.VICTIM_CODE,
                                           dst_reg=self._SYNC_REG))

    def victim_load_secret(self) -> None:
        """The victim's committed load of its own secret (ordinary work)."""
        self.victim.execute_op(MicroOp(kind=OpKind.LOAD, pc=self.VICTIM_CODE,
                                       address=VICTIM_SECRET_ADDRESS,
                                       dst_reg=9))

    def victim_speculative_touch(self, addresses: Sequence[int],
                                 load_secret: bool = True) -> None:
        """The victim's Spectre gadget, through the real core.

        A committed load reads the victim's secret (unless the caller
        already issued it via :meth:`victim_load_secret`), then a
        deliberately mispredicted branch issues wrong-path loads at the
        given (secret-dependent) addresses.  The core sends them into the
        memory system speculatively and squashes them when the branch
        resolves — none of them ever commits.
        """
        core = self.victim
        pc = self.VICTIM_CODE
        if load_secret:
            self.victim_load_secret()
        wrong_path = [WrongPathAccess(address=address, issue_offset=index + 1)
                      for index, address in enumerate(addresses)]
        core.execute_op(MicroOp(kind=OpKind.BRANCH, pc=pc + 4, taken=False,
                                target=pc + 8, force_mispredict=True,
                                wrong_path=wrong_path))


def classify_probe(latencies: Dict[int, int]) -> Tuple[Optional[int], int]:
    """Pick the value whose probe was distinctly fastest.

    Returns ``(value, margin)``; ``value`` is None when no candidate is
    clearly faster than the rest (margin < 2 cycles), i.e. the side channel
    carried no signal.
    """
    if not latencies:
        return None, 0
    ordered = sorted(latencies.items(), key=lambda item: item[1])
    if len(ordered) == 1:
        return ordered[0][0], 0
    margin = ordered[1][1] - ordered[0][1]
    if margin < 2:
        return None, margin
    return ordered[0][0], margin


def run_attack_for_modes(attack_factory, modes: Sequence[SchemeLike],
                         **kwargs) -> Dict[str, AttackOutcome]:
    """Run one attack against several protection modes (experiment helper)."""
    outcomes: Dict[str, AttackOutcome] = {}
    for mode in modes:
        attack = attack_factory(mode=mode, **kwargs)
        outcomes[scheme_name(mode)] = attack.run()
    return outcomes
