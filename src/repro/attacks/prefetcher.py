"""Attack 5: the prefetcher attack.

Hiding the speculative loads themselves is not enough if they can still
train a hardware prefetcher: the prefetcher's fills land in ordinary
(non-speculative) caches, so the attacker can observe them after the
speculation is squashed.  Here the victim is tricked into speculatively
walking a short secret-dependent stream; on an unprotected system the L2
stream prefetcher locks on and fetches the lines *ahead* of the stream into
the shared L2, which the attacker then detects by timing.  Under MuonTrap
the prefetcher is trained only by the committed instruction stream
(section 4.6), so squashed accesses leave no trace in it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.attacks.framework import (
    AttackEnvironment,
    AttackOutcome,
    classify_probe,
    LINE_SIZE,
    VICTIM_SECRET_ADDRESS,
)
from repro.common.params import (SchemeLike,
                                 SystemConfig, scheme_name)


class PrefetcherAttack:
    """Attack 5 of the paper: leaking through prefetcher training."""

    name = "prefetcher"

    #: How many sequential lines the victim speculatively touches; enough for
    #: the stream detector to reach its confidence threshold even though the
    #: out-of-order access stream reaches it slightly reordered.
    TRAIN_LENGTH = 16
    #: The window of lines the attacker probes: strictly beyond the lines the
    #: victim demanded (so the signal can only come from the prefetcher),
    #: covering where the stream prefetcher runs ahead of the last access.
    PROBE_WINDOW = range(TRAIN_LENGTH, TRAIN_LENGTH + 10)

    def __init__(self, mode: SchemeLike = "unprotected",
                 secret: int = 2, num_secret_values: int = 4,
                 config: Optional[SystemConfig] = None) -> None:
        # Each candidate value gets its own 4 KiB region of the shared
        # mapping, plus room for the probe window beyond the last region.
        shared_bytes = (num_secret_values + 2) * 0x1000 + 0x1000
        self.environment = AttackEnvironment(
            config=config, mode=mode, num_cores=1, secret=secret,
            num_secret_values=num_secret_values, shared_bytes=shared_bytes)
        self.mode = mode

    def _stream_base(self, value: int) -> int:
        # Distinct 4 KiB regions per candidate value so each candidate trains
        # (or does not train) its own stream-detector entry.
        return self.environment.probe_address(0) + value * 0x1000

    def run(self) -> AttackOutcome:
        env = self.environment
        secret = env.secret

        # Step 2 (victim, speculative, squashed): load the secret, then walk
        # a short stream in the region selected by the secret.
        env.victim_speculative_load(VICTIM_SECRET_ADDRESS)
        base = self._stream_base(secret)
        for step in range(self.TRAIN_LENGTH):
            env.victim_speculative_load(base + step * LINE_SIZE)
        env.victim_squash()

        # Step 3 (attacker): probe the lines ahead of each candidate stream.
        # If the prefetcher was trained by the victim's squashed walk, some
        # line ahead of the real stream is already in the shared L2, so the
        # fastest probe in the window reveals the trained stream.
        latencies: Dict[int, int] = {}
        for value in range(env.num_secret_values):
            fastest = None
            for ahead in self.PROBE_WINDOW:
                probe = self._stream_base(value) + ahead * LINE_SIZE
                latency = env.attacker_load(probe)
                fastest = latency if fastest is None else min(fastest, latency)
            latencies[value] = fastest

        recovered, _ = classify_probe(latencies)
        return AttackOutcome(name=self.name, mode=scheme_name(self.mode),
                             actual_secret=secret,
                             recovered_secret=recovered,
                             probe_latencies=latencies)
