"""Attack 3: the shared-data coherence attack (SpectrePrime-style).

The attacker and victim run on different cores and share a writable page.
The attacker first loads a shared line so its own private L1 holds it in the
Exclusive state.  It then tricks the victim into speculatively touching the
line (a load that would normally steal the line into Shared, or a
speculative store/RFO).  Afterwards the attacker times a *store* to the
line: if the victim's speculation downgraded or invalidated the attacker's
copy, the store needs a coherence transaction and is slow — a timing channel
through the coherence protocol rather than through cache contents.

MuonTrap's defence is reduced coherency speculation: a speculative access
that would force another core's private M/E line out of that state is
NACKed and retried only once it is non-speculative, so a squashed
speculative access can never change the attacker's coherence state.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.attacks.framework import (
    AttackEnvironment,
    AttackOutcome,
    classify_probe,
    VICTIM_SECRET_ADDRESS,
)
from repro.common.params import (SchemeLike,
                                 SystemConfig, scheme_name)


class SharedDataCoherenceAttack:
    """Attack 3 of the paper, run across two cores."""

    name = "shared-data-coherence"

    def __init__(self, mode: SchemeLike = "unprotected",
                 secret: int = 2, num_secret_values: int = 4,
                 config: Optional[SystemConfig] = None) -> None:
        self.environment = AttackEnvironment(
            config=config, mode=mode, num_cores=2, secret=secret,
            num_secret_values=num_secret_values, shared_writable=True)
        self.mode = mode
        self.attacker_core = 0
        self.victim_core = 1

    def run(self) -> AttackOutcome:
        env = self.environment
        secret = env.secret

        # Step 1 (attacker, core 0): bring every probe line into the
        # attacker's private L1 with write ownership (Modified/Exclusive).
        for value in range(env.num_secret_values):
            env.attacker_store(env.probe_address(value),
                               core_id=self.attacker_core)

        # Step 2 (victim, core 1, speculative, squashed): load the secret and
        # use it to issue a speculative access to the corresponding shared
        # line.  On an unprotected system this steals the line from the
        # attacker's cache; under MuonTrap the request is NACKed.
        env.victim_speculative_load(VICTIM_SECRET_ADDRESS,
                                    core_id=self.victim_core)
        env.victim_speculative_load(env.probe_address(secret),
                                    core_id=self.victim_core)
        env.victim_squash(core_id=self.victim_core)

        # Step 3 (attacker, core 0): time a store to every probe line.  A
        # line still held in M/E locally commits quickly; a line that lost
        # ownership needs an invalidating bus transaction first.
        latencies: Dict[int, int] = {}
        for value in range(env.num_secret_values):
            latencies[value] = env.attacker_store(
                env.probe_address(value), core_id=self.attacker_core)

        inverted = {value: -latency for value, latency in latencies.items()}
        recovered, _ = classify_probe(inverted)
        return AttackOutcome(name=self.name, mode=scheme_name(self.mode),
                             actual_secret=secret,
                             recovered_secret=recovered,
                             probe_latencies=latencies)
