"""Attack 1: the classic Spectre cache attack (evict + speculate + reload).

The attacker and victim share a probe array (a shared library page that is
cold at the start of the attack).  The attacker tricks the victim into
speculatively loading its secret and using it to index the shared array;
the speculation is then squashed, so none of the victim's accesses commit.
When control returns to the attacker, it times a committed load of every
probe element: on an unprotected system the secret-indexed element was
filled into the (physically shared) L1/L2 by the squashed access and is
fast, so the secret leaks.  Under MuonTrap the speculative fill only ever
reached the victim's filter cache, which is non-inclusive non-exclusive
with the hierarchy and is cleared on the context switch back to the
attacker, so every probe is equally slow and nothing leaks.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.attacks.framework import (
    AttackEnvironment,
    AttackOutcome,
    classify_probe,
    VICTIM_SECRET_ADDRESS,
)
from repro.common.params import (SchemeLike,
                                 SystemConfig, scheme_name)


class SpectrePrimeProbeAttack:
    """Attack 1 of the paper."""

    name = "spectre-prime-probe"

    def __init__(self, mode: SchemeLike = "unprotected",
                 secret: int = 3, num_secret_values: int = 8,
                 config: Optional[SystemConfig] = None) -> None:
        self.environment = AttackEnvironment(
            config=config, mode=mode, num_cores=1, secret=secret,
            num_secret_values=num_secret_values)
        self.mode = mode

    def run(self) -> AttackOutcome:
        env = self.environment
        secret = env.secret

        # Step 1 (attacker): establish the primed state.  The probe array is
        # shared but has never been touched, so every element is uncached;
        # the attacker just does unrelated work of its own.
        for index in range(32):
            env.attacker_load(env.attacker_private_address(512 + index))

        # Step 2 (victim, speculative): the bounds-check mispredicts, the
        # victim loads its secret and dereferences the shared array at a
        # secret-dependent index.  None of this ever commits.
        env.victim_speculative_load(VICTIM_SECRET_ADDRESS)
        env.victim_speculative_load(env.probe_address(secret))
        env.victim_squash()

        # Step 3 (attacker): time a committed load of every probe element.
        latencies: Dict[int, int] = {}
        for value in range(env.num_secret_values):
            latencies[value] = env.attacker_load(env.probe_address(value))

        recovered, _ = classify_probe(latencies)
        return AttackOutcome(name=self.name, mode=scheme_name(self.mode),
                             actual_secret=secret,
                             recovered_secret=recovered,
                             probe_latencies=latencies)
