"""Attack 6: the instruction-cache attack.

The data cache is not the only shared structure speculation can imprint on:
a victim that speculatively executes an indirect branch whose target depends
on a secret will fetch instructions from a secret-dependent location,
filling the instruction cache.  The attacker, sharing that code (a shared
library), afterwards times instruction fetches of each candidate target and
finds the warm one.  MuonTrap closes the channel with an instruction filter
cache: speculative fetches fill only the per-core L0I, which is flushed on
the context switch back to the attacker.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.attacks.framework import (
    AttackEnvironment,
    AttackOutcome,
    classify_probe,
    VICTIM_SECRET_ADDRESS,
)
from repro.common.params import (SchemeLike,
                                 SystemConfig, scheme_name)


class InstructionCacheAttack:
    """Attack 6 of the paper: leaking through speculative instruction fetch."""

    name = "instruction-cache"

    def __init__(self, mode: SchemeLike = "unprotected",
                 secret: int = 4, num_secret_values: int = 8,
                 config: Optional[SystemConfig] = None) -> None:
        self.environment = AttackEnvironment(
            config=config, mode=mode, num_cores=1, secret=secret,
            num_secret_values=num_secret_values)
        self.mode = mode

    def _gadget_address(self, value: int) -> int:
        # Candidate branch targets inside the shared (library) code region,
        # one cache line apart so each maps to its own I-cache line.
        return self.environment.probe_address(value)

    def run(self) -> AttackOutcome:
        env = self.environment
        secret = env.secret

        # Step 1 (attacker): ensure none of the candidate targets are warm in
        # the shared hierarchy by touching unrelated code.
        for index in range(32):
            env.attacker_fetch(env.attacker_private_address(2048 + index))

        # Step 2 (victim, speculative, squashed): the poisoned indirect
        # branch sends speculative fetch to the secret-dependent target.
        env.victim_speculative_load(VICTIM_SECRET_ADDRESS)
        env.victim_speculative_fetch(self._gadget_address(secret))
        env.victim_squash()

        # Step 3 (attacker): time an instruction fetch of every candidate.
        latencies: Dict[int, int] = {}
        for value in range(env.num_secret_values):
            latencies[value] = env.attacker_fetch(self._gadget_address(value))

        recovered, _ = classify_probe(latencies)
        return AttackOutcome(name=self.name, mode=scheme_name(self.mode),
                             actual_secret=secret,
                             recovered_secret=recovered,
                             probe_latencies=latencies)
