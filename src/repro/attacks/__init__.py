"""The six Spectre-style attacks of the paper and their shared harness."""

from repro.attacks.filter_coherency import FilterCacheCoherencyAttack
from repro.attacks.framework import (
    AttackEnvironment,
    AttackOutcome,
    classify_probe,
    run_attack_for_modes,
)
from repro.attacks.inclusion_policy import InclusionPolicyAttack
from repro.attacks.instruction_cache import InstructionCacheAttack
from repro.attacks.prefetcher import PrefetcherAttack
from repro.attacks.shared_data import SharedDataCoherenceAttack
from repro.attacks.spectre_prime_probe import SpectrePrimeProbeAttack

ALL_ATTACKS = [
    SpectrePrimeProbeAttack,
    InclusionPolicyAttack,
    SharedDataCoherenceAttack,
    FilterCacheCoherencyAttack,
    PrefetcherAttack,
    InstructionCacheAttack,
]

__all__ = [
    "ALL_ATTACKS",
    "AttackEnvironment",
    "AttackOutcome",
    "FilterCacheCoherencyAttack",
    "InclusionPolicyAttack",
    "InstructionCacheAttack",
    "PrefetcherAttack",
    "SharedDataCoherenceAttack",
    "SpectrePrimeProbeAttack",
    "classify_probe",
    "run_attack_for_modes",
]
