"""The six Spectre-style attacks of the paper and their shared harness,
plus the cross-core attack suite that drives real multi-core systems."""

from repro.attacks.cross_core import (
    CROSS_CORE_ATTACKS,
    CrossCoreLLCPrimeProbeAttack,
    CrossCoreReloadAttack,
    classify_contention,
    run_cross_core_suite,
)
from repro.attacks.filter_coherency import FilterCacheCoherencyAttack
from repro.attacks.framework import (
    AttackEnvironment,
    AttackOutcome,
    CrossCoreAttackEnvironment,
    classify_probe,
    run_attack_for_modes,
)
from repro.attacks.inclusion_policy import InclusionPolicyAttack
from repro.attacks.instruction_cache import InstructionCacheAttack
from repro.attacks.prefetcher import PrefetcherAttack
from repro.attacks.shared_data import SharedDataCoherenceAttack
from repro.attacks.spectre_prime_probe import SpectrePrimeProbeAttack

ALL_ATTACKS = [
    SpectrePrimeProbeAttack,
    InclusionPolicyAttack,
    SharedDataCoherenceAttack,
    FilterCacheCoherencyAttack,
    PrefetcherAttack,
    InstructionCacheAttack,
]

__all__ = [
    "ALL_ATTACKS",
    "AttackEnvironment",
    "AttackOutcome",
    "CROSS_CORE_ATTACKS",
    "CrossCoreAttackEnvironment",
    "CrossCoreLLCPrimeProbeAttack",
    "CrossCoreReloadAttack",
    "FilterCacheCoherencyAttack",
    "InclusionPolicyAttack",
    "InstructionCacheAttack",
    "PrefetcherAttack",
    "SharedDataCoherenceAttack",
    "SpectrePrimeProbeAttack",
    "classify_contention",
    "classify_probe",
    "run_attack_for_modes",
    "run_cross_core_suite",
]
