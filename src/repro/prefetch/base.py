"""Prefetcher interface.

Prefetchers observe a stream of training events (demand accesses to the
cache they are attached to) and emit candidate prefetch addresses.  Under an
unprotected system the training events arrive as soon as a (possibly
speculative, possibly wrong-path) access touches the cache; under MuonTrap
they arrive only through the commit-time notification channel
(section 4.6), so the prefetcher never learns anything about squashed
execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.statistics import StatGroup


@dataclass(frozen=True, slots=True)
class TrainingEvent:
    """One observation given to a prefetcher."""

    address: int
    pc: int
    cycle: int
    was_miss: bool = True


class Prefetcher:
    """Base class: train on accesses, propose prefetch line addresses."""

    def __init__(self, line_size: int = 64,
                 stats: Optional[StatGroup] = None) -> None:
        self.line_size = line_size
        stats = stats or StatGroup("prefetcher")
        self.stats = stats
        self._trainings = stats.counter("training_events")
        self._issued = stats.counter("prefetches_issued")

    def train(self, event: TrainingEvent) -> List[int]:
        """Observe one access; return line addresses to prefetch (maybe [])."""
        self._trainings.increment()
        candidates = self._propose(event)
        self._issued.increment(len(candidates))
        return candidates

    def _propose(self, event: TrainingEvent) -> List[int]:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all training state (used on context switches in tests)."""

    @property
    def prefetches_issued(self) -> int:
        return self._issued.value

    @property
    def training_events(self) -> int:
        return self._trainings.value


class NullPrefetcher(Prefetcher):
    """A prefetcher that never prefetches (for caches without one)."""

    def _propose(self, event: TrainingEvent) -> List[int]:
        return []
