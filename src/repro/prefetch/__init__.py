"""Prefetchers and the MuonTrap commit-time prefetch channel."""

from repro.prefetch.base import NullPrefetcher, Prefetcher, TrainingEvent
from repro.prefetch.commit_channel import (
    CommitPrefetchChannel,
    PrefetchNotification,
)
from repro.prefetch.next_line import NextLinePrefetcher
from repro.prefetch.stream import StreamEntry, StreamPrefetcher
from repro.prefetch.stride import StrideEntry, StridePrefetcher

__all__ = [
    "CommitPrefetchChannel",
    "NextLinePrefetcher",
    "NullPrefetcher",
    "PrefetchNotification",
    "Prefetcher",
    "StreamEntry",
    "StreamPrefetcher",
    "StrideEntry",
    "StridePrefetcher",
    "TrainingEvent",
]
