"""A region-based stream prefetcher (the shared-L2 prefetcher).

Unlike the PC-indexed :class:`~repro.prefetch.stride.StridePrefetcher`, this
detector keys its table on the 4 KiB region an access falls into, so it
recognises sequential streams regardless of which static instruction issued
them.  This matches the stream/stride prefetchers typically configured at
the L2 in gem5 and is the prefetcher the paper's commit-time-training
results hinge on: wrong-path and mis-speculated accesses land in arbitrary
regions and at arbitrary points of a stream, degrading the confidence of
access-time training, whereas the commit-time notification stream
(section 4.6) is in program order and keeps the detector locked on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.addresses import block_align
from repro.common.statistics import StatGroup
from repro.prefetch.base import Prefetcher, TrainingEvent


@dataclass
class StreamEntry:
    """Per-region detector state."""

    last_address: int
    stride: int = 0
    confidence: int = 0


class StreamPrefetcher(Prefetcher):
    """Detects strided streams within aligned memory regions."""

    def __init__(self, line_size: int = 64, region_bits: int = 12,
                 table_entries: int = 128, degree: int = 2, distance: int = 8,
                 confidence_threshold: int = 2,
                 stats: Optional[StatGroup] = None) -> None:
        super().__init__(line_size=line_size, stats=stats)
        self.region_bits = region_bits
        self.table_entries = table_entries
        self.degree = degree
        self.distance = distance
        self.confidence_threshold = confidence_threshold
        self._table: Dict[int, StreamEntry] = {}
        self._insertions = self.stats.counter("stream_allocations")
        self._disruptions = self.stats.counter("stream_disruptions")

    def _region(self, address: int) -> int:
        return address >> self.region_bits

    def _propose(self, event: TrainingEvent) -> List[int]:
        region = self._region(event.address)
        entry = self._table.get(region)
        if entry is None:
            if len(self._table) >= self.table_entries:
                # Evict an arbitrary (oldest-inserted) region.
                self._table.pop(next(iter(self._table)))
            self._table[region] = StreamEntry(last_address=event.address)
            self._insertions.increment()
            return []
        stride = event.address - entry.last_address
        entry.last_address = event.address
        if stride == 0:
            return []
        if stride == entry.stride:
            entry.confidence = min(3, entry.confidence + 1)
        else:
            if entry.confidence > 0:
                self._disruptions.increment()
            entry.confidence = max(0, entry.confidence - 1)
            if entry.confidence == 0:
                entry.stride = stride
        if entry.confidence < self.confidence_threshold or entry.stride == 0:
            return []
        candidates: List[int] = []
        for ahead in range(1, self.degree + 1):
            target = event.address + entry.stride * (self.distance + ahead)
            if target < 0:
                continue
            line = block_align(target, self.line_size)
            if line != block_align(event.address, self.line_size) and \
                    line not in candidates:
                candidates.append(line)
        return candidates

    def reset(self) -> None:
        self._table.clear()

    def entry_for_address(self, address: int) -> Optional[StreamEntry]:
        """Inspect the detector entry an address maps to (test helper)."""
        return self._table.get(self._region(address))

    @property
    def disruptions(self) -> int:
        return self._disruptions.value
