"""A simple next-N-line prefetcher.

Used in tests and in the instruction-side experiments as a cheaper
alternative to the stride prefetcher.  On every training event it proposes
the next ``degree`` sequential lines.
"""

from __future__ import annotations

from typing import List, Optional

from repro.common.addresses import block_align
from repro.common.statistics import StatGroup
from repro.prefetch.base import Prefetcher, TrainingEvent


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next ``degree`` sequential cache lines."""

    def __init__(self, line_size: int = 64, degree: int = 1,
                 only_on_miss: bool = True,
                 stats: Optional[StatGroup] = None) -> None:
        super().__init__(line_size=line_size, stats=stats)
        self.degree = degree
        self.only_on_miss = only_on_miss

    def _propose(self, event: TrainingEvent) -> List[int]:
        if self.only_on_miss and not event.was_miss:
            return []
        base = block_align(event.address, self.line_size)
        return [base + self.line_size * ahead
                for ahead in range(1, self.degree + 1)]
