"""A PC-indexed stride prefetcher (the L2 prefetcher of Table 1).

Each static load PC gets a table entry recording the last address it
touched, the last observed stride and a two-bit confidence counter.  When
the same stride is seen twice in a row the prefetcher issues ``degree``
prefetches ahead of the stream.  Wrong-path training events with unrelated
addresses reset confidence, which is exactly why the paper finds that
commit-time (in-order) training *helps* streaming workloads such as lbm:
the stride stream is no longer polluted by misspeculated accesses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.addresses import block_align
from repro.common.statistics import StatGroup
from repro.prefetch.base import Prefetcher, TrainingEvent


@dataclass
class StrideEntry:
    last_address: int
    stride: int = 0
    confidence: int = 0


class StridePrefetcher(Prefetcher):
    """Classic per-PC stride detection with confidence."""

    def __init__(self, line_size: int = 64, table_entries: int = 256,
                 degree: int = 2, distance: int = 4,
                 confidence_threshold: int = 2,
                 stats: Optional[StatGroup] = None) -> None:
        super().__init__(line_size=line_size, stats=stats)
        self.table_entries = table_entries
        self.degree = degree
        self.distance = distance
        self.confidence_threshold = confidence_threshold
        self._table: Dict[int, StrideEntry] = {}
        self._useful = self.stats.counter("confident_streams")

    def _propose(self, event: TrainingEvent) -> List[int]:
        index = event.pc % self.table_entries
        entry = self._table.get(index)
        if entry is None:
            self._table[index] = StrideEntry(last_address=event.address)
            return []
        stride = event.address - entry.last_address
        if stride == 0:
            entry.last_address = event.address
            return []
        if stride == entry.stride:
            entry.confidence = min(3, entry.confidence + 1)
        else:
            entry.confidence = max(0, entry.confidence - 1)
            if entry.confidence == 0:
                entry.stride = stride
        entry.last_address = event.address
        if entry.confidence < self.confidence_threshold or entry.stride == 0:
            return []
        self._useful.increment()
        candidates: List[int] = []
        for ahead in range(1, self.degree + 1):
            target = event.address + entry.stride * (self.distance + ahead)
            if target < 0:
                continue
            line = block_align(target, self.line_size)
            if line not in candidates:
                candidates.append(line)
        return candidates

    def reset(self) -> None:
        self._table.clear()

    def entry_for_pc(self, pc: int) -> Optional[StrideEntry]:
        """Inspect the table entry a PC maps to (test helper)."""
        return self._table.get(pc % self.table_entries)
