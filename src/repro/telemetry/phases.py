"""Wall-clock phase timers for the harness (`--profile` support).

A cell of a campaign goes through distinct phases — trace generation,
packing, simulation, reporting — whose relative cost is what a profile of
the harness actually needs, long before a function-level profile makes
sense.  :func:`phase` times a block against the process-wide
:data:`PHASES` accumulator::

    with phase("simulate"):
        result = simulator.run(workload)

``python -m repro run --profile ...`` prints the accumulated phase report
next to the cProfile output.  Phase timing measures harness wall-clock,
never simulated time, and costs two ``perf_counter`` calls per block — it
is always on; only the *report* is gated behind ``--profile``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator


class PhaseTimers:
    """Accumulates total wall-clock seconds and entry counts per phase."""

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed
            self._counts[name] = self._counts.get(name, 0) + 1

    def add(self, name: str, seconds: float) -> None:
        """Record an externally measured duration (e.g. from a worker)."""
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def totals(self) -> Dict[str, float]:
        return dict(self._totals)

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._totals.clear()
        self._counts.clear()

    def report(self) -> str:
        """A small fixed-width table, slowest phase first."""
        if not self._totals:
            return "no phases recorded"
        width = max(len(name) for name in self._totals)
        lines = [f"{'phase':<{width}}  {'seconds':>9}  {'calls':>6}"]
        for name in sorted(self._totals, key=self._totals.get, reverse=True):
            lines.append(f"{name:<{width}}  {self._totals[name]:>9.3f}  "
                         f"{self._counts[name]:>6}")
        return "\n".join(lines)


#: The process-wide accumulator the harness reports under ``--profile``.
PHASES = PhaseTimers()


def phase(name: str):
    """Time a block against the process-wide :data:`PHASES` accumulator."""
    return PHASES.phase(name)
