"""Time-series metrics: periodic snapshots of the statistics tree.

The end-of-run :class:`~repro.common.statistics.StatGroup` totals say *how
much* happened; the time series says *when*.  A :class:`TimeSeries` is a
sequence of full snapshots of one statistics tree, each labelled with the
simulated cycle it was taken at, plus optional *gauges* — callables sampled
alongside the counters for instantaneous state such as filter-cache
occupancy.  Per-interval deltas (:meth:`TimeSeries.delta`) and ratios of
deltas (:meth:`TimeSeries.rate`) turn the cumulative counters into the
plottable quantities the paper's analysis needs: MPKI over time, squash
rate over time, occupancy over time, per core.

:class:`MetricsSampler` drives the sampling: constructed with a cycle
period, bound to a simulated system, and pumped by the simulator at
instruction-interleave boundaries (``api.simulate(metrics_every=N)`` wires
the whole thing up).  Sampling granularity is therefore the interleave
chunk (64 instructions per core), not exactly N cycles — snapshots land at
the first boundary at or after each N-cycle mark.
"""

from __future__ import annotations

import io
from typing import Any, Callable, Dict, List, Optional, Sequence, Union


class TimeSeries:
    """Cycle-stamped snapshots of a statistics tree (plus gauges).

    Column names are the dotted counter paths of
    :meth:`~repro.common.statistics.StatGroup.as_dict` (gauges keep the
    names they were registered under); rows are snapshots in cycle order.
    Counters are cumulative: use :meth:`delta`/:meth:`rate` for
    per-interval views.
    """

    def __init__(self, group: Any) -> None:
        self._group = group
        self._gauges: List[tuple] = []          # (name, callable)
        self._stat_columns: Optional[List[str]] = None
        self._columns: Optional[List[str]] = None
        self.cycles: List[int] = []
        self._rows: List[List[Union[int, float]]] = []

    # -- construction -----------------------------------------------------------
    def add_gauge(self, name: str, read: Callable[[], Union[int, float]]
                  ) -> None:
        """Register an instantaneous value sampled with every snapshot."""
        if self._columns is not None:
            raise RuntimeError("gauges must be added before the first sample")
        self._gauges.append((name, read))

    def sample(self, cycle: int) -> None:
        """Take one snapshot, labelled with ``cycle``."""
        values = self._group.as_dict()
        if self._columns is None:
            self._gauges.sort(key=lambda pair: pair[0])
            self._stat_columns = sorted(values)
            self._columns = (self._stat_columns
                             + [name for name, _ in self._gauges])
        row: List[Union[int, float]] = [values.get(column, 0)
                                        for column in self._stat_columns]
        row.extend(read() for _, read in self._gauges)
        self.cycles.append(cycle)
        self._rows.append(row)

    # -- access ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cycles)

    @property
    def columns(self) -> List[str]:
        """Column names, ``cycle`` first."""
        return ["cycle"] + list(self._columns or [])

    def rows(self) -> List[List[Union[int, float]]]:
        """Snapshot rows, each led by its cycle."""
        return [[cycle] + row for cycle, row in zip(self.cycles, self._rows)]

    def series(self, column: str) -> List[Union[int, float]]:
        """One column's values over time."""
        if column == "cycle":
            return list(self.cycles)
        if self._columns is None or column not in self._columns:
            raise KeyError(column)
        index = self._columns.index(column)
        return [row[index] for row in self._rows]

    def delta(self, column: str) -> List[Union[int, float]]:
        """Per-interval increments of a cumulative column.

        The first entry is measured from zero, so the deltas sum to the
        final cumulative value.
        """
        values = self.series(column)
        previous: Union[int, float] = 0
        deltas: List[Union[int, float]] = []
        for value in values:
            deltas.append(value - previous)
            previous = value
        return deltas

    def rate(self, numerator: str, denominator: str,
             scale: float = 1.0) -> List[float]:
        """Per-interval ``scale * d(numerator) / d(denominator)``.

        With ``numerator`` a miss counter, ``denominator`` the committed-
        instruction counter and ``scale=1000`` this is MPKI over time;
        intervals where the denominator did not move yield 0.0.
        """
        tops = self.delta(numerator)
        bottoms = self.delta(denominator)
        return [scale * top / bottom if bottom else 0.0
                for top, bottom in zip(tops, bottoms)]

    # -- export ------------------------------------------------------------------
    def to_csv(self, destination: Optional[Any] = None) -> str:
        """Render as CSV (header row of column names, one row per sample).

        ``destination`` may be a path or a writable text file; the rendered
        text is returned either way.
        """
        buffer = io.StringIO()
        buffer.write(",".join(self.columns) + "\n")
        for row in self.rows():
            buffer.write(",".join(str(value) for value in row) + "\n")
        text = buffer.getvalue()
        if destination is None:
            return text
        if hasattr(destination, "write"):
            destination.write(text)
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                handle.write(text)
        return text


class MetricsSampler:
    """Snapshots a system's statistics tree every N simulated cycles.

    The simulator pumps :meth:`on_cycle` at interleave boundaries; the
    sampler takes a snapshot whenever the clock has crossed the next
    N-cycle mark, and :meth:`finish` records the final state so the last
    row always equals the end-of-run totals.
    """

    def __init__(self, every: int,
                 timeseries: Optional[TimeSeries] = None) -> None:
        if every < 1:
            raise ValueError("metrics_every must be a positive cycle count")
        self.every = every
        self.timeseries = timeseries
        self._next = every
        self._last_sampled: Optional[int] = None

    def bind(self, system: Any) -> None:
        """Point the sampler at a built system's statistics tree.

        Also registers filter-cache occupancy gauges for every filter-
        capable scheme frontend, so occupancy over time comes with the
        counters.
        """
        if self.timeseries is None:
            self.timeseries = system.stats.to_timeseries()
        memory = getattr(system, "memory_system", None)
        frontends = getattr(memory, "scheme_frontends", None)
        subsystems = (list(frontends.values()) if frontends
                      else [memory] if memory is not None else [])
        for frontend in subsystems:
            data_filter = getattr(frontend, "data_filter", None)
            inst_filter = getattr(frontend, "inst_filter", None)
            for core_id in getattr(frontend, "core_ids", []) or []:
                for accessor, label in ((data_filter, "data_filter"),
                                        (inst_filter, "inst_filter")):
                    if not callable(accessor):
                        continue
                    unit = accessor(core_id)
                    if unit is not None:
                        self.timeseries.add_gauge(
                            f"core{core_id}.{label}.occupancy",
                            unit.occupancy)

    def on_cycle(self, cycle: int) -> None:
        """Sample if the clock crossed the next N-cycle mark."""
        if cycle >= self._next:
            self.timeseries.sample(cycle)
            self._last_sampled = cycle
            self._next = cycle - (cycle % self.every) + self.every

    def finish(self, cycle: int) -> None:
        """Record the end-of-run snapshot (idempotent per cycle)."""
        if self.timeseries is not None and cycle != self._last_sampled:
            self.timeseries.sample(cycle)
            self._last_sampled = cycle
