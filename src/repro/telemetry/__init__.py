"""Observability for the reproduction: tracing, metrics, logging, timers.

Three layers, all opt-in and all zero-cost when unused:

* **Event tracing** (:mod:`repro.telemetry.tracer`) — cycle-level typed
  events (pipeline issue/commit/squash, cache hit/miss/fill/evict,
  coherence transitions, filter-cache installs/invalidates, TLB walks)
  exported as JSONL or Chrome trace-event JSON (Perfetto-viewable).
* **Time-series metrics** (:mod:`repro.telemetry.metrics`) — periodic
  snapshots of the statistics tree so MPKI, squash rate and filter-cache
  occupancy can be plotted over time, per core.
* **Runtime instrumentation** (:mod:`repro.telemetry.log`,
  :mod:`repro.telemetry.phases`) — structured stderr logging gated by
  ``REPRO_LOG`` and wall-clock phase timers surfaced by ``--profile``.

The usual entry points are ``repro.api.simulate(trace=...,
metrics_every=...)`` and ``python -m repro trace <benchmark>``.
"""

from repro.telemetry.events import CATEGORIES, TraceEvent
from repro.telemetry.log import configure, get_logger, log_event
from repro.telemetry.metrics import MetricsSampler, TimeSeries
from repro.telemetry.phases import PHASES, PhaseTimers, phase
from repro.telemetry.tracer import (
    Tracer,
    activate,
    active_tracer,
    deactivate,
    tracing,
)

__all__ = [
    "CATEGORIES",
    "MetricsSampler",
    "PHASES",
    "PhaseTimers",
    "TimeSeries",
    "TraceEvent",
    "Tracer",
    "activate",
    "active_tracer",
    "configure",
    "deactivate",
    "get_logger",
    "log_event",
    "phase",
    "tracing",
]
