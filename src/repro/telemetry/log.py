"""Structured runtime logging for the harness.

Everything under the ``repro`` logger hierarchy writes to stderr; the
``REPRO_LOG`` environment variable sets the level (``DEBUG``, ``INFO``,
``WARNING``, ...; default ``WARNING``, so the harness is silent unless
asked).  Messages are structured as ``event key=value ...`` lines via
:func:`log_event`, which keeps them grep-able without a parsing layer::

    REPRO_LOG=INFO python -m repro run --suite quick
    ... INFO repro.harness.campaign cell_done benchmark=mcf label=MuonTrap seconds=0.41

Logging never touches simulated state and is configured lazily, so code
that never logs pays one ``is-configured`` check per ``get_logger`` call
and nothing per simulated instruction.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Any

_CONFIGURED = False


def configure(force: bool = False) -> None:
    """Apply ``REPRO_LOG`` to the ``repro`` logger hierarchy (idempotent)."""
    global _CONFIGURED
    if _CONFIGURED and not force:
        return
    _CONFIGURED = True
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(
            "%(levelname)s %(name)s %(message)s"))
        root.addHandler(handler)
    root.propagate = False
    level_name = os.environ.get("REPRO_LOG", "").strip().upper()
    level = getattr(logging, level_name, None) if level_name else None
    root.setLevel(level if isinstance(level, int) else logging.WARNING)


def get_logger(name: str = "") -> logging.Logger:
    """A logger in the ``repro`` hierarchy, configured per ``REPRO_LOG``."""
    configure()
    if not name:
        qualified = "repro"
    elif name == "repro" or name.startswith("repro."):
        qualified = name
    else:
        qualified = f"repro.{name}"
    return logging.getLogger(qualified)


def log_event(logger: logging.Logger, event: str,
              _level: int = logging.INFO, **fields: Any) -> None:
    """Log one structured ``event key=value ...`` line.

    ``_level`` defaults to INFO (the harness's narration level); pass
    ``logging.WARNING`` for events that should surface even under the
    default ``REPRO_LOG`` setting — evicted store entries, retried cells,
    quarantined failures.
    """
    if not logger.isEnabledFor(_level):
        return
    rendered = " ".join(f"{key}={fields[key]}" for key in fields)
    logger.log(_level, "%s %s" % (event, rendered) if rendered else event)
