"""The cycle-level event tracer.

Design goals, in order:

1. **Zero cost when disabled.**  The hot loop
   (:meth:`~repro.cpu.core.OutOfOrderCore.run_packed`) checks the
   module-level active tracer exactly once per call and runs its unmodified
   zero-allocation body when none is installed; the memory-side hook points
   are *instance-attribute* method wrappers installed by
   :meth:`Tracer.attach`, so an untraced cache/bus/MMU instance executes
   the plain class methods with no guard at all.  The perf gate
   (``benchmarks/bench_hotpath.py --check-telemetry``) enforces this.
2. **Deterministic.**  Events are stamped with simulated cycles (never
   wall-clock) and appended in execution order, so a seed-pinned run
   produces a byte-identical JSONL stream across runs, hosts and worker
   counts.
3. **Viewable.**  :meth:`Tracer.write_chrome` exports Chrome trace-event
   JSON: open the file at https://ui.perfetto.dev (or ``chrome://tracing``)
   to see per-core pipeline activity with cache/coherence/filter events
   overlaid as instants.

Typical use goes through the facade —
``repro.api.simulate(benchmark, trace="run.jsonl")`` — but the layer is
usable directly::

    from repro.telemetry import Tracer, tracing

    tracer = Tracer()
    tracer.attach(system)          # instrument caches, bus, filters, MMUs
    with tracing(tracer):          # pipeline hook points become live
        simulator.run(workload)
    tracer.write_jsonl("run.jsonl")
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, IO, Iterator, List, Optional, Tuple, Union

from repro.telemetry.events import TraceEvent

# The module-level no-op guard.  ``active_tracer()`` is the only thing the
# pipeline hot path ever consults; it returns None in the common case and
# the hook points fall straight through.
_ACTIVE: Optional["Tracer"] = None


def active_tracer() -> Optional["Tracer"]:
    """The tracer pipeline hook points emit to, or None (the default)."""
    return _ACTIVE


def activate(tracer: "Tracer") -> None:
    """Install ``tracer`` as the active tracer (process-wide)."""
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE is not tracer:
        raise RuntimeError("another tracer is already active; "
                           "deactivate it first")
    _ACTIVE = tracer


def deactivate() -> None:
    """Remove the active tracer; hook points become no-ops again."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def tracing(tracer: Optional["Tracer"]) -> Iterator[Optional["Tracer"]]:
    """Activate ``tracer`` for the duration of the block.

    ``tracing(None)`` is a no-op context, so callers can thread an optional
    tracer through without branching.
    """
    if tracer is None:
        yield None
        return
    activate(tracer)
    try:
        yield tracer
    finally:
        deactivate()


class Tracer:
    """Collects :class:`TraceEvent` records from the opt-in hook points.

    ``categories`` restricts collection to a subset of event categories
    (e.g. ``{"pipeline", "coherence"}``); the default records everything.

    :attr:`now` is the tracer's cycle cursor: the pipeline hook points keep
    it at the cycle currently being simulated, so memory-side wrappers
    whose underlying method takes no timestamp (``record_hit``/``miss``)
    still stamp their events with the right simulated cycle.
    """

    def __init__(self, categories: Optional[Any] = None) -> None:
        self.events: List[TraceEvent] = []
        self.now = 0
        self._categories = (frozenset(categories)
                            if categories is not None else None)
        #: Per-core registry scheme names, recorded by :meth:`attach`.
        self.core_schemes: Dict[int, str] = {}

    # -- collection -----------------------------------------------------------
    def emit(self, category: str, name: str, cycle: Optional[int] = None,
             core: Optional[int] = None, address: Optional[int] = None,
             pc: Optional[int] = None, **detail: Any) -> None:
        """Record one event; ``cycle=None`` stamps with :attr:`now`."""
        if self._categories is not None and category not in self._categories:
            return
        self.events.append(TraceEvent(
            cycle=self.now if cycle is None else cycle,
            category=category, name=name, core=core, address=address,
            pc=pc, detail=detail))

    def __len__(self) -> int:
        return len(self.events)

    def counts(self) -> Dict[Tuple[str, str], int]:
        """Event counts keyed by ``(category, name)``."""
        totals: Dict[Tuple[str, str], int] = {}
        for event in self.events:
            key = (event.category, event.name)
            totals[key] = totals.get(key, 0) + 1
        return totals

    def clear(self) -> None:
        self.events.clear()
        self.now = 0

    # -- instrumentation ------------------------------------------------------
    def attach(self, system: Any) -> None:
        """Instrument a :class:`~repro.sim.system.SimulatedSystem`.

        Walks the shared hierarchy (per-core L1s, private L2s, the shared
        LLC and the coherence bus) and every scheme frontend (filter
        caches, MMUs) and installs the instance-level trace wrappers.
        Event records carry registry scheme names (``muontrap``,
        ``invisispec-spectre``, ...), never enum reprs.
        """
        config = system.config
        self.core_schemes = {
            core_id: config.core_config(core_id).scheme
            for core_id in range(config.num_cores)}
        for core_id in sorted(self.core_schemes):
            self.emit("meta", "core_scheme", cycle=0, core=core_id,
                      scheme=self.core_schemes[core_id])
        hierarchy = getattr(system, "hierarchy", None)
        if hierarchy is not None:
            self._attach_hierarchy(hierarchy, config.num_cores)
        memory = getattr(system, "memory_system", None)
        frontends = getattr(memory, "scheme_frontends", None)
        if frontends:             # heterogeneous composite
            subsystems = [frontends[name] for name in sorted(frontends)]
        elif memory is not None:
            subsystems = [memory]
        else:
            subsystems = []
        for subsystem in subsystems:
            self._attach_frontend(subsystem)

    def _attach_hierarchy(self, hierarchy: Any, num_cores: int) -> None:
        hierarchy.l2.attach_tracer(self, "l2")
        hierarchy.bus.attach_tracer(self)
        for core_id in range(num_cores):
            hierarchy.l1d(core_id).attach_tracer(self, "l1d", core=core_id)
            hierarchy.l1i(core_id).attach_tracer(self, "l1i", core=core_id)
            private = hierarchy.private_l2(core_id)
            if private is not None:
                private.attach_tracer(self, "l2p", core=core_id)

    def _attach_frontend(self, frontend: Any) -> None:
        """Instrument one scheme frontend (filter caches, MMUs), duck-typed."""
        core_ids = list(getattr(frontend, "core_ids", []) or [])
        data_filter = getattr(frontend, "data_filter", None)
        inst_filter = getattr(frontend, "inst_filter", None)
        core_state = getattr(frontend, "core_state", None)
        states = getattr(frontend, "_cores", None)
        for core_id in core_ids:
            if callable(data_filter):
                unit = data_filter(core_id)
                if unit is not None:
                    unit.attach_tracer(self, "data_filter", core=core_id)
            if callable(inst_filter):
                unit = inst_filter(core_id)
                if unit is not None:
                    unit.attach_tracer(self, "inst_filter", core=core_id)
            state = (core_state(core_id) if callable(core_state)
                     else states.get(core_id) if isinstance(states, dict)
                     else None)
            for attribute, label in (("data_mmu", "dmmu"),
                                     ("inst_mmu", "immu")):
                mmu = getattr(state, attribute, None)
                if mmu is not None:
                    mmu.attach_tracer(self, label, core=core_id)

    # -- export -----------------------------------------------------------------
    def write_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write one JSON object per event; returns the event count.

        The output is deterministic (sorted keys, no wall-clock fields):
        a seed-pinned run produces a byte-identical file every time.
        """
        if hasattr(destination, "write"):
            for event in self.events:
                destination.write(event.to_json())
                destination.write("\n")
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                return self.write_jsonl(handle)
        return len(self.events)

    def write_chrome(self, destination: Union[str, IO[str]]) -> int:
        """Write Chrome trace-event JSON (Perfetto / ``chrome://tracing``).

        Pipeline ``commit`` events (which carry their issue cycle) become
        complete events — one slice per instruction from issue to commit —
        with one process (pid) per core; everything else becomes an
        instant event on a per-category track.  Timestamps are simulated
        cycles presented as microseconds, so a 100-cycle load shows as a
        100 "us" slice.
        """
        trace_events: List[Dict[str, Any]] = []
        for event in self.events:
            pid = event.core if event.core is not None else 0
            args = dict(event.detail)
            if event.address is not None:
                args["addr"] = hex(event.address)
            if event.pc is not None:
                args["pc"] = hex(event.pc)
            if (event.category == "pipeline" and event.name == "commit"
                    and "issue" in event.detail):
                issue = event.detail["issue"]
                trace_events.append({
                    "name": event.detail.get("kind", "op"),
                    "cat": event.category, "ph": "X",
                    "ts": issue, "dur": max(0, event.cycle - issue),
                    "pid": pid, "tid": "pipeline", "args": args})
            else:
                trace_events.append({
                    "name": event.name, "cat": event.category, "ph": "i",
                    "ts": event.cycle, "s": "t",
                    "pid": pid, "tid": event.category, "args": args})
        payload = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
        if hasattr(destination, "write"):
            json.dump(payload, destination, sort_keys=True,
                      separators=(",", ":"))
        else:
            with open(destination, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True,
                          separators=(",", ":"))
        return len(trace_events)
