"""Typed trace-event records.

One :class:`TraceEvent` describes one thing that happened at one simulated
cycle: a pipeline issue/commit/squash, a cache hit/miss/fill/evict, a
coherence transition, a filter-cache install/invalidate, a TLB walk.  The
record is deliberately flat — category + name + the handful of identifiers
every consumer needs (cycle, core, address, pc) plus an open ``detail``
mapping for event-specific fields — so the export formats (JSON lines,
Chrome trace-event JSON) are a direct serialisation with no schema layer
in between.

Timestamps are simulated cycles, never wall-clock, which is what makes a
seed-pinned trace byte-identical across runs, hosts and worker counts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: The event categories the built-in hook points emit.  A category is just
#: a string; the tuple exists for documentation and for category filters.
CATEGORIES = ("pipeline", "cache", "coherence", "filter", "tlb", "meta")


@dataclass(slots=True)
class TraceEvent:
    """One simulated event.

    ``category`` groups events by subsystem (``pipeline``, ``cache``,
    ``coherence``, ``filter``, ``tlb``, ``meta``); ``name`` says what
    happened (``issue``, ``hit``, ``snoop``, ...).  ``core``, ``address``
    and ``pc`` are optional identifiers; anything else lives in ``detail``.
    """

    cycle: int
    category: str
    name: str
    core: Optional[int] = None
    address: Optional[int] = None
    pc: Optional[int] = None
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict form; ``None`` identifiers are omitted."""
        record: Dict[str, Any] = {
            "cycle": self.cycle,
            "cat": self.category,
            "name": self.name,
        }
        if self.core is not None:
            record["core"] = self.core
        if self.address is not None:
            record["addr"] = self.address
        if self.pc is not None:
            record["pc"] = self.pc
        if self.detail:
            record.update(self.detail)
        return record

    def to_json(self) -> str:
        """One deterministic JSON line (sorted keys, no whitespace)."""
        return json.dumps(self.as_dict(), sort_keys=True,
                          separators=(",", ":"))
