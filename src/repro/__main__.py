"""``python -m repro``: the campaign command line.

Subcommands:

* ``run``    — execute a benchmark suite × protection-scheme matrix on a
  worker pool, persisting results to the store so re-runs are incremental;
* ``report`` — render the table (text / markdown / CSV) for a matrix,
  executing only the cells the store does not already hold;
* ``clean``  — empty the result store;
* ``suites`` — list the known benchmark suites;
* ``machines`` — list the heterogeneous machine presets;
* ``schemes`` — list the registered protection schemes and their
  capability flags (including schemes registered at runtime through
  :func:`repro.schemes.register_scheme`);
* ``trace``  — run one benchmark instrumented and write its cycle-level
  event trace (JSONL, optionally Chrome/Perfetto JSON) and periodic
  metrics snapshots (CSV);
* ``serve``  — run the simulation service: an HTTP server exposing
  simulate / compare / sweep (async job queue) over the same store
  (:mod:`repro.service`);
* ``version`` — package version, default engine and numpy availability
  (``--json`` for the machine-readable form behind ``GET /v1/health``);
* ``store``  — store administration: ``store migrate`` copies a result
  store between the JSON-directory and SQLite backends, verifying every
  entry's integrity digest.

Examples::

    python -m repro run --suite spec_int --mode muontrap
    python -m repro run --suite parsec --mode all --jobs 8
    python -m repro run --suite mixes --machine biglittle-muontrap \
        --machine asym-protect
    python -m repro run --suite mixes --machine-file my-machine.json
    python -m repro report --suite spec_int --mode muontrap --format csv
    python -m repro trace mcf --mode muontrap --chrome mcf.chrome.json
    python -m repro trace mcf --metrics-every 1000 --metrics-out mcf.csv
    python -m repro clean

Everything routes through the public facade (:mod:`repro.api`): ``--mode``
accepts any registered scheme name, ``--machine`` any preset, and
``--machine-file`` any machine description JSON
(:mod:`repro.common.machine`).

Environment: ``REPRO_INSTRUCTIONS`` (instructions per workload),
``REPRO_JOBS`` (worker count), ``REPRO_STORE`` (result-store directory),
``REPRO_STORE_BACKEND`` (``json`` / ``sqlite``), ``REPRO_LOG``
(structured-log level, e.g. ``INFO``), ``REPRO_PROGRESS`` (force the
live progress line on/off), ``REPRO_CELL_TIMEOUT`` /
``REPRO_MAX_RETRIES`` (supervision policy, see ``--cell-timeout`` /
``--max-retries``), ``REPRO_FAULTS`` (deterministic fault injection for
chaos testing), ``REPRO_API_KEYS`` / ``REPRO_RATE_LIMIT`` /
``REPRO_RATE_BURST`` (service authentication and rate limiting, see
``serve``).

Campaigns are fault tolerant: failed cells are retried, hung or killed
workers re-dispatched, and permanently failing cells quarantined (the
report annotates them FAILED).  Results persist as each cell completes,
so after Ctrl-C or a crash, re-running the same command resumes by
computing only the missing cells.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro import api
from repro.common.params import SystemConfig
from repro.harness.campaign import Campaign, DEFAULT_SEED
from repro.harness.report import Report
from repro.harness.store import (
    STORE_BACKENDS,
    migrate_store,
    open_store,
)
from repro.harness.suites import UnknownSuiteError, resolve_suites, suite_names
from repro.schemes import (
    available_schemes,
    figure_series_schemes,
    get_scheme,
)
from repro.telemetry.log import configure as configure_logging
from repro.telemetry.phases import PHASES, phase
from repro.workloads.mixes import get_machine, machine_names

DEFAULT_STORE = ".repro-results"


def _store_path(args: argparse.Namespace) -> str:
    return args.store or os.environ.get("REPRO_STORE") or DEFAULT_STORE


def _build_configs(modes: Sequence[str], machines: Sequence[str],
                   machine_files: Sequence[str],
                   engine: str = "vectorized") -> Dict[str, SystemConfig]:
    expanded: List[str] = []
    for mode in modes:
        if mode == "all":
            expanded.extend(spec.name for spec in figure_series_schemes())
        else:
            expanded.append(mode)
    configs: Dict[str, SystemConfig] = {}
    for mode in expanded:
        spec = get_scheme(mode)  # raises a clear ValueError when unknown
        configs[spec.display_name] = SystemConfig(mode=spec.name)
    for machine in machines:
        configs[machine] = get_machine(machine)
    for machine_file in machine_files:
        configs[Path(machine_file).stem] = api.resolve_machine(machine_file)
    if engine == "packed":
        configs = {label: config.with_vectorized(False)
                   for label, config in configs.items()}
    return configs


def _build_campaign(args: argparse.Namespace) -> Campaign:
    store = None if args.no_store else open_store(
        _store_path(args), backend=args.store_backend)
    return api.build_comparison(
        _build_configs(args.mode, args.machine, args.machine_file,
                       engine=args.engine),
        args.suite,
        baseline=api.DEFAULT_BASELINE,
        instructions=args.instructions,
        seed=args.seed,
        replicates=args.replicates,
        store=store,
        jobs=args.jobs,
        max_retries=args.max_retries,
        cell_timeout=args.cell_timeout,
    )


def _add_matrix_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--suite", action="append",
        help="suite or benchmark name (repeatable; default: spec_int). "
             f"Suites: {', '.join(suite_names())}")
    parser.add_argument(
        "--mode", action="append",
        help="protection scheme to evaluate against the unprotected "
             "baseline (repeatable; default: muontrap; 'all' = the five "
             "schemes of Figures 3 and 4; any scheme registered through "
             "repro.schemes is accepted — see 'python -m repro schemes')")
    parser.add_argument(
        "--machine", action="append", choices=machine_names(),
        help="heterogeneous machine preset to evaluate as a series "
             "(repeatable; big.LITTLE and asymmetric-protection "
             "configurations; co-run mixes get per-constituent tables)")
    parser.add_argument(
        "--machine-file", action="append",
        help="machine description JSON to evaluate as a series "
             "(repeatable; the format SystemConfig.to_dict() writes; "
             "the series is labelled with the file stem)")
    parser.add_argument(
        "--engine", default="vectorized",
        choices=["vectorized", "packed"],
        help="packed-trace execution engine (default: %(default)s; the "
             "engines are golden-tested bit-identical, so this only "
             "affects wall-clock time and never the results)")
    parser.add_argument("--instructions", type=int, default=None,
                        help="instructions per workload "
                             "(default: REPRO_INSTRUCTIONS or 8000)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="campaign base seed (default: %(default)s)")
    parser.add_argument("--replicates", type=int, default=1,
                        help="independent seeds per cell "
                             "(default: %(default)s)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes "
                             "(default: REPRO_JOBS or all cores)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="kill and re-dispatch any cell still running "
                             "after this many seconds (default: "
                             "REPRO_CELL_TIMEOUT or no timeout; parallel "
                             "runs only)")
    parser.add_argument("--max-retries", type=int, default=None,
                        metavar="N",
                        help="retries per failed cell before it is "
                             "quarantined and reported FAILED (default: "
                             "REPRO_MAX_RETRIES or 2)")
    parser.add_argument("--store", default=None,
                        help="result-store directory "
                             f"(default: REPRO_STORE or {DEFAULT_STORE})")
    parser.add_argument("--store-backend", default=None,
                        choices=STORE_BACKENDS,
                        help="result-store backend (default: "
                             "REPRO_STORE_BACKEND, else auto-detected "
                             "from the store layout, else json)")
    parser.add_argument("--no-store", action="store_true",
                        help="do not read or write the persistent store")
    parser.add_argument("--format", default="text",
                        choices=["text", "markdown", "csv"],
                        help="report format (default: %(default)s)")


def _normalise_matrix_defaults(args: argparse.Namespace) -> None:
    args.suite = args.suite or ["spec_int"]
    args.machine = args.machine or []
    args.machine_file = args.machine_file or []
    # With only machine presets / files requested, don't drag the default
    # homogeneous scheme into the matrix.
    if not args.mode and not args.machine and not args.machine_file:
        args.mode = ["muontrap"]
    args.mode = args.mode or []


def _render(campaign: Campaign, result, fmt: str) -> str:
    title = ("Normalised execution time (lower is better), "
             f"{len(campaign.benchmarks)} benchmarks × "
             f"{len(campaign.configs)} schemes")
    rendered = Report.from_campaign(result, title=title).render(fmt)
    if result.has_corun_results and fmt != "csv":
        # Mix-aware view: each co-run mix split into its constituents,
        # attributed per core and normalised per member.  CSV output stays
        # a single parseable table; use text/markdown for the split view.
        constituents = Report.from_campaign_constituents(
            result, title="Per-constituent normalised execution time "
                          "(co-run mixes split per member)")
        rendered += "\n\n" + constituents.render(fmt)
    return rendered


def _run_profiled(campaign: Campaign):
    """Run the campaign under cProfile and print the top-25 hot spots.

    Profiling forces ``jobs=1``: the interesting work otherwise happens in
    forked pool workers the profiler cannot see.  (This also means the
    phase timers printed afterwards account for every cell — phases timed
    inside pool workers never reach this process's timers.)
    """
    import cProfile
    import pstats

    campaign.jobs = 1
    profiler = cProfile.Profile()
    profiler.enable()
    result = campaign.run()
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stderr)
    stats.sort_stats("cumulative").print_stats(25)
    return result


def _print_failures(result) -> None:
    """One line per quarantined cell, after the table (stderr)."""
    if not result.failures:
        return
    print(f"\n{len(result.failures)} cell(s) quarantined after exhausting "
          f"retries:", file=sys.stderr)
    for failure in result.failures:
        print(f"  {failure.benchmark}/{failure.label} seed {failure.seed}: "
              f"{failure.error} ({failure.attempts} attempts, "
              f"{failure.seconds:.1f}s)", file=sys.stderr)


def _handle_interrupt(campaign: Campaign, fmt: str) -> int:
    """Ctrl-C / SIGTERM: partial report plus a resume hint, exit 130."""
    partial = campaign.partial_result()
    cells = {spec.key() for spec in campaign.cells()}
    completed = len(partial.runs)
    print(f"\ninterrupted: {completed}/{len(cells)} unique cells completed",
          file=sys.stderr)
    if completed:
        print(_render(campaign, partial, fmt))
    if campaign.store is not None:
        print(f"completed cells are persisted in {campaign.store.root}; "
              f"re-run the same command to resume from them",
              file=sys.stderr)
    else:
        print("run again with a result store (--store/REPRO_STORE) to make "
              "interrupted campaigns resumable", file=sys.stderr)
    return 130


def cmd_run(args: argparse.Namespace) -> int:
    _normalise_matrix_defaults(args)
    campaign = _build_campaign(args)
    try:
        if args.profile:
            PHASES.reset()
            result = _run_profiled(campaign)
        else:
            result = campaign.run()
    except KeyboardInterrupt:
        return _handle_interrupt(campaign, args.format)
    stats = result.stats
    print(f"benchmarks: {', '.join(campaign.benchmarks)}")
    print(f"schemes:    {', '.join(campaign.configs)} "
          f"(baseline: {campaign.baseline_label})")
    print(f"cells:      {stats.total} ({stats.summary()})")
    if campaign.store is not None:
        print(f"store:      {campaign.store.root}")
    print()
    with phase("report"):
        rendered = _render(campaign, result, args.format)
    print(rendered)
    _print_failures(result)
    if args.profile:
        print(f"\nphase timers:\n{PHASES.report()}", file=sys.stderr)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    _normalise_matrix_defaults(args)
    campaign = _build_campaign(args)
    try:
        result = campaign.run()
    except KeyboardInterrupt:
        return _handle_interrupt(campaign, args.format)
    print(_render(campaign, result, args.format))
    _print_failures(result)
    return 0


def cmd_clean(args: argparse.Namespace) -> int:
    store = open_store(_store_path(args), backend=args.store_backend)
    removed = store.clear()
    print(f"removed {removed} cached results from {store.root}")
    return 0


def _print_json(payload) -> None:
    """Canonical JSON on stdout — the same bytes the service would send."""
    from repro.service.serialize import canonical_json
    sys.stdout.buffer.write(canonical_json(payload) + b"\n")
    sys.stdout.buffer.flush()


def cmd_suites(args: argparse.Namespace) -> int:
    if args.json:
        from repro.service.serialize import suites_payload
        _print_json(suites_payload())
        return 0
    for name in suite_names():
        members = resolve_suites([name])
        print(f"{name} ({len(members)}): {', '.join(members)}")
    return 0


def cmd_schemes(args: argparse.Namespace) -> int:
    """List the registered protection schemes with their capabilities."""
    if args.json:
        from repro.service.serialize import schemes_payload
        _print_json(schemes_payload())
        return 0
    for spec in available_schemes():
        flags = [name.replace("_", "-")
                 for name, enabled in spec.capabilities().items() if enabled]
        origin = "builtin" if spec.builtin else "registered"
        print(f"{spec.name} ({spec.display_name}) [{origin}]: "
              f"{', '.join(flags) if flags else 'no capability flags'}")
        if spec.description:
            print(f"    {spec.description}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one benchmark instrumented and write its telemetry artefacts."""
    trace_path = args.trace or f"{args.benchmark}-{args.mode}.trace.jsonl"
    outcome = api.simulate(
        args.benchmark, args.mode, seed=args.seed,
        instructions=args.instructions, warmup_fraction=args.warmup,
        collect_stats=True, trace=trace_path, chrome_trace=args.chrome,
        metrics_every=args.metrics_every)
    tracer = outcome.tracer
    print(f"benchmark:  {outcome.benchmark}")
    print(f"machine:    {outcome.label} (seed {outcome.seed})")
    print(f"cycles:     {outcome.cycles} ({outcome.instructions} "
          f"instructions, IPC {outcome.ipc:.2f})")
    print(f"events:     {len(tracer)}")
    for (category, name), count in sorted(tracer.counts().items()):
        print(f"    {category:<10s} {name:<28s} {count:>8d}")
    print(f"trace:      {outcome.trace_path} (JSONL, one event per line)")
    if outcome.chrome_path is not None:
        print(f"chrome:     {outcome.chrome_path} "
              f"(open at https://ui.perfetto.dev)")
    if outcome.timeseries is not None:
        samples = len(outcome.timeseries)
        columns = len(outcome.timeseries.columns)
        if args.metrics_out:
            outcome.timeseries.to_csv(args.metrics_out)
            print(f"metrics:    {args.metrics_out} "
                  f"({samples} samples × {columns} columns)")
        else:
            print(f"metrics:    {samples} samples × {columns} columns "
                  f"collected (write with --metrics-out FILE)")
    return 0


def cmd_machines(args: argparse.Namespace) -> int:
    if args.json:
        from repro.service.serialize import machines_payload
        _print_json(machines_payload())
        return 0
    for name in machine_names():
        config = get_machine(name)
        cores = ", ".join(
            f"core{index}: {core.scheme} "
            f"({core.pipeline.width}-wide, "
            f"{core.l1d.size_bytes // 1024} KiB L1d)"
            for index, core in enumerate(config.core_configs()))
        flags = ""
        if any(core.protection.insecure_scoped_invalidate
               for core in config.core_configs()):
            flags = " [insecure scoped-invalidate ablation]"
        print(f"{name} ({config.num_cores} cores){flags}: {cores}")
    return 0


def cmd_version(args: argparse.Namespace) -> int:
    """Package / capability facts (the CLI face of ``GET /v1/health``)."""
    from repro.service.serialize import version_payload
    payload = version_payload()
    if args.json:
        _print_json(payload)
        return 0
    print(f"repro {payload['version']}")
    print(f"default engine:  {payload['default_engine']}")
    numpy_state = ("available" if payload["numpy"]
                   else "unavailable (packed engine fallback)")
    print(f"numpy:           {numpy_state}")
    print(f"store backends:  {', '.join(payload['store_backends'])}")
    print(f"schemes:         {payload['schemes']} registered")
    print(f"suites:          {payload['suites']} named")
    return 0


def cmd_store_migrate(args: argparse.Namespace) -> int:
    """Copy a result store between backends, verifying every digest."""
    source = open_store(args.source, backend=args.source_backend)
    dest = open_store(args.dest, backend=args.dest_backend)
    if source.describe() == dest.describe():
        print(f"error: source and destination are the same store "
              f"({source.describe()})", file=sys.stderr)
        return 2
    copied, skipped = migrate_store(source, dest)
    print(f"migrated {copied} entries: {source.describe()} -> "
          f"{dest.describe()}")
    if skipped:
        print(f"skipped {skipped} entries that failed integrity "
              f"verification (corrupt or stale-version)", file=sys.stderr)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service until SIGTERM/SIGINT, then drain."""
    from repro.service import (
        ApiKeyAuth,
        RateLimiter,
        ReproServer,
        ServiceConfig,
    )
    store = None if args.no_store else open_store(
        _store_path(args), backend=args.store_backend)
    auth = ApiKeyAuth.from_env()
    config = ServiceConfig(
        host=args.host, port=args.port, store=store,
        jobs=args.jobs if args.jobs is not None else 1, auth=auth,
        limiter=RateLimiter.from_env(),
        queue_workers=args.queue_workers)
    server = ReproServer(config)

    # Serve on a background thread and park the main thread on an event:
    # signal handlers only fire on the main thread, so this is the shape
    # that makes SIGTERM-then-drain work.
    stop = threading.Event()

    def _request_stop(signum, frame):  # noqa: ARG001 — signal API
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    server.start()
    print(f"serving on {server.url} "
          f"(auth {'on' if auth.enabled else 'off'}, "
          f"store {store.describe() if store is not None else 'none'})",
          flush=True)
    stop.wait()
    print("shutting down: draining in-flight jobs...", file=sys.stderr)
    drained = server.shutdown(drain=True, timeout=args.drain_timeout)
    if not drained:
        print(f"warning: jobs still running after {args.drain_timeout}s "
              f"drain timeout", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="MuonTrap reproduction campaign harness")
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="execute a suite × scheme matrix in parallel")
    _add_matrix_arguments(run_parser)
    run_parser.add_argument(
        "--profile", action="store_true",
        help="run under cProfile (forces --jobs 1) and print the top-25 "
             "functions by cumulative time to stderr")
    run_parser.set_defaults(func=cmd_run)

    report_parser = subparsers.add_parser(
        "report", help="render the result table for a matrix")
    _add_matrix_arguments(report_parser)
    report_parser.set_defaults(func=cmd_report)

    clean_parser = subparsers.add_parser(
        "clean", help="empty the result store")
    clean_parser.add_argument("--store", default=None,
                              help="result-store directory "
                                   f"(default: REPRO_STORE or "
                                   f"{DEFAULT_STORE})")
    clean_parser.add_argument("--store-backend", default=None,
                              choices=STORE_BACKENDS,
                              help="result-store backend (default: "
                                   "REPRO_STORE_BACKEND or auto-detect)")
    clean_parser.set_defaults(func=cmd_clean)

    suites_parser = subparsers.add_parser(
        "suites", help="list the known benchmark suites")
    suites_parser.add_argument("--json", action="store_true",
                               help="canonical JSON (the same payload "
                                    "GET /v1/suites serves)")
    suites_parser.set_defaults(func=cmd_suites)

    machines_parser = subparsers.add_parser(
        "machines", help="list the heterogeneous machine presets")
    machines_parser.add_argument("--json", action="store_true",
                                 help="canonical JSON (the same payload "
                                      "GET /v1/machines serves)")
    machines_parser.set_defaults(func=cmd_machines)

    schemes_parser = subparsers.add_parser(
        "schemes", help="list the registered protection schemes and "
                        "their capability flags")
    schemes_parser.add_argument("--json", action="store_true",
                                help="canonical JSON (the same payload "
                                     "GET /v1/schemes serves)")
    schemes_parser.set_defaults(func=cmd_schemes)

    version_parser = subparsers.add_parser(
        "version", help="package version, default engine and numpy "
                        "availability")
    version_parser.add_argument("--json", action="store_true",
                                help="canonical JSON (the same payload "
                                     "GET /v1/health serves)")
    version_parser.set_defaults(func=cmd_version)

    store_parser = subparsers.add_parser(
        "store", help="result-store administration")
    store_subparsers = store_parser.add_subparsers(dest="store_command",
                                                   required=True)
    migrate_parser = store_subparsers.add_parser(
        "migrate", help="copy a result store between backends, "
                        "verifying every entry's integrity digest")
    migrate_parser.add_argument(
        "source", help="source store (directory, or .sqlite3 file)")
    migrate_parser.add_argument(
        "dest", help="destination store (directory, or .sqlite3 file)")
    migrate_parser.add_argument(
        "--source-backend", default=None, choices=STORE_BACKENDS,
        help="source backend (default: auto-detect from layout)")
    migrate_parser.add_argument(
        "--dest-backend", default=None, choices=STORE_BACKENDS,
        help="destination backend (default: auto-detect, else json)")
    migrate_parser.set_defaults(func=cmd_store_migrate)

    serve_parser = subparsers.add_parser(
        "serve", help="run the simulation service (HTTP, stdlib only): "
                      "simulate / compare / sweep over a shared store")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default: %(default)s)")
    serve_parser.add_argument("--port", type=int, default=8734,
                              help="bind port; 0 picks a free port "
                                   "(default: %(default)s)")
    serve_parser.add_argument("--store", default=None,
                              help="result-store path "
                                   f"(default: REPRO_STORE or "
                                   f"{DEFAULT_STORE})")
    serve_parser.add_argument("--store-backend", default=None,
                              choices=STORE_BACKENDS,
                              help="store backend; sqlite is built for "
                                   "concurrent access (default: "
                                   "REPRO_STORE_BACKEND or auto-detect)")
    serve_parser.add_argument("--no-store", action="store_true",
                              help="serve without a persistent store "
                                   "(every request recomputes)")
    serve_parser.add_argument("--jobs", type=int, default=None,
                              help="campaign worker processes per job "
                                   "(default: 1, in-process)")
    serve_parser.add_argument("--queue-workers", type=int, default=1,
                              help="concurrent async jobs (default: "
                                   "%(default)s; 1 serialises jobs, the "
                                   "strongest exactly-once setting)")
    serve_parser.add_argument("--drain-timeout", type=float, default=300.0,
                              metavar="SECONDS",
                              help="how long shutdown waits for in-flight "
                                   "jobs (default: %(default)s)")
    serve_parser.set_defaults(func=cmd_serve)

    trace_parser = subparsers.add_parser(
        "trace", help="run one benchmark instrumented and write its "
                      "cycle-level event trace")
    trace_parser.add_argument(
        "benchmark", help="benchmark or mix name (see 'suites')")
    trace_parser.add_argument(
        "--mode", default="muontrap",
        help="scheme, machine preset or machine JSON to run under "
             "(default: %(default)s)")
    trace_parser.add_argument(
        "--instructions", type=int, default=None,
        help="instructions to simulate "
             "(default: REPRO_INSTRUCTIONS or 8000)")
    trace_parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                              help="workload seed (default: %(default)s)")
    trace_parser.add_argument(
        "--warmup", type=float, default=0.0,
        help="warm-up fraction excluded from statistics "
             "(default: %(default)s — traces usually want the cold start)")
    trace_parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="JSONL output path "
             "(default: <benchmark>-<mode>.trace.jsonl)")
    trace_parser.add_argument(
        "--chrome", default=None, metavar="FILE",
        help="also write Chrome trace-event JSON, viewable at "
             "https://ui.perfetto.dev")
    trace_parser.add_argument(
        "--metrics-every", type=int, default=None, metavar="N",
        help="snapshot the statistics tree every N cycles")
    trace_parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the metrics time series as CSV "
             "(requires --metrics-every)")
    trace_parser.set_defaults(func=cmd_trace)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    configure_logging()
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (UnknownSuiteError, ValueError) as error:
        # Configuration mistakes (unknown suite, malformed REPRO_* value)
        # deserve a one-line message, not a traceback.
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
