"""repro: a reproduction of MuonTrap (Ainsworth & Jones, ISCA 2020).

The package is organised around the paper's structure:

* :mod:`repro.core` — the contribution: speculative filter caches and the
  MuonTrap memory system;
* :mod:`repro.caches`, :mod:`repro.coherence`, :mod:`repro.prefetch`,
  :mod:`repro.tlb`, :mod:`repro.memory`, :mod:`repro.cpu` — the simulated
  substrate (cache hierarchy, MESI coherence, prefetchers, TLBs, DRAM and an
  out-of-order core model);
* :mod:`repro.baselines` — the systems MuonTrap is compared against
  (unprotected, insecure L0, InvisiSpec, STT);
* :mod:`repro.attacks` — the six Spectre-style attacks of the paper;
* :mod:`repro.workloads` — synthetic SPEC CPU2006 / Parsec workload models;
* :mod:`repro.sim` and :mod:`repro.experiments` — the experiment harness
  that regenerates every figure of the evaluation;
* :mod:`repro.harness` — the campaign layer: named benchmark suites,
  parallel execution of suite × configuration × seed matrices, a
  persistent result store and report rendering, exposed on the command
  line as ``python -m repro``;
* :mod:`repro.api` — the stable public facade (``simulate`` /
  ``compare`` / ``sweep``) everything above routes through;
* :mod:`repro.schemes` — the pluggable protection-scheme registry
  (:class:`~repro.schemes.SchemeSpec`) the simulator dispatches on.
"""

from repro.common.params import (
    CoreConfig,
    ProtectionConfig,
    ProtectionMode,
    SystemConfig,
    default_system_config,
    parsec_system_config,
    spec_system_config,
)

__version__ = "1.0.0"

__all__ = [
    "CoreConfig",
    "ProtectionConfig",
    "ProtectionMode",
    "SystemConfig",
    "api",
    "default_system_config",
    "parsec_system_config",
    "schemes",
    "spec_system_config",
    "__version__",
]


def __getattr__(name: str):
    # Lazy submodule access: ``repro.api`` / ``repro.schemes`` import the
    # simulation stack, which plain ``import repro`` should not pay for.
    if name in ("api", "schemes"):
        import importlib
        return importlib.import_module(f"repro.{name}")
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
