"""MESI coherence states.

Non-speculative caches (L1, L2) use the full MESI protocol.  A MuonTrap
speculative filter cache only ever holds lines in Shared or Invalid, plus the
``SE`` pseudo-state of section 4.5: the line behaves as Shared for the
protocol but records that an unprotected system would have installed it in
Exclusive, so that an asynchronous upgrade can be launched when the access
commits.  ``SE`` is represented by a flag on the filter-cache line rather
than a protocol state, keeping the functional protocol unchanged, exactly as
the paper describes.
"""

from __future__ import annotations

import enum


class CoherenceState(enum.Enum):
    """The MESI states used by non-speculative caches."""

    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    @property
    def is_valid(self) -> bool:
        return self is not CoherenceState.INVALID

    @property
    def can_read(self) -> bool:
        return self in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE,
                        CoherenceState.SHARED)

    @property
    def can_write(self) -> bool:
        return self is CoherenceState.MODIFIED

    @property
    def is_private(self) -> bool:
        """True for states that imply no other cache holds the line."""
        return self in (CoherenceState.MODIFIED, CoherenceState.EXCLUSIVE)


# Short aliases used throughout the coherence and cache code.
M = CoherenceState.MODIFIED
E = CoherenceState.EXCLUSIVE
S = CoherenceState.SHARED
I = CoherenceState.INVALID  # noqa: E741 - deliberate, mirrors protocol notation
