"""A snoop filter (sharer-tracking directory) for the shared L2.

The paper notes that MuonTrap's filter-cache invalidation broadcast must be
timing-invariant even when a snoop filter is present, and that the broadcast
only needs to reach cores below a shared cache that could hold the line.
This module provides the sharer-tracking structure used to scope those
multicasts and to keep snoop traffic statistics.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Set

from repro.common.statistics import StatGroup


class SnoopFilter:
    """Tracks which cores may hold each line in a private cache."""

    def __init__(self, stats: Optional[StatGroup] = None,
                 max_entries: int = 64 * 1024) -> None:
        self.max_entries = max_entries
        self._sharers: Dict[int, Set[int]] = defaultdict(set)
        stats = stats or StatGroup("snoop_filter")
        self.stats = stats
        self._lookups = stats.counter("lookups")
        self._filtered = stats.counter("filtered_snoops")
        self._evictions = stats.counter("entry_evictions")

    def record_fill(self, core_id: int, line_address: int) -> None:
        """A core obtained a copy of the line."""
        if (line_address not in self._sharers
                and len(self._sharers) >= self.max_entries):
            # Capacity eviction: drop an arbitrary (oldest-inserted) entry.
            victim = next(iter(self._sharers))
            del self._sharers[victim]
            self._evictions.increment()
        self._sharers[line_address].add(core_id)

    def record_eviction(self, core_id: int, line_address: int) -> None:
        sharers = self._sharers.get(line_address)
        if sharers is None:
            return
        sharers.discard(core_id)
        if not sharers:
            del self._sharers[line_address]

    def sharers_of(self, line_address: int) -> Set[int]:
        self._lookups.increment()
        return set(self._sharers.get(line_address, set()))

    def needs_snoop(self, requester: int, line_address: int) -> bool:
        """True when someone other than the requester may hold the line."""
        others = self.sharers_of(line_address) - {requester}
        if not others:
            self._filtered.increment()
            return False
        return True

    def multicast_targets(self, requester: int, line_address: int) -> Set[int]:
        """Cores whose filter caches must receive an invalidation broadcast."""
        return self.sharers_of(line_address) - {requester}

    def __len__(self) -> int:
        return len(self._sharers)
