"""A snoop filter (sharer-tracking directory) for the shared LLC.

The paper notes that MuonTrap's filter-cache invalidation broadcast must be
timing-invariant even when a snoop filter is present, and that the broadcast
only needs to reach cores below a shared cache that could hold the line.
This module provides the sharer-tracking structure the coherence bus uses to
*skip* snoops of private caches that provably cannot hold a line, to scope
multicasts, and to keep snoop traffic statistics.

The directory is deliberately **conservative**: it records a core as a
potential sharer on every fill, but only removes it when the bus invalidates
every private cache of that core.  Silent (capacity) evictions inside a
private cache therefore leave the entry in place, so the tracked sharer set
is always a superset of the true holders — skipping a snoop when the set is
empty can never change what the snoop would have found.  If the directory
itself ever has to drop an entry for capacity, it marks itself *imprecise*
and the bus falls back to probing every cache, keeping results bit-identical
to a filterless bus.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Set

from repro.common.statistics import StatGroup


class SnoopFilter:
    """Tracks which cores may hold each line in a private cache."""

    def __init__(self, stats: Optional[StatGroup] = None,
                 max_entries: int = 64 * 1024) -> None:
        self.max_entries = max_entries
        self._sharers: Dict[int, Set[int]] = defaultdict(set)
        #: False once a capacity eviction has dropped an entry: from then on
        #: absence of an entry no longer proves absence of a copy, so the
        #: bus must stop trusting empty lookups.
        self.precise = True
        stats = stats or StatGroup("snoop_filter")
        self.stats = stats
        self._lookups = stats.counter("lookups")
        self._filtered = stats.counter("filtered_snoops")
        self._evictions = stats.counter("entry_evictions")

    def record_fill(self, core_id: int, line_address: int) -> None:
        """A core obtained a copy of the line."""
        if (line_address not in self._sharers
                and len(self._sharers) >= self.max_entries):
            # Capacity eviction: drop an arbitrary (oldest-inserted) entry.
            # The dropped line may still live in a private cache, so the
            # directory is no longer an over-approximation for it.
            victim = next(iter(self._sharers))
            del self._sharers[victim]
            self._evictions.increment()
            self.precise = False
        self._sharers[line_address].add(core_id)

    def record_eviction(self, core_id: int, line_address: int) -> None:
        """Every private cache of ``core_id`` lost its copy of the line."""
        sharers = self._sharers.get(line_address)
        if sharers is None:
            return
        sharers.discard(core_id)
        if not sharers:
            del self._sharers[line_address]

    def sharers_of(self, line_address: int) -> Set[int]:
        self._lookups.increment()
        return set(self._sharers.get(line_address, set()))

    def needs_snoop(self, requester: int, line_address: int) -> bool:
        """True when someone other than the requester may hold the line."""
        others = self.sharers_of(line_address) - {requester}
        if not others:
            self._filtered.increment()
            return False
        return True

    def multicast_targets(self, requester: int, line_address: int) -> Set[int]:
        """Cores whose filter caches must receive an invalidation broadcast."""
        return self.sharers_of(line_address) - {requester}

    @property
    def filtered_snoops(self) -> int:
        return self._filtered.value

    def __len__(self) -> int:
        return len(self._sharers)
