"""The snooping interconnect between private caches and the shared LLC.

The bus tracks which private (per-core) caches are registered — each core
contributes its L1 data cache and, in co-run topologies, its private unified
L2 — lets the coherence controller probe and downgrade them, and carries the
two kinds of broadcast MuonTrap adds: negative acknowledgements (NACKs) of
speculative requests that would disturb another core's private M/E line
(section 4.5, "reduced coherency speculation"), and filter-cache
invalidation broadcasts on exclusive upgrades (the cost measured in
Figure 7).

When a :class:`~repro.coherence.snoop_filter.SnoopFilter` is attached, the
bus consults it before probing: the directory is a conservative superset of
the true holders (see its module docstring), so an empty lookup proves the
other caches hold nothing and the probe — whose outcome would be empty — is
skipped.  The snoop *latency* is charged either way, so attaching the
filter never changes timing, only the amount of probing work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.coherence.snoop_filter import SnoopFilter
from repro.coherence.states import CoherenceState, I, S
from repro.common.statistics import StatGroup

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance, typing only
    from repro.caches.base_cache import SetAssociativeCache

# A filter-invalidation listener receives (line_address) and invalidates any
# copy its filter cache holds.  Registered per core by the MuonTrap memory
# system; other memory systems register nothing.
FilterInvalidationListener = Callable[[int], None]


@dataclass
class SnoopResult:
    """What snooping the other private caches found for one line."""

    dirty_owner: Optional[int] = None
    exclusive_owner: Optional[int] = None
    sharers: List[int] = field(default_factory=list)

    @property
    def has_private_owner(self) -> bool:
        return self.dirty_owner is not None or self.exclusive_owner is not None

    @property
    def any_copy(self) -> bool:
        return self.has_private_owner or bool(self.sharers)


class CoherenceBus:
    """Registry of private caches plus snoop/broadcast primitives."""

    def __init__(self, stats: Optional[StatGroup] = None,
                 snoop_latency: int = 8,
                 dirty_transfer_latency: int = 12,
                 snoop_filter: Optional[SnoopFilter] = None,
                 scoped_filter_invalidate: bool = False) -> None:
        self.snoop_latency = snoop_latency
        self.dirty_transfer_latency = dirty_transfer_latency
        self.snoop_filter = snoop_filter
        #: The insecure ablation of ProtectionConfig
        #: ``insecure_scoped_invalidate``: scope the filter-cache
        #: invalidation multicast by the directory instead of broadcasting.
        self.scoped_filter_invalidate = scoped_filter_invalidate
        self._private_caches: Dict[int, List["SetAssociativeCache"]] = {}
        self._filter_listeners: Dict[int, List[FilterInvalidationListener]] = {}
        #: Cores with at least one registered listener (hot-path lookups).
        self._filter_listener_cores: set = set()
        stats = stats or StatGroup("bus")
        self.stats = stats
        self._snoops = stats.counter("snoops")
        self._nacks = stats.counter("nacks", "speculative requests delayed")
        self._filter_broadcasts = stats.counter(
            "filter_invalidate_broadcasts",
            "exclusive upgrades that had to broadcast to filter caches")
        self._downgrades = stats.counter("downgrades")
        self._invalidations = stats.counter("invalidations")

    # -- registration -------------------------------------------------------
    def register_private_cache(self, core_id: int,
                               cache: "SetAssociativeCache") -> None:
        """Register one of a core's private caches (repeatable per core)."""
        self._private_caches.setdefault(core_id, []).append(cache)

    def register_filter_listener(self, core_id: int,
                                 listener: FilterInvalidationListener) -> None:
        self._filter_listeners.setdefault(core_id, []).append(listener)
        self._filter_listener_cores.add(core_id)

    def has_peer_filter_listeners(self, requester: int) -> bool:
        """True when another core's filter cache listens for invalidates.

        The invalidation multicast is a *fabric* property: any core's
        exclusive upgrade must reach every protected filter cache on the
        bus, regardless of the writer's own scheme — on a mixed machine an
        unprotected writer's store would otherwise leave a stale
        (secret-dependent) line in a MuonTrap peer's filter.  O(1): this
        sits on the per-store hot path.
        """
        cores = self._filter_listener_cores
        return len(cores) > 1 or (bool(cores) and requester not in cores)

    @property
    def core_ids(self) -> List[int]:
        return sorted(self._private_caches)

    def private_cache(self, core_id: int) -> "SetAssociativeCache":
        """The core's first-registered private cache (its L1 data cache)."""
        return self._private_caches[core_id][0]

    def private_caches(self, core_id: int) -> List["SetAssociativeCache"]:
        return self._private_caches[core_id]

    # -- snoop-filter bookkeeping --------------------------------------------
    def note_fill(self, core_id: int, line_address: int) -> None:
        """A private cache of ``core_id`` gained a copy of the line."""
        if self.snoop_filter is not None:
            self.snoop_filter.record_fill(core_id, line_address)

    # -- snooping -----------------------------------------------------------
    def snoop(self, requester: int, line_address: int) -> SnoopResult:
        """Find where (other than the requester) the line currently lives."""
        self._snoops.increment()
        result = SnoopResult()
        snoop_filter = self.snoop_filter
        if (snoop_filter is not None and snoop_filter.precise
                and not snoop_filter.needs_snoop(requester, line_address)):
            # The directory proves no other core holds the line; probing
            # every cache would find exactly this empty result.
            return result
        for core_id, caches in self._private_caches.items():
            if core_id == requester:
                continue
            strongest: Optional[CoherenceState] = None
            for cache in caches:
                line = cache.probe(line_address)
                if line is None or not line.valid:
                    continue
                state = line.state
                if state is CoherenceState.MODIFIED:
                    strongest = state
                    break
                if state is CoherenceState.EXCLUSIVE:
                    strongest = state
                elif strongest is None:
                    strongest = state
            if strongest is None:
                continue
            if strongest is CoherenceState.MODIFIED:
                result.dirty_owner = core_id
            elif strongest is CoherenceState.EXCLUSIVE:
                result.exclusive_owner = core_id
            else:
                result.sharers.append(core_id)
        return result

    def record_nack(self) -> None:
        self._nacks.increment()

    # -- state-changing broadcasts -------------------------------------------
    def downgrade_core(self, core_id: int, line_address: int,
                       to_state: CoherenceState = S) -> int:
        """Downgrade every private cache of one core; returns copies touched."""
        touched = 0
        for cache in self._private_caches.get(core_id, ()):
            if cache.downgrade(line_address, to_state) is not None:
                touched += 1
        if touched:
            if to_state is I:
                self._invalidations.increment()
            else:
                self._downgrades.increment()
        if to_state is I and self.snoop_filter is not None:
            # All of the core's private caches lost the line, so the
            # directory entry can be retired safely.
            self.snoop_filter.record_eviction(core_id, line_address)
        return touched

    def downgrade_others(self, requester: int, line_address: int,
                         to_state: CoherenceState = S) -> int:
        """Downgrade every other core's copies; returns cores touched."""
        touched = 0
        for core_id in self._private_caches:
            if core_id == requester:
                continue
            if self.downgrade_core(core_id, line_address, to_state):
                touched += 1
        return touched

    def invalidate_others(self, requester: int, line_address: int) -> int:
        return self.downgrade_others(requester, line_address, I)

    def filter_invalidate_scope_skips(self, requester: int,
                                      line_address: int) -> bool:
        """Whether the scoped ablation would skip the multicast *now*.

        Must be evaluated before the upgrade's ``invalidate_others`` runs:
        that call retires the peers' directory entries, so a later lookup
        would always see an empty sharer set and skip unconditionally.
        """
        return (self.scoped_filter_invalidate
                and self.snoop_filter is not None
                and self.snoop_filter.precise
                and not self.snoop_filter.needs_snoop(requester,
                                                      line_address))

    def broadcast_filter_invalidate(self, requester: int, line_address: int,
                                    scope_skip: Optional[bool] = None
                                    ) -> bool:
        """Invalidate the line in every other core's filter cache.

        Used on exclusive upgrades when the writer did not already hold the
        line privately (section 4.5); Figure 7 reports how often this is
        needed.  The broadcast is deliberately *not* scoped by the snoop
        filter: filter caches are invisible to the directory, and the paper
        requires the broadcast to be timing-invariant.

        The ``scoped_filter_invalidate`` ablation deliberately breaks that
        rule: when the (precise) directory proves no *non-speculative*
        cache of another core holds the line, the multicast is skipped
        entirely — cheaper, but a peer's speculatively filled filter line
        then survives the upgrade, which is exactly the stale-copy timing
        channel the paper's timing-invariance argument closes.

        Returns whether the multicast was actually performed (True even
        with zero listeners on the bus — the transaction still goes out,
        which is what Figure 7 counts); False only on the scoped skip.
        ``scope_skip`` carries the directory verdict captured *before* the
        upgrade's invalidations purged the sharer set (see
        :meth:`filter_invalidate_scope_skips`); when omitted the current
        directory state is consulted.
        """
        if scope_skip is None:
            scope_skip = self.filter_invalidate_scope_skips(requester,
                                                            line_address)
        if scope_skip:
            return False
        self._filter_broadcasts.increment()
        for core_id, listeners in self._filter_listeners.items():
            if core_id == requester:
                continue
            for listener in listeners:
                listener(line_address)
        return True

    # -- observability ---------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Emit coherence trace events (snoops, NACKs, downgrades,
        invalidations, filter-invalidate broadcasts) from this bus.

        Instance-attribute wrappers shadow the class methods, so an
        untraced bus pays nothing (the zero-cost-when-disabled contract of
        :mod:`repro.telemetry`).  Registered filter-invalidation listeners
        are re-wrapped in place: they were bound before tracing was
        attached, so the per-filter install-site wrappers never see
        broadcast-path invalidations.  Events are stamped with the
        tracer's cycle cursor (the bus methods carry no timestamp).
        """
        emit = tracer.emit
        inner_snoop = self.snoop
        inner_nack = self.record_nack
        inner_downgrade = self.downgrade_core
        inner_broadcast = self.broadcast_filter_invalidate

        def snoop(requester: int, line_address: int) -> SnoopResult:
            result = inner_snoop(requester, line_address)
            emit("coherence", "snoop", core=requester, address=line_address,
                 dirty_owner=result.dirty_owner,
                 exclusive_owner=result.exclusive_owner,
                 sharers=len(result.sharers))
            return result

        def record_nack() -> None:
            inner_nack()
            emit("coherence", "nack")

        def downgrade_core(core_id: int, line_address: int,
                           to_state: CoherenceState = S) -> int:
            touched = inner_downgrade(core_id, line_address, to_state)
            if touched:
                emit("coherence",
                     "invalidate" if to_state is I else "downgrade",
                     core=core_id, address=line_address,
                     state=to_state.name, copies=touched)
            return touched

        def broadcast_filter_invalidate(requester: int, line_address: int,
                                        scope_skip: Optional[bool] = None
                                        ) -> bool:
            performed = inner_broadcast(requester, line_address, scope_skip)
            if performed:
                emit("coherence", "filter_invalidate_broadcast",
                     core=requester, address=line_address)
            return performed

        def traced_listener(listener: FilterInvalidationListener,
                            core_id: int) -> FilterInvalidationListener:
            def invalidate(line_address: int):
                present = listener(line_address)
                if present:
                    emit("filter", "invalidate", core=core_id,
                         address=line_address, broadcast=True)
                return present
            return invalidate

        for core_id, listeners in self._filter_listeners.items():
            self._filter_listeners[core_id] = [
                traced_listener(listener, core_id) for listener in listeners]
        self.snoop = snoop
        self.record_nack = record_nack
        self.downgrade_core = downgrade_core
        self.broadcast_filter_invalidate = broadcast_filter_invalidate

    @property
    def nacks(self) -> int:
        return self._nacks.value

    @property
    def filter_broadcasts(self) -> int:
        return self._filter_broadcasts.value
