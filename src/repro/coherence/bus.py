"""The snooping interconnect between private caches and the shared L2.

The bus tracks which private (per-core) caches are registered, lets the
coherence controller probe and downgrade them, and carries the two kinds of
broadcast MuonTrap adds: negative acknowledgements (NACKs) of speculative
requests that would disturb another core's private M/E line (section 4.5,
"reduced coherency speculation"), and filter-cache invalidation broadcasts
on exclusive upgrades (the cost measured in Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.coherence.states import CoherenceState, I, S
from repro.common.statistics import StatGroup

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance, typing only
    from repro.caches.base_cache import SetAssociativeCache

# A filter-invalidation listener receives (line_address) and invalidates any
# copy its filter cache holds.  Registered per core by the MuonTrap memory
# system; other memory systems register nothing.
FilterInvalidationListener = Callable[[int], None]


@dataclass
class SnoopResult:
    """What snooping the other private caches found for one line."""

    dirty_owner: Optional[int] = None
    exclusive_owner: Optional[int] = None
    sharers: List[int] = field(default_factory=list)

    @property
    def has_private_owner(self) -> bool:
        return self.dirty_owner is not None or self.exclusive_owner is not None

    @property
    def any_copy(self) -> bool:
        return self.has_private_owner or bool(self.sharers)


class CoherenceBus:
    """Registry of private caches plus snoop/broadcast primitives."""

    def __init__(self, stats: Optional[StatGroup] = None,
                 snoop_latency: int = 8,
                 dirty_transfer_latency: int = 12) -> None:
        self.snoop_latency = snoop_latency
        self.dirty_transfer_latency = dirty_transfer_latency
        self._private_caches: Dict[int, "SetAssociativeCache"] = {}
        self._filter_listeners: Dict[int, List[FilterInvalidationListener]] = {}
        stats = stats or StatGroup("bus")
        self.stats = stats
        self._snoops = stats.counter("snoops")
        self._nacks = stats.counter("nacks", "speculative requests delayed")
        self._filter_broadcasts = stats.counter(
            "filter_invalidate_broadcasts",
            "exclusive upgrades that had to broadcast to filter caches")
        self._downgrades = stats.counter("downgrades")
        self._invalidations = stats.counter("invalidations")

    # -- registration -------------------------------------------------------
    def register_private_cache(self, core_id: int,
                               cache: "SetAssociativeCache") -> None:
        self._private_caches[core_id] = cache

    def register_filter_listener(self, core_id: int,
                                 listener: FilterInvalidationListener) -> None:
        self._filter_listeners.setdefault(core_id, []).append(listener)

    @property
    def core_ids(self) -> List[int]:
        return sorted(self._private_caches)

    def private_cache(self, core_id: int) -> "SetAssociativeCache":
        return self._private_caches[core_id]

    # -- snooping -----------------------------------------------------------
    def snoop(self, requester: int, line_address: int) -> SnoopResult:
        """Find where (other than the requester) the line currently lives."""
        self._snoops.increment()
        result = SnoopResult()
        for core_id, cache in self._private_caches.items():
            if core_id == requester:
                continue
            line = cache.probe(line_address)
            if line is None or not line.valid:
                continue
            if line.state is CoherenceState.MODIFIED:
                result.dirty_owner = core_id
            elif line.state is CoherenceState.EXCLUSIVE:
                result.exclusive_owner = core_id
            else:
                result.sharers.append(core_id)
        return result

    def record_nack(self) -> None:
        self._nacks.increment()

    # -- state-changing broadcasts -------------------------------------------
    def downgrade_others(self, requester: int, line_address: int,
                         to_state: CoherenceState = S) -> int:
        """Downgrade every other private copy; returns how many were touched."""
        touched = 0
        for core_id, cache in self._private_caches.items():
            if core_id == requester:
                continue
            if cache.downgrade(line_address, to_state) is not None:
                touched += 1
                if to_state is I:
                    self._invalidations.increment()
                else:
                    self._downgrades.increment()
        return touched

    def invalidate_others(self, requester: int, line_address: int) -> int:
        return self.downgrade_others(requester, line_address, I)

    def broadcast_filter_invalidate(self, requester: int,
                                    line_address: int) -> int:
        """Invalidate the line in every other core's filter cache.

        Used on exclusive upgrades when the writer did not already hold the
        line privately (section 4.5); Figure 7 reports how often this is
        needed.
        """
        self._filter_broadcasts.increment()
        notified = 0
        for core_id, listeners in self._filter_listeners.items():
            if core_id == requester:
                continue
            for listener in listeners:
                listener(line_address)
                notified += 1
        return notified

    @property
    def nacks(self) -> int:
        return self._nacks.value

    @property
    def filter_broadcasts(self) -> int:
        return self._filter_broadcasts.value
