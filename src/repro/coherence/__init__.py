"""MESI coherence: states, snooping bus, controller and snoop filter."""

from repro.coherence.bus import CoherenceBus, SnoopResult
from repro.coherence.protocol import AccessOutcome, CoherenceController
from repro.coherence.snoop_filter import SnoopFilter
from repro.coherence.states import CoherenceState, E, I, M, S

__all__ = [
    "AccessOutcome",
    "CoherenceBus",
    "CoherenceController",
    "CoherenceState",
    "E",
    "I",
    "M",
    "S",
    "SnoopFilter",
    "SnoopResult",
]
