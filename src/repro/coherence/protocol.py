"""The MESI coherence controller for the non-speculative hierarchy.

This module decides, for every load, store, instruction fetch and prefetch,
what the rest of the hierarchy has to do: which caches are snooped, which
lines are downgraded or invalidated, where the data comes from, what
coherence state the requester receives, and how long the whole transaction
takes.  The MuonTrap-specific behaviour (NACKing speculative requests that
would disturb another core's private M/E copy, and granting only Shared to
filter caches with an ``SE`` hint) is driven by flags on the request so the
same controller serves every protection mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.coherence.bus import CoherenceBus
from repro.coherence.states import CoherenceState, E, I, M, S
from repro.common.statistics import StatGroup
from repro.memory.main_memory import MainMemory

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance, typing only
    from repro.caches.base_cache import SetAssociativeCache


class MesiEvent(enum.Enum):
    """The events that drive one cache's MESI state machine."""

    LOCAL_READ = "local-read"     # this cache's core reads the line
    LOCAL_WRITE = "local-write"   # this cache's core writes the line
    REMOTE_READ = "remote-read"   # another core's read snoops this cache
    REMOTE_WRITE = "remote-write"  # another core's write/upgrade snoops it
    EVICT = "evict"               # the line is evicted or invalidated


#: The complete per-cache MESI transition table.  Every (state, event) pair
#: is present; the controller below realises these transitions across the
#: private caches, the shared LLC and memory, and the exhaustive test in
#: ``tests/coherence/test_protocol.py`` enumerates the table against the
#: invariants the protocol must keep (single writer, no stale readers).
#:
#: ``LOCAL_READ``/``LOCAL_WRITE`` from Invalid describe the state the
#: requester is *granted*; a read miss is granted Exclusive only when the
#: snoop (or snoop filter) proves no other copy exists, which the table
#: cannot see, so Invalid + LOCAL_READ conservatively maps to Shared and
#: the controller upgrades the grant to Exclusive when it may.
MESI_TRANSITIONS: Dict[Tuple[CoherenceState, MesiEvent],
                       CoherenceState] = {
    (M, MesiEvent.LOCAL_READ): M,
    (M, MesiEvent.LOCAL_WRITE): M,
    (M, MesiEvent.REMOTE_READ): S,    # writeback, then share
    (M, MesiEvent.REMOTE_WRITE): I,
    (M, MesiEvent.EVICT): I,
    (E, MesiEvent.LOCAL_READ): E,
    (E, MesiEvent.LOCAL_WRITE): M,    # silent upgrade
    (E, MesiEvent.REMOTE_READ): S,
    (E, MesiEvent.REMOTE_WRITE): I,
    (E, MesiEvent.EVICT): I,
    (S, MesiEvent.LOCAL_READ): S,
    (S, MesiEvent.LOCAL_WRITE): M,    # needs an invalidating upgrade
    (S, MesiEvent.REMOTE_READ): S,
    (S, MesiEvent.REMOTE_WRITE): I,
    (S, MesiEvent.EVICT): I,
    (I, MesiEvent.LOCAL_READ): S,     # controller may grant E instead
    (I, MesiEvent.LOCAL_WRITE): M,
    (I, MesiEvent.REMOTE_READ): I,
    (I, MesiEvent.REMOTE_WRITE): I,
    (I, MesiEvent.EVICT): I,
}


def next_state(state: CoherenceState, event: MesiEvent) -> CoherenceState:
    """The table lookup used by the controller for snoop-driven downgrades."""
    return MESI_TRANSITIONS[(state, event)]


@dataclass(slots=True)
class AccessOutcome:
    """Result of one request against the non-speculative hierarchy."""

    latency: int
    granted_state: CoherenceState = S
    nacked: bool = False
    hit_level: str = "memory"
    exclusive_available: bool = False
    triggered_filter_broadcast: bool = False

    @property
    def served(self) -> bool:
        return not self.nacked


class CoherenceController:
    """Implements MESI over the private L1s, the shared L2 and memory."""

    def __init__(self, bus: CoherenceBus, l2: "SetAssociativeCache",
                 memory: MainMemory,
                 stats: Optional[StatGroup] = None) -> None:
        self.bus = bus
        self.l2 = l2
        self.memory = memory
        stats = stats or StatGroup("coherence")
        self.stats = stats
        self._reads = stats.counter("read_requests")
        self._writes = stats.counter("write_requests")
        self._upgrades = stats.counter("exclusive_upgrades")
        self._nacked_reads = stats.counter("nacked_speculative_reads")
        self._dirty_transfers = stats.counter("dirty_transfers")

    # -- internals -----------------------------------------------------------
    def _fetch_into_l2(self, line_address: int, now: int) -> int:
        """Bring a line into the L2 from memory; returns added latency."""
        latency = self.memory.read(line_address, now)
        self.l2.fill(line_address, E, now + latency,
                     writeback_handler=lambda victim: self.memory.write(
                         victim.address, now + latency))
        return latency

    def _l2_lookup_latency(self, line_address: int, now: int) -> Optional[int]:
        """L2 access latency if the line is resident (None on L2 miss)."""
        line = self.l2.lookup(line_address, now)
        if line is None:
            self.l2.record_miss()
            return None
        self.l2.record_hit()
        latency = self.l2.config.hit_latency
        if line.prefetched and line.ready_at > now:
            # The prefetch that installed this line has not completed yet:
            # the demand access pays the remaining fill time.
            latency += line.ready_at - now
            line.prefetched = False
        return latency

    # -- read path -----------------------------------------------------------
    def read(self, requester: int, line_address: int, now: int,
             speculative: bool = False,
             protect_coherence: bool = False,
             want_exclusive_hint: bool = True,
             fill_l2: bool = True) -> AccessOutcome:
        """Serve a read miss from the requester's private L1 (or filter cache).

        ``protect_coherence`` enables MuonTrap's reduced coherency
        speculation: a speculative read that would force another core's
        private M/E line to S is NACKed instead of serviced.

        ``fill_l2=False`` serves the request without installing the line in
        the shared L2 on an L2 miss.  This is the filter-cache fill path
        (section 4.1): data fetched on behalf of a speculative access must
        go directly into the filter cache and leave no trace in any
        non-speculative cache.
        """
        self._reads.increment()
        snoop = self.bus.snoop(requester, line_address)
        latency = self.bus.snoop_latency

        if snoop.dirty_owner is not None or snoop.exclusive_owner is not None:
            if protect_coherence and speculative:
                # MuonTrap: do not disturb another core's private copy on
                # behalf of a speculative instruction.  The requester retries
                # once the access is non-speculative.
                self.bus.record_nack()
                self._nacked_reads.increment()
                return AccessOutcome(latency=latency, nacked=True,
                                     granted_state=I, hit_level="nack")
            owner = (snoop.dirty_owner if snoop.dirty_owner is not None
                     else snoop.exclusive_owner)
            was_dirty = snoop.dirty_owner is not None
            self.bus.downgrade_core(
                owner, line_address,
                next_state(M if was_dirty else E, MesiEvent.REMOTE_READ))
            if was_dirty:
                # Writeback to the shared L2 so the requester reads clean data.
                self.l2.fill(line_address, S, now + latency, dirty=True,
                             writeback_handler=lambda victim: self.memory.write(
                                 victim.address, now + latency))
                self._dirty_transfers.increment()
                latency += self.bus.dirty_transfer_latency
            else:
                latency += self.l2.config.hit_latency
                if self.l2.probe(line_address) is None:
                    self.l2.fill(line_address, S, now + latency)
            return AccessOutcome(latency=latency, granted_state=S,
                                 hit_level="peer")

        # No private owner elsewhere: the L2 (or memory) supplies the line.
        l2_latency = self._l2_lookup_latency(line_address, now + latency)
        if l2_latency is None:
            if fill_l2:
                latency += self._fetch_into_l2(line_address, now + latency)
            else:
                latency += self.memory.read(line_address, now + latency)
            hit_level = "memory"
        else:
            latency += l2_latency
            hit_level = "l2"
        exclusive_ok = not snoop.sharers and want_exclusive_hint
        granted = E if exclusive_ok else S
        return AccessOutcome(latency=latency, granted_state=granted,
                             hit_level=hit_level,
                             exclusive_available=exclusive_ok)

    # -- write path ------------------------------------------------------------
    def write(self, requester: int, line_address: int, now: int,
              already_private: bool = False,
              broadcast_to_filters: bool = False) -> AccessOutcome:
        """Obtain Modified ownership for a committed store.

        ``already_private`` is set when the requester's own L1 already holds
        the line in M or E, in which case no bus transaction is needed.
        ``broadcast_to_filters`` additionally invalidates every other filter
        cache (the MuonTrap invalidation broadcast of section 4.5), which is
        only required when the line was *not* already private.
        """
        self._writes.increment()
        if already_private:
            return AccessOutcome(latency=0, granted_state=M, hit_level="l1")

        snoop = self.bus.snoop(requester, line_address)
        # The scoped-invalidate ablation's directory verdict must be read
        # before invalidate_others retires the peers' entries below.
        scope_skip = (self.bus.filter_invalidate_scope_skips(
            requester, line_address) if broadcast_to_filters else False)
        latency = self.bus.snoop_latency
        if snoop.dirty_owner is not None:
            self.l2.fill(line_address, S, now + latency, dirty=True)
            latency += self.bus.dirty_transfer_latency
            self._dirty_transfers.increment()
        self.bus.invalidate_others(requester, line_address)

        l2_latency = self._l2_lookup_latency(line_address, now + latency)
        if l2_latency is None:
            latency += self._fetch_into_l2(line_address, now + latency)
            hit_level = "memory"
        else:
            latency += l2_latency
            hit_level = "l2"

        triggered = False
        if broadcast_to_filters:
            # False only when the scoped-invalidate ablation skipped the
            # multicast; Figure 7 counts performed broadcasts.
            triggered = self.bus.broadcast_filter_invalidate(
                requester, line_address, scope_skip=scope_skip)
        self._upgrades.increment()
        return AccessOutcome(latency=latency, granted_state=M,
                             hit_level=hit_level,
                             triggered_filter_broadcast=triggered)

    # -- asynchronous exclusive upgrade (the SE pseudo-state, section 4.5) -----
    def asynchronous_exclusive_upgrade(self, requester: int,
                                       line_address: int, now: int) -> None:
        """Upgrade a committed load's line to Exclusive off the critical path.

        Launched from the L1 when a line that was filled in the ``SE``
        pseudo-state commits.  Invalidates stale copies elsewhere (including
        other filter caches) but adds no latency to the committing core.
        """
        self._upgrades.increment()
        scope_skip = self.bus.filter_invalidate_scope_skips(requester,
                                                            line_address)
        self.bus.invalidate_others(requester, line_address)
        self.bus.broadcast_filter_invalidate(requester, line_address,
                                             scope_skip=scope_skip)
