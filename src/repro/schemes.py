"""The protection-scheme registry.

Historically, adding a protection scheme meant editing the
:class:`~repro.common.params.ProtectionMode` enum *and* the dispatch
if-chain in :func:`repro.sim.hetero.frontend_factory` *and* every module
that compared ``ProtectionMode`` members to learn a scheme's capabilities.
This module replaces all of that with data: a :class:`SchemeSpec` bundles
a scheme's name, its memory-system factory and its capability flags, and
the registry (:func:`register_scheme` / :func:`get_scheme` /
:func:`available_schemes`) is the single authoritative name -> scheme
mapping the rest of the system dispatches through.

The seven built-in schemes self-register when their defining modules are
imported (:mod:`repro.core.muontrap`, :mod:`repro.baselines`); lookups
import those modules lazily, so importing :mod:`repro.schemes` alone stays
cheap and free of import cycles.  External code registers new schemes the
same way the builtins do::

    from repro.schemes import SchemeSpec, register_scheme

    register_scheme(SchemeSpec(
        name="my-scheme",
        factory=MySchemeMemorySystem,      # (config, **kwargs) -> MemorySystem
        display_name="MyScheme",
        timing_invariant=True,
    ))

after which ``SystemConfig(mode="my-scheme")`` builds end-to-end through
:func:`repro.api.simulate`, ``python -m repro run --mode my-scheme`` sweeps
it, and ``python -m repro schemes`` lists it.  :class:`ProtectionMode` is
kept as a thin, deprecated alias for the built-in names; its capability
properties resolve through this registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional, Union

from repro.common.params import ProtectionConfig, ProtectionMode, scheme_name

#: Anything that names a scheme: a registry name or a ProtectionMode member.
SchemeLike = Union[str, ProtectionMode]


class UnknownSchemeError(ValueError):
    """A scheme name that matches no registry entry."""


@dataclass(frozen=True)
class SchemeSpec:
    """Everything the system needs to know about one protection scheme.

    ``factory`` is called exactly like the built-in memory-system
    constructors: ``factory(config, page_tables=..., stats=..., rng=...,
    hierarchy=..., core_ids=...)`` and must return a
    :class:`~repro.cpu.interface.MemorySystem`.  The capability flags
    replace scattered ``ProtectionMode`` comparisons: consumers ask the
    spec, not the enum.
    """

    name: str
    factory: Callable[..., object]
    #: Human-facing series label (figure legends, report columns).
    display_name: str = ""
    description: str = ""
    #: The scheme hides speculative state changes from timing probes (the
    #: paper's security property; False for the insecure baselines).
    timing_invariant: bool = False
    #: The scheme interposes speculative filter caches (a MuonTrap L0)
    #: between the core and the non-speculative hierarchy.
    supports_filter_caches: bool = False
    #: The scheme delays taint-dependent transmit instructions (STT).
    delays_transmitters: bool = False
    #: The scheme buffers speculative loads for later validation
    #: (InvisiSpec).
    uses_speculative_buffers: bool = False
    #: The scheme belongs to the five-series comparison of Figures 3/4.
    figure_series: bool = False
    #: Default :class:`~repro.common.params.ProtectionConfig` tweaks applied
    #: by :func:`scheme_config` (None = the machine default).  Never applied
    #: implicitly: ``SystemConfig(mode=...)`` is unaffected.
    default_protection: Optional[ProtectionConfig] = None
    #: True for the schemes shipped with the package (protected from
    #: unregistration).
    builtin: bool = False

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.strip():
            raise ValueError("scheme name must be a non-empty string")
        if any(ch.isspace() for ch in self.name):
            raise ValueError(f"scheme name {self.name!r} must not contain "
                             f"whitespace")
        if not callable(self.factory):
            raise ValueError(f"scheme {self.name!r}: factory must be "
                             f"callable")
        if not self.display_name:
            object.__setattr__(self, "display_name", self.name)

    @property
    def slug(self) -> str:
        """Identifier-safe name (statistics-tree node names)."""
        return self.name.replace("-", "_")

    def capabilities(self) -> Dict[str, bool]:
        """The capability flags as a name -> bool mapping."""
        return {spec_field.name: getattr(self, spec_field.name)
                for spec_field in fields(self)
                if spec_field.type == "bool" and spec_field.name != "builtin"}


#: The registry.  :func:`available_schemes` presents the builtins in this
#: canonical order (the insecure baselines, then the five protected
#: schemes in the order the figures compare them) regardless of which
#: module happened to import first; user schemes follow in registration
#: order.
_BUILTIN_ORDER = [
    "unprotected", "insecure-l0", "muontrap",
    "invisispec-spectre", "invisispec-future",
    "stt-spectre", "stt-future",
]
_REGISTRY: Dict[str, SchemeSpec] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the modules whose schemes self-register, exactly once.

    The import order fixes the canonical registry order: the two insecure
    baselines, then the five protected schemes in the order the figures
    compare them.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.baselines.unprotected  # noqa: F401
    import repro.baselines.insecure_l0  # noqa: F401
    import repro.core.muontrap  # noqa: F401
    import repro.baselines.invisispec  # noqa: F401
    import repro.baselines.stt  # noqa: F401


def register_scheme(spec: SchemeSpec, replace: bool = False) -> SchemeSpec:
    """Add a scheme to the registry (and return it).

    Re-registering an existing name requires ``replace=True``; the built-in
    schemes cannot be replaced (the differential tests pin their
    behaviour).
    """
    _ensure_builtins()
    existing = _REGISTRY.get(spec.name)
    if existing is not None:
        if existing.builtin:
            raise ValueError(f"cannot replace built-in scheme {spec.name!r}")
        if not replace:
            raise ValueError(
                f"scheme {spec.name!r} is already registered "
                f"(pass replace=True to redefine it)")
    _REGISTRY[spec.name] = spec
    return spec


def _register_builtin(spec: SchemeSpec) -> SchemeSpec:
    """Registration path used by the built-in modules themselves.

    Bypasses :func:`_ensure_builtins` (the builtins are in the middle of
    loading when this runs) and tolerates re-execution.
    """
    _REGISTRY[spec.name] = spec
    return spec


def unregister_scheme(name: SchemeLike) -> None:
    """Remove a user-registered scheme (builtins cannot be removed)."""
    key = scheme_name(name)
    spec = _REGISTRY.get(key)
    if spec is None:
        return
    if spec.builtin:
        raise ValueError(f"cannot unregister built-in scheme {key!r}")
    del _REGISTRY[key]


def get_scheme(name: SchemeLike) -> SchemeSpec:
    """Resolve a scheme name (or ProtectionMode member) to its spec."""
    _ensure_builtins()
    key = scheme_name(name)
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownSchemeError(
            f"unknown protection scheme: {key!r} "
            f"(registered: {', '.join(scheme_names())})") from None


def is_registered(name: SchemeLike) -> bool:
    _ensure_builtins()
    return scheme_name(name) in _REGISTRY


def available_schemes() -> List[SchemeSpec]:
    """All registered schemes: builtins in canonical order, then the rest."""
    _ensure_builtins()
    builtins = [_REGISTRY[name] for name in _BUILTIN_ORDER
                if name in _REGISTRY]
    extras = [spec for name, spec in _REGISTRY.items()
              if name not in _BUILTIN_ORDER]
    return builtins + extras


def scheme_names() -> List[str]:
    return [spec.name for spec in available_schemes()]


def figure_series_schemes() -> List[SchemeSpec]:
    """The five schemes of Figures 3 and 4, in figure order."""
    return [spec for spec in available_schemes() if spec.figure_series]


def scheme_display_labels() -> Dict[str, str]:
    """name -> display label for every registered scheme."""
    return {spec.name: spec.display_name for spec in available_schemes()}


def scheme_config(name: SchemeLike, num_cores: int = 1):
    """A default system configuration running one scheme on every core.

    Applies the scheme's ``default_protection`` tweaks when it declares
    any; otherwise this is exactly
    ``SystemConfig(mode=name, num_cores=num_cores)``.
    """
    from repro.common.params import SystemConfig
    spec = get_scheme(name)
    config = SystemConfig(mode=spec.name, num_cores=num_cores)
    if spec.default_protection is not None:
        config = config.with_protection(spec.default_protection)
    return config


__all__ = [
    "SchemeSpec",
    "UnknownSchemeError",
    "available_schemes",
    "figure_series_schemes",
    "get_scheme",
    "is_registered",
    "register_scheme",
    "scheme_config",
    "scheme_display_labels",
    "scheme_name",
    "scheme_names",
    "unregister_scheme",
]
