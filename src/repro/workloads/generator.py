"""The synthetic trace generator.

Turns a :class:`~repro.workloads.profiles.WorkloadProfile` into one
:class:`~repro.workloads.trace.Trace` per thread.  The generator is the
substitution for running the real SPEC CPU2006 / Parsec binaries (see
DESIGN.md): it produces instruction streams whose *statistical* behaviour —
instruction mix, data locality, streaming, pointer chasing, branch
predictability, wrong-path traffic, instruction footprint and inter-thread
sharing — matches the profile, so that the relative timing of the different
protection schemes emerges from the simulator rather than being scripted.

Address-space layout (virtual addresses, per process):

* code:    ``0x0040_0000`` upward, one 4-byte slot per static instruction;
* private data per thread: ``0x1000_0000 + thread * 0x0100_0000``;
* shared data (Parsec): ``0x7000_0000``, common to all threads of a process;
* wrong-path data: drawn from the same data regions, so squashed accesses
  pollute exactly the structures the real attacks and the prefetcher care
  about.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.rng import DeterministicRng
from repro.cpu.instructions import MicroOp, OpKind, WrongPathAccess
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import Trace, WorkloadTraces

CODE_BASE = 0x0040_0000
PRIVATE_DATA_BASE = 0x1000_0000
PRIVATE_DATA_STRIDE = 0x0100_0000
SHARED_DATA_BASE = 0x7000_0000
LINE_SIZE = 64


@dataclass
class _DataStream:
    """One sequential access stream (models array traversals)."""

    cursor: int
    stride: int
    remaining: int


@dataclass
class _ThreadState:
    """Mutable generation state for one thread."""

    rng: DeterministicRng
    data_base: int
    shared_base: int
    pc: int = CODE_BASE
    recent_lines: List[int] = field(default_factory=list)
    streams: List[_DataStream] = field(default_factory=list)
    last_load_reg: Optional[int] = None
    next_reg: int = 1
    last_load_line: Optional[int] = None


class TraceGenerator:
    """Generates per-thread micro-op traces from a workload profile."""

    #: How many recently-touched lines the temporal-locality draw can reuse.
    #: 32 lines is 2 KiB, i.e. the hot reuse distance roughly matches the
    #: default filter-cache capacity, as short-distance reuse does in the
    #: real benchmarks.
    REUSE_WINDOW = 32

    def __init__(self, profile: WorkloadProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed

    # -- public API ------------------------------------------------------------
    def generate(self, instructions: int,
                 process_id: int = 0) -> WorkloadTraces:
        """Generate traces for every thread of the workload.

        Each trace is emitted with its struct-of-arrays
        :class:`~repro.workloads.trace.PackedTrace` view already built, so
        the simulator's zero-allocation loop never packs on the hot path.
        """
        profile = self.profile.scaled_for_sample(instructions)
        traces = []
        for thread_id in range(self.profile.num_threads):
            trace = self._generate_thread(profile, instructions, thread_id,
                                          process_id)
            trace.packed()
            traces.append(trace)
        return WorkloadTraces(benchmark=self.profile.name,
                              suite=self.profile.suite, traces=traces)

    def generate_single(self, instructions: int, thread_id: int = 0,
                        process_id: int = 0) -> Trace:
        """Generate one thread's trace (used by unit tests)."""
        profile = self.profile.scaled_for_sample(instructions)
        return self._generate_thread(profile, instructions, thread_id,
                                     process_id)

    # -- generation --------------------------------------------------------------
    def _generate_thread(self, profile: WorkloadProfile, instructions: int,
                         thread_id: int, process_id: int) -> Trace:
        rng = DeterministicRng(self.seed).fork(thread_id + 1)
        state = _ThreadState(
            rng=rng,
            data_base=PRIVATE_DATA_BASE + thread_id * PRIVATE_DATA_STRIDE,
            shared_base=SHARED_DATA_BASE)
        ops: List[MicroOp] = []
        mix = self._mix_weights(profile)
        while len(ops) < instructions:
            kind = rng.weighted_choice(*mix)
            if kind is OpKind.LOAD:
                ops.append(self._make_load(profile, state))
            elif kind is OpKind.STORE:
                ops.append(self._make_store(profile, state))
            elif kind is OpKind.BRANCH:
                ops.append(self._make_branch(profile, state))
            elif kind is OpKind.SYSCALL:
                ops.append(self._make_syscall(state))
            else:
                ops.append(self._make_compute(profile, state, kind))
        return Trace(benchmark=profile.name, thread_id=thread_id,
                     process_id=process_id, ops=ops[:instructions])

    def _mix_weights(self, profile: WorkloadProfile):
        kinds = [OpKind.LOAD, OpKind.STORE, OpKind.BRANCH, OpKind.FP_ALU,
                 OpKind.MUL_DIV, OpKind.SYSCALL, OpKind.INT_ALU]
        alu = max(0.01, 1.0 - (profile.load_fraction + profile.store_fraction
                               + profile.branch_fraction + profile.fp_fraction
                               + profile.mul_fraction + profile.syscall_rate))
        weights = [profile.load_fraction, profile.store_fraction,
                   profile.branch_fraction, profile.fp_fraction,
                   profile.mul_fraction, profile.syscall_rate, alu]
        return kinds, weights

    # -- program counter handling ------------------------------------------------
    def _advance_pc(self, profile: WorkloadProfile,
                    state: _ThreadState) -> int:
        pc = state.pc
        state.pc += 4
        footprint = max(256, profile.instruction_footprint_bytes)
        if state.pc >= CODE_BASE + footprint:
            state.pc = CODE_BASE
        return pc

    def _branch_target(self, profile: WorkloadProfile,
                       state: _ThreadState) -> int:
        footprint = max(256, profile.instruction_footprint_bytes)
        hot_bytes = max(128, int(footprint * profile.hot_code_fraction))
        if state.rng.chance(profile.loop_bias):
            # Loop back within the hot region of the code.
            offset = state.rng.randint(0, hot_bytes // 4 - 1) * 4
        else:
            offset = state.rng.randint(0, footprint // 4 - 1) * 4
        return CODE_BASE + offset

    # -- data address generation -----------------------------------------------------
    def _remember_line(self, state: _ThreadState, address: int) -> None:
        line = address - (address % LINE_SIZE)
        state.recent_lines.append(line)
        if len(state.recent_lines) > self.REUSE_WINDOW:
            state.recent_lines.pop(0)

    def _stream_address(self, profile: WorkloadProfile,
                        state: _ThreadState) -> int:
        """Next address of one of the workload's sequential streams."""
        rng = state.rng
        if (not state.streams
                or (len(state.streams) < profile.concurrent_streams
                    and rng.chance(0.1))):
            start = state.data_base + rng.randint(
                0, max(1, profile.working_set_bytes // LINE_SIZE) - 1) * LINE_SIZE
            stride = rng.choice([8, 8, 16, 16, 32, 64])
            state.streams.append(_DataStream(cursor=start, stride=stride,
                                             remaining=rng.randint(128, 768)))
        stream = rng.choice(state.streams)
        address = stream.cursor
        stream.cursor += stream.stride
        stream.remaining -= 1
        if stream.remaining <= 0 or (
                stream.cursor >= state.data_base + profile.working_set_bytes):
            state.streams.remove(stream)
        return address

    def _conflict_address(self, profile: WorkloadProfile,
                          state: _ThreadState) -> int:
        """Addresses that collide in a low-associativity filter cache.

        Power-of-two strides map many concurrently live lines to the same
        set, which is the behaviour that makes cactusADM sensitive to
        filter-cache associativity (Figure 6).
        """
        rng = state.rng
        way = rng.randint(0, 7)
        set_stride = 2048  # same set in a 2 KiB filter cache regardless of ways
        return state.data_base + way * set_stride + rng.randint(0, 1) * 8

    def _data_address(self, profile: WorkloadProfile, state: _ThreadState,
                      for_store: bool = False) -> int:
        rng = state.rng
        shared = (profile.shared_fraction > 0.0
                  and rng.chance(profile.shared_fraction))
        base = state.shared_base if shared else state.data_base
        working_set = (profile.shared_working_set_bytes if shared
                       else profile.working_set_bytes)
        working_set = max(LINE_SIZE * 4, working_set)
        if not shared and profile.set_conflict_pressure > 0.0 and rng.chance(
                profile.set_conflict_pressure * 0.3):
            address = self._conflict_address(profile, state)
        elif not shared and rng.chance(profile.streaming):
            address = self._stream_address(profile, state)
        elif state.recent_lines and rng.chance(profile.temporal_locality):
            index = rng.zipf_index(len(state.recent_lines))
            line = state.recent_lines[-(index + 1)]
            address = line + rng.randint(0, LINE_SIZE - 1) & ~0x7
        elif state.recent_lines and rng.chance(profile.spatial_locality):
            line = state.recent_lines[-1]
            address = line + LINE_SIZE + rng.randint(0, LINE_SIZE - 1) & ~0x7
        else:
            hot = rng.chance(0.6)
            region = (max(LINE_SIZE * 2, profile.hot_set_bytes) if hot
                      else working_set)
            address = base + rng.randint(0, max(1, region // 8) - 1) * 8
        self._remember_line(state, address)
        return address

    def _wrong_path_accesses(self, profile: WorkloadProfile,
                             state: _ThreadState) -> List[WrongPathAccess]:
        """Squashed accesses a misprediction of this branch would produce."""
        rng = state.rng
        count = rng.geometric(max(1.0, profile.wrong_path_loads), maximum=6)
        accesses: List[WrongPathAccess] = []
        for index in range(count):
            # Wrong-path accesses hit the same working set but without the
            # pattern of the committed stream: mostly random lines, which is
            # what perturbs the stride prefetcher in an unprotected system.
            region = max(LINE_SIZE * 4, profile.working_set_bytes)
            address = state.data_base + rng.randint(
                0, max(1, region // 8) - 1) * 8
            accesses.append(WrongPathAccess(address=address,
                                            is_store=rng.chance(0.15),
                                            issue_offset=index + 1))
        if rng.chance(0.3):
            accesses.append(WrongPathAccess(
                address=self._branch_target(profile, state),
                is_instruction=True, issue_offset=1))
        return accesses

    # -- per-kind op constructors -----------------------------------------------------
    def _fresh_register(self, state: _ThreadState) -> int:
        register = state.next_reg
        state.next_reg = (state.next_reg + 1) % 64 or 1
        return register

    def _make_load(self, profile: WorkloadProfile,
                   state: _ThreadState) -> MicroOp:
        rng = state.rng
        pc = self._advance_pc(profile, state)
        src_regs = ()
        if (profile.pointer_chase_fraction > 0.0
                and state.last_load_reg is not None
                and rng.chance(profile.pointer_chase_fraction)):
            # A dependent (pointer-chasing) load: its address comes from the
            # previous load's result.
            src_regs = (state.last_load_reg,)
        address = self._data_address(profile, state)
        dst = self._fresh_register(state)
        state.last_load_reg = dst
        state.last_load_line = address - (address % LINE_SIZE)
        return MicroOp(kind=OpKind.LOAD, pc=pc, address=address,
                       src_regs=src_regs, dst_reg=dst)

    def _make_store(self, profile: WorkloadProfile,
                    state: _ThreadState) -> MicroOp:
        rng = state.rng
        pc = self._advance_pc(profile, state)
        if rng.chance(profile.store_private_fraction) and state.recent_lines:
            # Store to data that was recently read: the line is likely
            # already held privately, so no invalidation broadcast is needed.
            line = state.recent_lines[-rng.zipf_index(
                len(state.recent_lines)) - 1]
            address = line + (rng.randint(0, LINE_SIZE // 8 - 1) * 8)
        else:
            address = self._data_address(profile, state, for_store=True)
        src_regs = ()
        if state.last_load_reg is not None and rng.chance(
                profile.load_use_fraction):
            src_regs = (state.last_load_reg,)
        return MicroOp(kind=OpKind.STORE, pc=pc, address=address,
                       src_regs=src_regs)

    def _make_branch(self, profile: WorkloadProfile,
                     state: _ThreadState) -> MicroOp:
        rng = state.rng
        pc = self._advance_pc(profile, state)
        # Each static branch is biased; how strongly determines how well the
        # tournament predictor learns it.  The bias must be a deterministic
        # function of the static branch (not Python's randomised hash) so
        # traces are reproducible across processes.
        biased_taken = (zlib.crc32(f"{self.profile.name}:{pc}".encode())
                        & 1) == 0
        follows_bias = rng.chance(profile.branch_predictability)
        taken = biased_taken if follows_bias else not biased_taken
        src_regs = ()
        if state.last_load_reg is not None and rng.chance(
                profile.load_use_fraction * 0.5):
            src_regs = (state.last_load_reg,)
        target = self._branch_target(profile, state)
        op = MicroOp(kind=OpKind.BRANCH, pc=pc, taken=taken, target=target,
                     src_regs=src_regs,
                     wrong_path=self._wrong_path_accesses(profile, state))
        if taken:
            state.pc = target
        return op

    def _make_syscall(self, state: _ThreadState) -> MicroOp:
        pc = self._advance_pc(self.profile, state)
        return MicroOp(kind=OpKind.SYSCALL, pc=pc, is_context_switch=False)

    def _make_compute(self, profile: WorkloadProfile, state: _ThreadState,
                      kind: OpKind) -> MicroOp:
        rng = state.rng
        pc = self._advance_pc(profile, state)
        src_regs = ()
        if state.last_load_reg is not None and rng.chance(
                profile.load_use_fraction):
            src_regs = (state.last_load_reg,)
        dst = self._fresh_register(state)
        return MicroOp(kind=kind, pc=pc, src_regs=src_regs, dst_reg=dst)


def generate_workload(profile, instructions: int,
                      seed: int = 0, process_id: int = 0) -> WorkloadTraces:
    """Convenience wrapper used by the experiment harness.

    Accepts a :class:`~repro.workloads.profiles.WorkloadProfile` or a
    :class:`~repro.workloads.mixes.MixProfile`; the latter is composed from
    its constituents (each cached individually) by
    :func:`repro.workloads.mixes.generate_mix`.

    Generation is pure in its arguments, so results are cached through
    :mod:`repro.workloads.cache` (in-memory LRU, plus an on-disk tier when
    ``REPRO_TRACE_CACHE`` names a directory).  A campaign sweeping one
    benchmark across several protection schemes therefore generates the
    trace once.  Campaign workers additionally consult the fork-inherited
    shared registry first — workloads the campaign parent materialised
    before forking are attached by reference, not regenerated or
    re-unpickled.  Cached workloads are shared objects: treat them as
    immutable, as all harness code does.
    """
    from repro.workloads.mixes import MixProfile, generate_mix
    if isinstance(profile, MixProfile):
        # Mixes are composed by reference from their (individually cached)
        # constituents, so composition is nearly free; caching the composed
        # bundle as well would duplicate every constituent trace in the
        # cache (and, on the disk tier, pickle full copies of the shared
        # ops), for no generation saved.
        return generate_mix(profile, instructions, seed=seed)

    from repro.workloads.cache import (active_trace_cache,
                                       shared_trace_lookup, trace_key)
    shared = shared_trace_lookup(profile, instructions, seed, process_id)
    if shared is not None:
        return shared
    cache = active_trace_cache()
    if cache is None:
        return TraceGenerator(profile, seed=seed).generate(
            instructions, process_id=process_id)
    key = trace_key(profile, instructions, seed, process_id)
    workload = cache.get(key)
    if workload is None:
        workload = TraceGenerator(profile, seed=seed).generate(
            instructions, process_id=process_id)
        cache.put(key, workload)
    return workload
