"""Multi-programmed co-run mixes.

A :class:`MixProfile` names a tuple of constituent benchmarks that run
*concurrently on different cores in different address spaces*, contending
in the shared LLC and on the coherence bus.  This is the multi-programmed
counterpart of the multi-threaded Parsec workloads: where Parsec threads
share one process and cooperate, mix constituents are independent programs
whose only interaction is through the shared levels of the memory system —
the scenario the paper's cross-core attacks (and the co-run methodology of
the ISCA evaluation retrospectives) are about.

Mixes are first-class benchmarks: :func:`repro.workloads.profiles.get_profile`
resolves their names, the suite registry exposes them (suite ``mixes``), and
campaigns sweep them over schemes × seeds like any other workload.  Mix
composition reuses the trace cache per *constituent*: each member's trace is
generated (or fetched) exactly as it would be for a single-program run and
then re-bound, without copying the instruction stream or its packed view,
to the mix's per-core process.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Tuple

from repro.common.params import (
    ProtectionMode,
    SystemConfig,
    biglittle_system_config,
    corun_system_config,
    heterogeneous_corun_config,
)
from repro.workloads.profiles import (
    PARSEC_PROFILES,
    SPEC2006_PROFILES,
    WorkloadProfile,
)
from repro.workloads.trace import Trace, WorkloadTraces


@dataclass(frozen=True)
class MixProfile:
    """A named multi-programmed workload: one constituent per process."""

    name: str
    members: Tuple[str, ...]
    suite: str = "mix"

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ValueError("a mix needs at least two constituents")
        for member in self.members:
            if (member not in SPEC2006_PROFILES
                    and member not in PARSEC_PROFILES):
                raise ValueError(f"unknown mix constituent: {member!r}")

    @property
    def num_threads(self) -> int:
        """Hardware contexts the mix occupies (one per constituent thread)."""
        return sum(self.member_profile(index).num_threads
                   for index in range(len(self.members)))

    def member_profile(self, index: int) -> WorkloadProfile:
        member = self.members[index]
        if member in SPEC2006_PROFILES:
            return SPEC2006_PROFILES[member]
        return PARSEC_PROFILES[member]


def _mix(name: str, *members: str) -> MixProfile:
    return MixProfile(name=name, members=tuple(members))


#: The built-in co-run mixes.  Pairings follow the classic co-run taxonomy:
#: pointer-chasing (mcf, omnetpp), streaming (lbm, libquantum), cache-
#: sensitive (xalancbmk) and compute-bound (povray) programs combined so
#: that LLC contention, prefetcher interference and coherence traffic are
#: each exercised; ``mix-quad`` fills four cores.
MIX_PROFILES: Dict[str, MixProfile] = {
    profile.name: profile for profile in [
        _mix("mix-pointer-stream", "mcf", "lbm"),
        _mix("mix-pointer-pointer", "mcf", "omnetpp"),
        _mix("mix-stream-stream", "lbm", "libquantum"),
        _mix("mix-compute-memory", "povray", "mcf"),
        _mix("mix-cache-stream", "xalancbmk", "libquantum"),
        _mix("mix-quad", "mcf", "lbm", "omnetpp", "libquantum"),
    ]
}


def mix_names() -> List[str]:
    return sorted(MIX_PROFILES)


# -- heterogeneous machine presets -------------------------------------------
#
# Named machines the co-run mixes are swept over: where a MixProfile says
# *what* runs, a machine preset says what it runs *on*.  Each preset is a
# complete :class:`~repro.common.params.SystemConfig` with an explicit
# per-core configuration list; `python -m repro run --machine <name>` puts
# it in the campaign matrix beside (or instead of) the homogeneous schemes.
# Presets are built lazily so importing this module stays cheap.

def _biglittle_muontrap() -> SystemConfig:
    """A fully protected big.LITTLE pair: MuonTrap on both core classes."""
    return biglittle_system_config(
        big_modes=[ProtectionMode.MUONTRAP],
        little_modes=[ProtectionMode.MUONTRAP])


def _biglittle_asym() -> SystemConfig:
    """big.LITTLE with only the big core protected (the LITTLE core is
    assumed to run trusted, sandbox-free work)."""
    return biglittle_system_config(
        big_modes=[ProtectionMode.MUONTRAP],
        little_modes=[ProtectionMode.UNPROTECTED])


def _asym_protect() -> SystemConfig:
    """Two identical big cores, only core 0 protected — the asymmetric-
    protection threat scenario of the cross-scheme attack matrix."""
    return heterogeneous_corun_config(
        [ProtectionMode.MUONTRAP, ProtectionMode.UNPROTECTED])


def _scoped_invalidate() -> SystemConfig:
    """The (insecure) filter-invalidate ablation: a homogeneous 2-core
    MuonTrap machine whose invalidation multicast is scoped by the snoop
    filter, quantifying the paper's timing-invariance cost."""
    config = corun_system_config(ProtectionMode.MUONTRAP, num_cores=2)
    return config.with_protection(
        replace(config.protection, insecure_scoped_invalidate=True))


MACHINE_PRESETS: Dict[str, Callable[[], SystemConfig]] = {
    "biglittle-muontrap": _biglittle_muontrap,
    "biglittle-asym": _biglittle_asym,
    "asym-protect": _asym_protect,
    "scoped-invalidate": _scoped_invalidate,
}


def machine_names() -> List[str]:
    return sorted(MACHINE_PRESETS)


def get_machine(name: str) -> SystemConfig:
    """Resolve a named machine preset to its system configuration."""
    if name not in MACHINE_PRESETS:
        raise KeyError(f"unknown machine preset: {name!r} "
                       f"(known: {', '.join(machine_names())})")
    return MACHINE_PRESETS[name]()


def get_mix(name: str) -> MixProfile:
    if name not in MIX_PROFILES:
        raise KeyError(f"unknown mix: {name!r}")
    return MIX_PROFILES[name]


def generate_mix(mix: MixProfile, instructions: int,
                 seed: int = 0) -> WorkloadTraces:
    """Generate the co-run workload for one mix.

    Each constituent is generated through :func:`generate_workload` with
    the *same* arguments a single-program run of that benchmark would use,
    so the trace cache (in-memory and on-disk) is shared with ordinary
    sweeps; the resulting traces — including their already-built
    :class:`~repro.workloads.trace.PackedTrace` views — are re-bound by
    reference to the mix's process layout (constituent ``k`` becomes
    process ``k``), never copied.  Cached traces are shared, immutable
    objects, exactly as the harness treats every generated workload.
    """
    from repro.workloads.generator import generate_workload

    traces: List[Trace] = []
    for process_id, member in enumerate(mix.members):
        member_workload = generate_workload(mix.member_profile(process_id),
                                            instructions, seed=seed)
        for trace in member_workload:
            traces.append(Trace(benchmark=trace.benchmark,
                                thread_id=len(traces),
                                process_id=process_id,
                                ops=trace.ops,
                                _packed=trace._packed))
    return WorkloadTraces(benchmark=mix.name, suite="mix", traces=traces)
