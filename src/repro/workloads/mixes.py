"""Multi-programmed co-run mixes.

A :class:`MixProfile` names a tuple of constituent benchmarks that run
*concurrently on different cores in different address spaces*, contending
in the shared LLC and on the coherence bus.  This is the multi-programmed
counterpart of the multi-threaded Parsec workloads: where Parsec threads
share one process and cooperate, mix constituents are independent programs
whose only interaction is through the shared levels of the memory system —
the scenario the paper's cross-core attacks (and the co-run methodology of
the ISCA evaluation retrospectives) are about.

Mixes are first-class benchmarks: :func:`repro.workloads.profiles.get_profile`
resolves their names, the suite registry exposes them (suite ``mixes``), and
campaigns sweep them over schemes × seeds like any other workload.  Mix
composition reuses the trace cache per *constituent*: each member's trace is
generated (or fetched) exactly as it would be for a single-program run and
then re-bound, without copying the instruction stream or its packed view,
to the mix's per-core process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workloads.profiles import (
    PARSEC_PROFILES,
    SPEC2006_PROFILES,
    WorkloadProfile,
)
from repro.workloads.trace import Trace, WorkloadTraces


@dataclass(frozen=True)
class MixProfile:
    """A named multi-programmed workload: one constituent per process."""

    name: str
    members: Tuple[str, ...]
    suite: str = "mix"

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ValueError("a mix needs at least two constituents")
        for member in self.members:
            if (member not in SPEC2006_PROFILES
                    and member not in PARSEC_PROFILES):
                raise ValueError(f"unknown mix constituent: {member!r}")

    @property
    def num_threads(self) -> int:
        """Hardware contexts the mix occupies (one per constituent thread)."""
        return sum(self.member_profile(index).num_threads
                   for index in range(len(self.members)))

    def member_profile(self, index: int) -> WorkloadProfile:
        member = self.members[index]
        if member in SPEC2006_PROFILES:
            return SPEC2006_PROFILES[member]
        return PARSEC_PROFILES[member]


def _mix(name: str, *members: str) -> MixProfile:
    return MixProfile(name=name, members=tuple(members))


#: The built-in co-run mixes.  Pairings follow the classic co-run taxonomy:
#: pointer-chasing (mcf, omnetpp), streaming (lbm, libquantum), cache-
#: sensitive (xalancbmk) and compute-bound (povray) programs combined so
#: that LLC contention, prefetcher interference and coherence traffic are
#: each exercised; ``mix-quad`` fills four cores.
MIX_PROFILES: Dict[str, MixProfile] = {
    profile.name: profile for profile in [
        _mix("mix-pointer-stream", "mcf", "lbm"),
        _mix("mix-pointer-pointer", "mcf", "omnetpp"),
        _mix("mix-stream-stream", "lbm", "libquantum"),
        _mix("mix-compute-memory", "povray", "mcf"),
        _mix("mix-cache-stream", "xalancbmk", "libquantum"),
        _mix("mix-quad", "mcf", "lbm", "omnetpp", "libquantum"),
    ]
}


def mix_names() -> List[str]:
    return sorted(MIX_PROFILES)


def get_mix(name: str) -> MixProfile:
    if name not in MIX_PROFILES:
        raise KeyError(f"unknown mix: {name!r}")
    return MIX_PROFILES[name]


def generate_mix(mix: MixProfile, instructions: int,
                 seed: int = 0) -> WorkloadTraces:
    """Generate the co-run workload for one mix.

    Each constituent is generated through :func:`generate_workload` with
    the *same* arguments a single-program run of that benchmark would use,
    so the trace cache (in-memory and on-disk) is shared with ordinary
    sweeps; the resulting traces — including their already-built
    :class:`~repro.workloads.trace.PackedTrace` views — are re-bound by
    reference to the mix's process layout (constituent ``k`` becomes
    process ``k``), never copied.  Cached traces are shared, immutable
    objects, exactly as the harness treats every generated workload.
    """
    from repro.workloads.generator import generate_workload

    traces: List[Trace] = []
    for process_id, member in enumerate(mix.members):
        member_workload = generate_workload(mix.member_profile(process_id),
                                            instructions, seed=seed)
        for trace in member_workload:
            traces.append(Trace(benchmark=trace.benchmark,
                                thread_id=len(traces),
                                process_id=process_id,
                                ops=trace.ops,
                                _packed=trace._packed))
    return WorkloadTraces(benchmark=mix.name, suite="mix", traces=traces)
