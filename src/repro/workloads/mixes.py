"""Multi-programmed co-run mixes.

A :class:`MixProfile` names a tuple of constituent benchmarks that run
*concurrently on different cores in different address spaces*, contending
in the shared LLC and on the coherence bus.  This is the multi-programmed
counterpart of the multi-threaded Parsec workloads: where Parsec threads
share one process and cooperate, mix constituents are independent programs
whose only interaction is through the shared levels of the memory system —
the scenario the paper's cross-core attacks (and the co-run methodology of
the ISCA evaluation retrospectives) are about.

Mixes are first-class benchmarks: :func:`repro.workloads.profiles.get_profile`
resolves their names, the suite registry exposes them (suite ``mixes``), and
campaigns sweep them over schemes × seeds like any other workload.  Mix
composition reuses the trace cache per *constituent*: each member's trace is
generated (or fetched) exactly as it would be for a single-program run and
then re-bound, without copying the instruction stream or its packed view,
to the mix's per-core process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.common.machine import machine_from_dict
from repro.common.params import SystemConfig
from repro.workloads.profiles import (
    PARSEC_PROFILES,
    SPEC2006_PROFILES,
    WorkloadProfile,
)
from repro.workloads.trace import Trace, WorkloadTraces


@dataclass(frozen=True)
class MixProfile:
    """A named multi-programmed workload: one constituent per process."""

    name: str
    members: Tuple[str, ...]
    suite: str = "mix"

    def __post_init__(self) -> None:
        if len(self.members) < 2:
            raise ValueError("a mix needs at least two constituents")
        for member in self.members:
            if (member not in SPEC2006_PROFILES
                    and member not in PARSEC_PROFILES):
                raise ValueError(f"unknown mix constituent: {member!r}")

    @property
    def num_threads(self) -> int:
        """Hardware contexts the mix occupies (one per constituent thread)."""
        return sum(self.member_profile(index).num_threads
                   for index in range(len(self.members)))

    def member_profile(self, index: int) -> WorkloadProfile:
        member = self.members[index]
        if member in SPEC2006_PROFILES:
            return SPEC2006_PROFILES[member]
        return PARSEC_PROFILES[member]


def _mix(name: str, *members: str) -> MixProfile:
    return MixProfile(name=name, members=tuple(members))


#: The built-in co-run mixes.  Pairings follow the classic co-run taxonomy:
#: pointer-chasing (mcf, omnetpp), streaming (lbm, libquantum), cache-
#: sensitive (xalancbmk) and compute-bound (povray) programs combined so
#: that LLC contention, prefetcher interference and coherence traffic are
#: each exercised; ``mix-quad`` fills four cores.
MIX_PROFILES: Dict[str, MixProfile] = {
    profile.name: profile for profile in [
        _mix("mix-pointer-stream", "mcf", "lbm"),
        _mix("mix-pointer-pointer", "mcf", "omnetpp"),
        _mix("mix-stream-stream", "lbm", "libquantum"),
        _mix("mix-compute-memory", "povray", "mcf"),
        _mix("mix-cache-stream", "xalancbmk", "libquantum"),
        _mix("mix-quad", "mcf", "lbm", "omnetpp", "libquantum"),
    ]
}


def mix_names() -> List[str]:
    return sorted(MIX_PROFILES)


# -- heterogeneous machine presets -------------------------------------------
#
# Named machines the co-run mixes are swept over: where a MixProfile says
# *what* runs, a machine preset says what it runs *on*.  Each preset is
# pure data — a (partial) machine description resolved through
# :func:`repro.common.machine.machine_from_dict`, exactly the format
# ``python -m repro run --machine-file`` reads from disk — so defining a
# new machine means writing a dict, not code.  Omitted keys take the
# Table 1 defaults; `python -m repro run --machine <name>` puts a preset
# in the campaign matrix beside (or instead of) the homogeneous schemes.

#: The big cores' private L2: 256 KiB 8-way between the L1s and the LLC.
_BIG_PRIVATE_L2: Dict[str, Any] = {
    "name": "l2p", "size_bytes": 256 * 1024, "associativity": 8,
    "hit_latency": 10, "mshrs": 8,
}

#: The LITTLE cores' private L2: half the capacity, slightly faster.
_LITTLE_PRIVATE_L2: Dict[str, Any] = {
    "name": "l2p", "size_bytes": 128 * 1024, "associativity": 8,
    "hit_latency": 8, "mshrs": 4,
}

#: A Table 1 big core with its private L2 (mode defaults to MuonTrap).
_BIG_CORE: Dict[str, Any] = {"private_l2": _BIG_PRIVATE_L2}

#: A LITTLE core: 2-wide shallow pipeline at 1.2 GHz, halved L1s, small
#: private L2, same filter-cache geometry as the big cores.
_LITTLE_CORE: Dict[str, Any] = {
    "pipeline": {
        "width": 2, "rob_entries": 64, "iq_entries": 16,
        "lq_entries": 16, "sq_entries": 16,
        "int_registers": 96, "fp_registers": 96,
        "int_alus": 2, "fp_alus": 1, "mult_div_alus": 1,
        "branch_predictor": {
            "local_entries": 512, "global_entries": 2048,
            "chooser_entries": 512, "btb_entries": 1024,
            "ras_entries": 8,
        },
        "mispredict_penalty": 8, "frequency_ghz": 1.2,
    },
    "l1i": {"name": "l1i", "size_bytes": 16 * 1024, "associativity": 2,
            "hit_latency": 1, "mshrs": 2},
    "l1d": {"name": "l1d", "size_bytes": 32 * 1024, "associativity": 2,
            "hit_latency": 2, "mshrs": 2},
    "private_l2": _LITTLE_PRIVATE_L2,
}


def _core(base: Dict[str, Any], **overrides: Any) -> Dict[str, Any]:
    """A per-core description: a core template plus field overrides."""
    return {**base, **overrides}


#: name -> machine description.  ``get_machine`` resolves these through
#: the same code path as machine files on disk.
MACHINE_PRESETS: Dict[str, Dict[str, Any]] = {
    # A fully protected big.LITTLE pair: MuonTrap on both core classes.
    "biglittle-muontrap": {
        "num_cores": 2,
        "cores": [_core(_BIG_CORE), _core(_LITTLE_CORE)],
    },
    # big.LITTLE with only the big core protected (the LITTLE core is
    # assumed to run trusted, sandbox-free work).
    "biglittle-asym": {
        "num_cores": 2,
        "cores": [_core(_BIG_CORE), _core(_LITTLE_CORE,
                                          mode="unprotected")],
    },
    # Two identical big cores, only core 0 protected — the asymmetric-
    # protection threat scenario of the cross-scheme attack matrix.
    "asym-protect": {
        "num_cores": 2,
        "private_l2": _BIG_PRIVATE_L2,
        "cores": [_core(_BIG_CORE), _core(_BIG_CORE, mode="unprotected")],
    },
    # The (insecure) filter-invalidate ablation: a homogeneous 2-core
    # MuonTrap machine whose invalidation multicast is scoped by the snoop
    # filter, quantifying the paper's timing-invariance cost.
    "scoped-invalidate": {
        "num_cores": 2,
        "private_l2": _BIG_PRIVATE_L2,
        "protection": {"insecure_scoped_invalidate": True},
    },
}


def machine_names() -> List[str]:
    return sorted(MACHINE_PRESETS)


def get_machine(name: str) -> SystemConfig:
    """Resolve a named machine preset to its system configuration."""
    if name not in MACHINE_PRESETS:
        raise KeyError(f"unknown machine preset: {name!r} "
                       f"(known: {', '.join(machine_names())})")
    return machine_from_dict(MACHINE_PRESETS[name])


def get_mix(name: str) -> MixProfile:
    if name not in MIX_PROFILES:
        raise KeyError(f"unknown mix: {name!r}")
    return MIX_PROFILES[name]


def generate_mix(mix: MixProfile, instructions: int,
                 seed: int = 0) -> WorkloadTraces:
    """Generate the co-run workload for one mix.

    Each constituent is generated through :func:`generate_workload` with
    the *same* arguments a single-program run of that benchmark would use,
    so the trace cache (in-memory and on-disk) is shared with ordinary
    sweeps; the resulting traces — including their already-built
    :class:`~repro.workloads.trace.PackedTrace` views — are re-bound by
    reference to the mix's process layout (constituent ``k`` becomes
    process ``k``), never copied.  Cached traces are shared, immutable
    objects, exactly as the harness treats every generated workload.
    """
    from repro.workloads.generator import generate_workload

    traces: List[Trace] = []
    for process_id, member in enumerate(mix.members):
        member_workload = generate_workload(mix.member_profile(process_id),
                                            instructions, seed=seed)
        for trace in member_workload:
            traces.append(Trace(benchmark=trace.benchmark,
                                thread_id=len(traces),
                                process_id=process_id,
                                ops=trace.ops,
                                _packed=trace._packed))
    return WorkloadTraces(benchmark=mix.name, suite="mix", traces=traces)
