"""Synthetic workload models of SPEC CPU2006 and Parsec."""

from repro.workloads.generator import TraceGenerator, generate_workload
from repro.workloads.profiles import (
    PARSEC_PROFILES,
    SPEC2006_PROFILES,
    WorkloadProfile,
    get_profile,
    parsec_benchmarks,
    spec_benchmarks,
)
from repro.workloads.trace import Trace, WorkloadTraces

__all__ = [
    "PARSEC_PROFILES",
    "SPEC2006_PROFILES",
    "Trace",
    "TraceGenerator",
    "WorkloadProfile",
    "WorkloadTraces",
    "generate_workload",
    "get_profile",
    "parsec_benchmarks",
    "spec_benchmarks",
]
