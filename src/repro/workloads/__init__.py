"""Synthetic workload models of SPEC CPU2006 and Parsec."""

from repro.workloads.cache import (
    TRACE_CACHE_ENV,
    TraceCache,
    active_trace_cache,
    trace_key,
)
from repro.workloads.generator import TraceGenerator, generate_workload
from repro.workloads.mixes import (
    MIX_PROFILES,
    MixProfile,
    generate_mix,
    get_mix,
    mix_names,
)
from repro.workloads.profiles import (
    PARSEC_PROFILES,
    SPEC2006_PROFILES,
    WorkloadProfile,
    get_profile,
    parsec_benchmarks,
    spec_benchmarks,
)
from repro.workloads.trace import PackedTrace, Trace, WorkloadTraces

__all__ = [
    "MIX_PROFILES",
    "MixProfile",
    "PARSEC_PROFILES",
    "SPEC2006_PROFILES",
    "PackedTrace",
    "TRACE_CACHE_ENV",
    "Trace",
    "TraceCache",
    "TraceGenerator",
    "WorkloadProfile",
    "WorkloadTraces",
    "active_trace_cache",
    "generate_mix",
    "generate_workload",
    "get_mix",
    "get_profile",
    "mix_names",
    "parsec_benchmarks",
    "spec_benchmarks",
    "trace_key",
]
