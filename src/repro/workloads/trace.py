"""Trace containers.

A :class:`Trace` is the unit of work a core executes: an ordered instruction
stream plus the metadata the experiment harness needs (which benchmark and
thread it models, which process it belongs to).  Multi-threaded workloads
(Parsec) are represented as a :class:`WorkloadTraces` bundle with one trace
per thread, all sharing one process/address space.

Traces exist in two representations:

* a list of :class:`~repro.cpu.instructions.MicroOp` objects — the boundary
  format used by the generators, attacks and tests;
* a :class:`PackedTrace` — a struct-of-arrays view (parallel lists of flag
  bitmasks, pcs, addresses, latencies and register ids) consumed by the
  zero-allocation core loop.  Packing precomputes the
  ``is_load/is_store/is_branch/is_transmitter`` classification as flag bits
  so the hot loop never touches :class:`~repro.cpu.instructions.OpKind`
  enum properties.

``PackedTrace.pack`` / ``PackedTrace.unpack`` are lossless converters
between the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.cpu.instructions import (
    F_BRANCH,
    F_CONTEXT_SWITCH,
    F_FORCE_MISPREDICT,
    F_FORCE_MISPREDICT_VALUE,
    F_LOAD,
    F_SANDBOX_ENTRY,
    F_STORE,
    F_SYSCALL,
    F_TAKEN,
    KIND_FLAGS,
    MicroOp,
    OpKind,
    summarize_trace,
)

#: Index-order list of kinds, giving each a stable small integer code.
_KIND_CODES: List[OpKind] = list(OpKind)
_CODE_OF_KIND: Dict[OpKind, int] = {kind: code
                                    for code, kind in enumerate(_KIND_CODES)}

#: Sentinel for "no address / no target / no destination register".
_NONE = -1


class PackedTrace:
    """A struct-of-arrays instruction stream.

    Parallel plain-Python lists (one slot per op) instead of one object per
    op: the core loop reads each field with a single indexed load, all op
    classification is pre-folded into the ``flags`` bitmask, and running a
    trace allocates nothing per instruction.  Variable-size payloads
    (source-register tuples, wrong-path access lists) are stored by
    reference, so packing is cheap and lossless.
    """

    __slots__ = ("length", "kinds", "flags", "pcs", "addresses", "latencies",
                 "srcs", "dsts", "targets", "wrong_paths", "sequences")

    def __init__(self, length: int, kinds: List[int], flags: List[int],
                 pcs: List[int], addresses: List[int], latencies: List[int],
                 srcs: List[tuple], dsts: List[int], targets: List[int],
                 wrong_paths: List[list], sequences: List[int]) -> None:
        self.length = length
        self.kinds = kinds
        self.flags = flags
        self.pcs = pcs
        self.addresses = addresses
        self.latencies = latencies
        self.srcs = srcs
        self.dsts = dsts
        self.targets = targets
        self.wrong_paths = wrong_paths
        self.sequences = sequences

    def __len__(self) -> int:
        return self.length

    @classmethod
    def pack(cls, ops: Sequence[MicroOp]) -> "PackedTrace":
        """Convert a micro-op list into the packed representation."""
        length = len(ops)
        kinds = [0] * length
        flags = [0] * length
        pcs = [0] * length
        addresses = [_NONE] * length
        latencies = [0] * length
        srcs: List[tuple] = [()] * length
        dsts = [_NONE] * length
        targets = [_NONE] * length
        wrong_paths: List[list] = [None] * length  # type: ignore[list-item]
        sequences = [0] * length
        kind_flags = KIND_FLAGS
        code_of = _CODE_OF_KIND
        for i, op in enumerate(ops):
            op_flags = kind_flags[op.kind]
            if op.taken:
                op_flags |= F_TAKEN
            if op.is_context_switch:
                op_flags |= F_CONTEXT_SWITCH
            if op.is_sandbox_entry:
                op_flags |= F_SANDBOX_ENTRY
            if op.force_mispredict is not None:
                op_flags |= F_FORCE_MISPREDICT
                if op.force_mispredict:
                    op_flags |= F_FORCE_MISPREDICT_VALUE
            kinds[i] = code_of[op.kind]
            flags[i] = op_flags
            pcs[i] = op.pc
            if op.address is not None:
                addresses[i] = op.address
            latencies[i] = op.execution_latency
            if op.src_regs:
                srcs[i] = tuple(op.src_regs)
            if op.dst_reg is not None:
                dsts[i] = op.dst_reg
            if op.target is not None:
                targets[i] = op.target
            wrong_paths[i] = op.wrong_path
            sequences[i] = op.sequence
        return cls(length, kinds, flags, pcs, addresses, latencies, srcs,
                   dsts, targets, wrong_paths, sequences)

    def unpack(self) -> List[MicroOp]:
        """Rebuild the equivalent micro-op list (lossless inverse of pack)."""
        ops: List[MicroOp] = []
        for i in range(self.length):
            flags = self.flags[i]
            ops.append(MicroOp(
                kind=_KIND_CODES[self.kinds[i]],
                pc=self.pcs[i],
                sequence=self.sequences[i],
                address=None if self.addresses[i] == _NONE
                else self.addresses[i],
                src_regs=self.srcs[i],
                dst_reg=None if self.dsts[i] == _NONE else self.dsts[i],
                execution_latency=self.latencies[i],
                taken=bool(flags & F_TAKEN),
                target=None if self.targets[i] == _NONE else self.targets[i],
                force_mispredict=(bool(flags & F_FORCE_MISPREDICT_VALUE)
                                  if flags & F_FORCE_MISPREDICT else None),
                wrong_path=list(self.wrong_paths[i]),
                is_context_switch=bool(flags & F_CONTEXT_SWITCH),
                is_sandbox_entry=bool(flags & F_SANDBOX_ENTRY),
            ))
        return ops

    def op(self, index: int) -> MicroOp:
        """Materialise one op (debugging/inspection helper)."""
        flags = self.flags[index]
        return MicroOp(
            kind=_KIND_CODES[self.kinds[index]],
            pc=self.pcs[index],
            sequence=self.sequences[index],
            address=None if self.addresses[index] == _NONE
            else self.addresses[index],
            src_regs=self.srcs[index],
            dst_reg=None if self.dsts[index] == _NONE else self.dsts[index],
            execution_latency=self.latencies[index],
            taken=bool(flags & F_TAKEN),
            target=None if self.targets[index] == _NONE
            else self.targets[index],
            force_mispredict=(bool(flags & F_FORCE_MISPREDICT_VALUE)
                              if flags & F_FORCE_MISPREDICT else None),
            wrong_path=list(self.wrong_paths[index]),
            is_context_switch=bool(flags & F_CONTEXT_SWITCH),
            is_sandbox_entry=bool(flags & F_SANDBOX_ENTRY),
        )


@dataclass
class Trace:
    """One thread's instruction stream."""

    benchmark: str
    thread_id: int
    process_id: int
    ops: List[MicroOp] = field(default_factory=list)
    #: Cached packed view; built lazily (or eagerly by the generator).
    _packed: Optional[PackedTrace] = field(default=None, repr=False,
                                           compare=False)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self.ops)

    def packed(self) -> PackedTrace:
        """The struct-of-arrays view of this trace (cached).

        The cache is invalidated when ``ops`` changes length; callers that
        mutate ops in place should call :meth:`invalidate_packed`.
        """
        if self._packed is None or self._packed.length != len(self.ops):
            self._packed = PackedTrace.pack(self.ops)
        return self._packed

    def invalidate_packed(self) -> None:
        self._packed = None

    def summary(self) -> Dict[str, float]:
        return summarize_trace(self.ops)


@dataclass
class WorkloadTraces:
    """All threads of one benchmark run."""

    benchmark: str
    suite: str
    traces: List[Trace] = field(default_factory=list)

    @property
    def num_threads(self) -> int:
        return len(self.traces)

    def total_instructions(self) -> int:
        return sum(len(trace) for trace in self.traces)

    def thread(self, index: int) -> Trace:
        return self.traces[index]

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)
