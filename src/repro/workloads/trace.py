"""Trace containers.

A :class:`Trace` is the unit of work a core executes: an ordered instruction
stream plus the metadata the experiment harness needs (which benchmark and
thread it models, which process it belongs to).  Multi-threaded workloads
(Parsec) are represented as a :class:`WorkloadTraces` bundle with one trace
per thread, all sharing one process/address space.

Traces exist in two representations:

* a list of :class:`~repro.cpu.instructions.MicroOp` objects — the boundary
  format used by the generators, attacks and tests;
* a :class:`PackedTrace` — a struct-of-arrays view (parallel lists of flag
  bitmasks, pcs, addresses, latencies and register ids) consumed by the
  zero-allocation core loop.  Packing precomputes the
  ``is_load/is_store/is_branch/is_transmitter`` classification as flag bits
  so the hot loop never touches :class:`~repro.cpu.instructions.OpKind`
  enum properties.

``PackedTrace.pack`` / ``PackedTrace.unpack`` are lossless converters
between the two.

The vectorized engine (``OutOfOrderCore.run_vectorized``) additionally
consumes a :class:`TracePlan` — a one-time preprocessing pass over the
packed columns that segments the trace into maximal runs of "simple" ops
(no loads, stores, branches, syscalls, context switches or sandbox
entries — nothing that touches the memory hierarchy or the predictor)
sharing one instruction-cache line, and precomputes per-run register
read/write summaries so long runs replay as numpy array recurrences.
Plans are derived data: they are cached per ``(trace, line size)`` on the
:class:`PackedTrace` and deliberately excluded from pickles (the on-disk
trace cache stores only the columns; plans rebuild on first use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

try:  # numpy accelerates planning and long-run replay; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None


def numpy_available() -> bool:
    """Whether the optional numpy acceleration tier is importable.

    Surfaced by ``python -m repro version`` and the service's
    ``GET /v1/health`` endpoint; results never depend on it (the pure
    fallbacks are golden-tested bit-identical), only wall-clock does.
    """
    return _np is not None

from repro.cpu.instructions import (
    F_BRANCH,
    F_CONTEXT_SWITCH,
    F_FORCE_MISPREDICT,
    F_FORCE_MISPREDICT_VALUE,
    F_LOAD,
    F_SANDBOX_ENTRY,
    F_STORE,
    F_SYSCALL,
    F_TAKEN,
    KIND_FLAGS,
    MicroOp,
    OpKind,
    summarize_trace,
)

#: Index-order list of kinds, giving each a stable small integer code.
_KIND_CODES: List[OpKind] = list(OpKind)
_CODE_OF_KIND: Dict[OpKind, int] = {kind: code
                                    for code, kind in enumerate(_KIND_CODES)}

#: Sentinel for "no address / no target / no destination register".
_NONE = -1

#: Any of these flags makes an op "complex": it interacts with the memory
#: hierarchy, the branch predictor or the OS model, so the vectorized
#: engine must execute it on the scalar per-op path.  Everything else
#: (plain ALU work) is "simple" and batchable.
COMPLEX_MASK = (F_LOAD | F_STORE | F_BRANCH | F_SYSCALL
                | F_CONTEXT_SWITCH | F_SANDBOX_ENTRY)

#: The instruction-cache line size plans are pre-built for when no core
#: configuration is at hand (matches ``CacheConfig.line_size``'s default).
#: Plans are keyed by line size and built lazily, so a machine with a
#: different line size simply builds its own plan on first use.
DEFAULT_LINE_SIZE = 64

#: Minimum simple-run length for which a :class:`RunPlan` (the numpy
#: replay summary) is precomputed; shorter runs replay on the batched
#: scalar fast path, where numpy call overhead would dominate.  The
#: break-even point for the array recurrences (arange / scatter-max /
#: lag-width maximum) sits around a few dozen ops per run.
VECTOR_MIN_RUN = 32


class RunPlan:
    """Register read/write summary of one simple run, for numpy replay.

    Positions are 0-based offsets within the run.  Source registers are
    split into *external* reads (produced before the run; their ready
    times are gathered from the register file at replay time) and in-run
    *dependency* edges (producer position -> consumer position; resolved
    against the run's own completion-time array).
    """

    __slots__ = ("start", "stop", "lat", "ext_regs", "ext_positions",
                 "dep_ops", "final_writes", "max_dst")

    def __init__(self, start: int, stop: int, lat, ext_regs: List[int],
                 ext_positions, dep_ops: List[Tuple[int, Tuple[int, ...]]],
                 final_writes: List[Tuple[int, int]], max_dst: int) -> None:
        self.start = start
        self.stop = stop
        #: Per-position execution latencies (numpy int64).
        self.lat = lat
        #: Flat external source registers, parallel to ``ext_positions``.
        self.ext_regs = ext_regs
        #: Consumer position of each external read (numpy int64).
        self.ext_positions = ext_positions
        #: ``(position, producer positions)`` for ops reading in-run
        #: results, ascending; empty for generator-shaped traces.
        self.dep_ops = dep_ops
        #: ``(register, position)`` of the last in-run write per register.
        self.final_writes = final_writes
        #: Highest destination register (for register-file growth).
        self.max_dst = max_dst


class TracePlan:
    """Segmentation of a packed trace for the vectorized engine.

    ``run_end[i]`` is the exclusive end of the maximal batchable run
    starting at op ``i``: every op in ``[i, run_end[i])`` is simple and
    shares op ``i``'s instruction-cache line (so only the first op of a
    batch can miss in the line buffer).  For complex ops ``run_end[i]``
    equals ``i``.  ``vector_runs`` maps the start index of every full run
    of at least :data:`VECTOR_MIN_RUN` ops to its :class:`RunPlan`.
    """

    __slots__ = ("line_size", "run_end", "vector_runs")

    def __init__(self, line_size: int, run_end: List[int],
                 vector_runs: Dict[int, RunPlan]) -> None:
        self.line_size = line_size
        self.run_end = run_end
        self.vector_runs = vector_runs

    @classmethod
    def build(cls, packed: "PackedTrace", line_size: int) -> "TracePlan":
        length = packed.length
        if length == 0:
            return cls(line_size, [], {})
        if _np is not None:
            flags = _np.asarray(packed.flags, dtype=_np.int64)
            simple = (flags & COMPLEX_MASK) == 0
            lines = _np.asarray(packed.pcs, dtype=_np.int64) // line_size
            # A new batch starts wherever the chain of "simple op on the
            # same line as its predecessor" breaks.
            starts = _np.ones(length, dtype=bool)
            starts[1:] = (~simple[1:] | ~simple[:-1]
                          | (lines[1:] != lines[:-1]))
            group = _np.cumsum(starts) - 1
            ends = _np.cumsum(_np.bincount(group))
            run_end_np = _np.where(simple, ends[group],
                                   _np.arange(length, dtype=_np.int64))
            run_end = run_end_np.tolist()
        else:
            col_flags = packed.flags
            col_pcs = packed.pcs
            run_end = [0] * length
            i = length - 1
            while i >= 0:
                if col_flags[i] & COMPLEX_MASK:
                    run_end[i] = i
                    i -= 1
                    continue
                stop = i + 1
                line = col_pcs[i] // line_size
                if stop < length and run_end[stop] > stop \
                        and col_pcs[stop] // line_size == line:
                    stop = run_end[stop]
                run_end[i] = stop
                i -= 1
        vector_runs: Dict[int, RunPlan] = {}
        if _np is not None:
            index = 0
            while index < length:
                stop = run_end[index]
                if stop <= index:
                    index += 1
                    continue
                if (stop - index >= VECTOR_MIN_RUN
                        and (index == 0 or run_end[index - 1] != stop)):
                    vector_runs[index] = cls._summarise_run(packed, index,
                                                            stop)
                index = stop
        return cls(line_size, run_end, vector_runs)

    @staticmethod
    def _summarise_run(packed: "PackedTrace", start: int,
                       stop: int) -> RunPlan:
        col_srcs = packed.srcs
        col_dsts = packed.dsts
        producers: Dict[int, int] = {}
        ext_regs: List[int] = []
        ext_pos: List[int] = []
        dep_ops: List[Tuple[int, Tuple[int, ...]]] = []
        max_dst = -1
        for position, index in enumerate(range(start, stop)):
            srcs = col_srcs[index]
            if srcs:
                deps = []
                for reg in srcs:
                    producer = producers.get(reg)
                    if producer is None:
                        ext_regs.append(reg)
                        ext_pos.append(position)
                    else:
                        deps.append(producer)
                if deps:
                    dep_ops.append((position, tuple(deps)))
            dst = col_dsts[index]
            if dst >= 0:
                producers[dst] = position
                if dst > max_dst:
                    max_dst = dst
        final_writes = [(reg, position)
                        for reg, position in producers.items()]
        lat = _np.asarray(packed.latencies[start:stop], dtype=_np.int64)
        ext_positions = _np.asarray(ext_pos, dtype=_np.int64)
        return RunPlan(start, stop, lat, ext_regs, ext_positions, dep_ops,
                       final_writes, max_dst)


class PackedTrace:
    """A struct-of-arrays instruction stream.

    Parallel plain-Python lists (one slot per op) instead of one object per
    op: the core loop reads each field with a single indexed load, all op
    classification is pre-folded into the ``flags`` bitmask, and running a
    trace allocates nothing per instruction.  Variable-size payloads
    (source-register tuples, wrong-path access lists) are stored by
    reference, so packing is cheap and lossless.
    """

    __slots__ = ("length", "kinds", "flags", "pcs", "addresses", "latencies",
                 "srcs", "dsts", "targets", "wrong_paths", "sequences",
                 "_plans")

    def __init__(self, length: int, kinds: List[int], flags: List[int],
                 pcs: List[int], addresses: List[int], latencies: List[int],
                 srcs: List[tuple], dsts: List[int], targets: List[int],
                 wrong_paths: List[list], sequences: List[int]) -> None:
        self.length = length
        self.kinds = kinds
        self.flags = flags
        self.pcs = pcs
        self.addresses = addresses
        self.latencies = latencies
        self.srcs = srcs
        self.dsts = dsts
        self.targets = targets
        self.wrong_paths = wrong_paths
        self.sequences = sequences
        #: line_size -> cached TracePlan (derived data; never pickled).
        self._plans: Optional[Dict[int, "TracePlan"]] = None

    def __len__(self) -> int:
        return self.length

    def plan(self, line_size: int) -> "TracePlan":
        """The (cached) vectorized-engine segmentation for ``line_size``.

        Plans are immutable derived data, so building one in the campaign
        supervisor before workers fork shares it read-only with every
        worker for free.
        """
        plans = self._plans
        if plans is None:
            plans = self._plans = {}
        plan = plans.get(line_size)
        if plan is None:
            plan = plans[line_size] = TracePlan.build(self, line_size)
        return plan

    # Plans are excluded from pickles: the on-disk trace cache and any
    # cross-process transfer carry only the columns, and the plan rebuilds
    # (deterministically) on first use.  This also keeps pickles written
    # by this version loadable by older readers and vice versa.
    def __getstate__(self) -> Dict[str, object]:
        return {name: getattr(self, name) for name in self.__slots__
                if name != "_plans"}

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._plans = None
        for name, value in state.items():
            setattr(self, name, value)

    @classmethod
    def pack(cls, ops: Sequence[MicroOp]) -> "PackedTrace":
        """Convert a micro-op list into the packed representation."""
        length = len(ops)
        kinds = [0] * length
        flags = [0] * length
        pcs = [0] * length
        addresses = [_NONE] * length
        latencies = [0] * length
        srcs: List[tuple] = [()] * length
        dsts = [_NONE] * length
        targets = [_NONE] * length
        wrong_paths: List[list] = [None] * length  # type: ignore[list-item]
        sequences = [0] * length
        kind_flags = KIND_FLAGS
        code_of = _CODE_OF_KIND
        for i, op in enumerate(ops):
            op_flags = kind_flags[op.kind]
            if op.taken:
                op_flags |= F_TAKEN
            if op.is_context_switch:
                op_flags |= F_CONTEXT_SWITCH
            if op.is_sandbox_entry:
                op_flags |= F_SANDBOX_ENTRY
            if op.force_mispredict is not None:
                op_flags |= F_FORCE_MISPREDICT
                if op.force_mispredict:
                    op_flags |= F_FORCE_MISPREDICT_VALUE
            kinds[i] = code_of[op.kind]
            flags[i] = op_flags
            pcs[i] = op.pc
            if op.address is not None:
                addresses[i] = op.address
            latencies[i] = op.execution_latency
            if op.src_regs:
                srcs[i] = tuple(op.src_regs)
            if op.dst_reg is not None:
                dsts[i] = op.dst_reg
            if op.target is not None:
                targets[i] = op.target
            wrong_paths[i] = op.wrong_path
            sequences[i] = op.sequence
        return cls(length, kinds, flags, pcs, addresses, latencies, srcs,
                   dsts, targets, wrong_paths, sequences)

    def unpack(self) -> List[MicroOp]:
        """Rebuild the equivalent micro-op list (lossless inverse of pack)."""
        ops: List[MicroOp] = []
        for i in range(self.length):
            flags = self.flags[i]
            ops.append(MicroOp(
                kind=_KIND_CODES[self.kinds[i]],
                pc=self.pcs[i],
                sequence=self.sequences[i],
                address=None if self.addresses[i] == _NONE
                else self.addresses[i],
                src_regs=self.srcs[i],
                dst_reg=None if self.dsts[i] == _NONE else self.dsts[i],
                execution_latency=self.latencies[i],
                taken=bool(flags & F_TAKEN),
                target=None if self.targets[i] == _NONE else self.targets[i],
                force_mispredict=(bool(flags & F_FORCE_MISPREDICT_VALUE)
                                  if flags & F_FORCE_MISPREDICT else None),
                wrong_path=list(self.wrong_paths[i]),
                is_context_switch=bool(flags & F_CONTEXT_SWITCH),
                is_sandbox_entry=bool(flags & F_SANDBOX_ENTRY),
            ))
        return ops

    def op(self, index: int) -> MicroOp:
        """Materialise one op (debugging/inspection helper)."""
        flags = self.flags[index]
        return MicroOp(
            kind=_KIND_CODES[self.kinds[index]],
            pc=self.pcs[index],
            sequence=self.sequences[index],
            address=None if self.addresses[index] == _NONE
            else self.addresses[index],
            src_regs=self.srcs[index],
            dst_reg=None if self.dsts[index] == _NONE else self.dsts[index],
            execution_latency=self.latencies[index],
            taken=bool(flags & F_TAKEN),
            target=None if self.targets[index] == _NONE
            else self.targets[index],
            force_mispredict=(bool(flags & F_FORCE_MISPREDICT_VALUE)
                              if flags & F_FORCE_MISPREDICT else None),
            wrong_path=list(self.wrong_paths[index]),
            is_context_switch=bool(flags & F_CONTEXT_SWITCH),
            is_sandbox_entry=bool(flags & F_SANDBOX_ENTRY),
        )


@dataclass
class Trace:
    """One thread's instruction stream."""

    benchmark: str
    thread_id: int
    process_id: int
    ops: List[MicroOp] = field(default_factory=list)
    #: Cached packed view; built lazily (or eagerly by the generator).
    _packed: Optional[PackedTrace] = field(default=None, repr=False,
                                           compare=False)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self.ops)

    def packed(self) -> PackedTrace:
        """The struct-of-arrays view of this trace (cached).

        The cache is invalidated when ``ops`` changes length; callers that
        mutate ops in place should call :meth:`invalidate_packed`.
        """
        if self._packed is None or self._packed.length != len(self.ops):
            self._packed = PackedTrace.pack(self.ops)
        return self._packed

    def invalidate_packed(self) -> None:
        self._packed = None

    def summary(self) -> Dict[str, float]:
        return summarize_trace(self.ops)


@dataclass
class WorkloadTraces:
    """All threads of one benchmark run."""

    benchmark: str
    suite: str
    traces: List[Trace] = field(default_factory=list)

    @property
    def num_threads(self) -> int:
        return len(self.traces)

    def total_instructions(self) -> int:
        return sum(len(trace) for trace in self.traces)

    def thread(self, index: int) -> Trace:
        return self.traces[index]

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)
