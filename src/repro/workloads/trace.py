"""Trace containers.

A :class:`Trace` is the unit of work a core executes: an ordered list of
micro-ops plus the metadata the experiment harness needs (which benchmark
and thread it models, which process it belongs to).  Multi-threaded
workloads (Parsec) are represented as a :class:`WorkloadTraces` bundle with
one trace per thread, all sharing one process/address space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

from repro.cpu.instructions import MicroOp, summarize_trace


@dataclass
class Trace:
    """One thread's instruction stream."""

    benchmark: str
    thread_id: int
    process_id: int
    ops: List[MicroOp] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[MicroOp]:
        return iter(self.ops)

    def summary(self) -> Dict[str, float]:
        return summarize_trace(self.ops)


@dataclass
class WorkloadTraces:
    """All threads of one benchmark run."""

    benchmark: str
    suite: str
    traces: List[Trace] = field(default_factory=list)

    @property
    def num_threads(self) -> int:
        return len(self.traces)

    def total_instructions(self) -> int:
        return sum(len(trace) for trace in self.traces)

    def thread(self, index: int) -> Trace:
        return self.traces[index]

    def __iter__(self) -> Iterator[Trace]:
        return iter(self.traces)
