"""Per-benchmark workload profiles.

The paper evaluates on SPEC CPU2006 (26 single-threaded workloads, Figure 3,
7 and 9) and Parsec (7 four-threaded workloads, Figures 4, 5, 6 and 8).  We
cannot run the original binaries, so each benchmark is modelled as a
:class:`WorkloadProfile`: a compact description of the characteristics that
drive the paper's per-benchmark results —

* the instruction mix and the size of the data working set;
* spatial locality (sequential streaming) and temporal locality (short-
  distance reuse), which determine filter-cache and L1 hit rates;
* memory-level parallelism (how many concurrent, distinct cache lines the
  load stream touches), which determines how sensitive a workload is to the
  filter-cache *size* (Figure 5: streamcluster, freqmine) and to losing
  write-through data;
* how regular the address stream is (``streaming``), which determines how
  much the stride prefetcher helps and how sensitive the workload is to
  commit-time prefetch training (lbm and bwaves gain, leslie3d and
  cactusADM lose timeliness);
* the conflict-mapping behaviour (``set_conflict_pressure``), which models
  cactusADM-style power-of-two strides that thrash a low-associativity
  filter cache (Figure 6);
* branch behaviour (how predictable branches are, how much wrong-path memory
  traffic a misprediction creates);
* pointer chasing (dependent loads), which is what makes STT expensive on
  astar, omnetpp, mcf and canneal;
* the instruction footprint, which is what makes the *instruction* filter
  cache costly for omnetpp, namd and sjeng;
* store intensity and how often stores touch data that is not already held
  privately, which drives the filter-cache invalidation broadcasts of
  Figure 7;
* for Parsec, the amount of read/write sharing between the four threads.

The numbers are calibrated qualitatively from the published characteristics
of the benchmarks and tuned so that the relative shapes of the paper's
figures emerge from the simulator; they are not measurements of the real
binaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class WorkloadProfile:
    """Synthetic model of one benchmark."""

    name: str
    suite: str = "spec2006"
    # -- instruction mix (fractions of the dynamic instruction stream) -------
    load_fraction: float = 0.25
    store_fraction: float = 0.10
    branch_fraction: float = 0.12
    fp_fraction: float = 0.05
    mul_fraction: float = 0.02
    # -- data-side behaviour ---------------------------------------------------
    working_set_bytes: int = 256 * KIB
    hot_set_bytes: int = 16 * KIB
    spatial_locality: float = 0.45
    temporal_locality: float = 0.35
    streaming: float = 0.2
    pointer_chase_fraction: float = 0.05
    concurrent_streams: int = 4
    set_conflict_pressure: float = 0.0
    store_private_fraction: float = 0.75
    # -- control-flow behaviour ---------------------------------------------------
    branch_predictability: float = 0.94
    loop_bias: float = 0.85
    wrong_path_loads: float = 1.5
    # -- instruction-side behaviour -------------------------------------------------
    instruction_footprint_bytes: int = 12 * KIB
    hot_code_fraction: float = 0.8
    # -- system interaction -----------------------------------------------------------
    syscall_rate: float = 0.0001
    # -- multithreading (Parsec) ---------------------------------------------------------
    num_threads: int = 1
    shared_fraction: float = 0.0
    shared_working_set_bytes: int = 0
    shared_write_fraction: float = 0.1
    # -- dependency structure ----------------------------------------------------------------
    load_use_fraction: float = 0.5

    def __post_init__(self) -> None:
        total_mem = self.load_fraction + self.store_fraction
        if total_mem >= 0.9:
            raise ValueError("memory fraction unrealistically high")
        for probability_name in ("spatial_locality", "temporal_locality",
                                 "streaming", "pointer_chase_fraction",
                                 "branch_predictability", "shared_fraction"):
            value = getattr(self, probability_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{probability_name} must be a probability")

    def scaled_for_sample(self, instructions: int,
                          reference: int = 20000) -> "WorkloadProfile":
        """Scale the working sets to a short instruction sample.

        The paper simulates 1-billion-instruction samples; our samples are
        four to five orders of magnitude shorter.  To keep cache hit rates
        (rather than compulsory misses) the dominant effect, the working-set
        and footprint sizes are scaled with the sample length, with a floor
        so small benchmarks keep their identity.
        """
        if instructions >= reference:
            return self
        scale = max(0.1, instructions / reference)
        return replace(
            self,
            working_set_bytes=max(8 * KIB,
                                  int(self.working_set_bytes * scale)),
            hot_set_bytes=max(2 * KIB, int(self.hot_set_bytes * scale)),
            shared_working_set_bytes=max(
                4 * KIB if self.shared_working_set_bytes else 0,
                int(self.shared_working_set_bytes * scale)),
            instruction_footprint_bytes=max(
                2 * KIB, int(self.instruction_footprint_bytes * scale)))


def _spec(name: str, **overrides) -> WorkloadProfile:
    return WorkloadProfile(name=name, suite="spec2006", **overrides)


def _parsec(name: str, **overrides) -> WorkloadProfile:
    defaults = dict(num_threads=4, shared_fraction=0.25,
                    shared_working_set_bytes=128 * KIB,
                    syscall_rate=0.0002)
    defaults.update(overrides)
    return WorkloadProfile(name=name, suite="parsec", **defaults)


#: The 26 SPEC CPU2006 workloads of Figures 3, 7 and 9.
SPEC2006_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile for profile in [
        _spec("astar", load_fraction=0.30, store_fraction=0.08,
              branch_fraction=0.16, working_set_bytes=2 * MIB,
              hot_set_bytes=48 * KIB, pointer_chase_fraction=0.35,
              temporal_locality=0.45, spatial_locality=0.25,
              branch_predictability=0.90, instruction_footprint_bytes=10 * KIB,
              load_use_fraction=0.7, store_private_fraction=0.6),
        _spec("bwaves", load_fraction=0.38, store_fraction=0.09,
              branch_fraction=0.04, fp_fraction=0.30,
              working_set_bytes=8 * MIB, hot_set_bytes=256 * KIB,
              streaming=0.85, spatial_locality=0.55, temporal_locality=0.10,
              concurrent_streams=14, branch_predictability=0.985,
              wrong_path_loads=2.5, instruction_footprint_bytes=6 * KIB,
              store_private_fraction=0.25),
        _spec("bzip2", load_fraction=0.26, store_fraction=0.11,
              branch_fraction=0.15, working_set_bytes=1 * MIB,
              hot_set_bytes=64 * KIB, temporal_locality=0.45,
              spatial_locality=0.35, branch_predictability=0.91,
              instruction_footprint_bytes=8 * KIB),
        _spec("cactusADM", load_fraction=0.36, store_fraction=0.12,
              branch_fraction=0.03, fp_fraction=0.35,
              working_set_bytes=4 * MIB, hot_set_bytes=128 * KIB,
              streaming=0.65, spatial_locality=0.40, temporal_locality=0.20,
              concurrent_streams=10, set_conflict_pressure=0.5,
              branch_predictability=0.99, instruction_footprint_bytes=14 * KIB,
              store_private_fraction=0.45),
        _spec("calculix", load_fraction=0.30, store_fraction=0.09,
              branch_fraction=0.06, fp_fraction=0.30,
              working_set_bytes=512 * KIB, hot_set_bytes=32 * KIB,
              temporal_locality=0.50, spatial_locality=0.40,
              branch_predictability=0.97, instruction_footprint_bytes=12 * KIB),
        _spec("gamess", load_fraction=0.32, store_fraction=0.10,
              branch_fraction=0.08, fp_fraction=0.30,
              working_set_bytes=256 * KIB, hot_set_bytes=24 * KIB,
              temporal_locality=0.60, spatial_locality=0.40,
              branch_predictability=0.96, instruction_footprint_bytes=20 * KIB),
        _spec("gcc", load_fraction=0.27, store_fraction=0.13,
              branch_fraction=0.20, working_set_bytes=2 * MIB,
              hot_set_bytes=96 * KIB, temporal_locality=0.40,
              spatial_locality=0.30, branch_predictability=0.92,
              instruction_footprint_bytes=32 * KIB, store_private_fraction=0.4,
              pointer_chase_fraction=0.15),
        _spec("GemsFDTD", load_fraction=0.37, store_fraction=0.11,
              branch_fraction=0.04, fp_fraction=0.32,
              working_set_bytes=6 * MIB, hot_set_bytes=192 * KIB,
              streaming=0.7, spatial_locality=0.45, temporal_locality=0.15,
              concurrent_streams=10, branch_predictability=0.985,
              instruction_footprint_bytes=10 * KIB,
              store_private_fraction=0.35),
        _spec("gobmk", load_fraction=0.26, store_fraction=0.12,
              branch_fraction=0.19, working_set_bytes=512 * KIB,
              hot_set_bytes=40 * KIB, temporal_locality=0.45,
              spatial_locality=0.30, branch_predictability=0.88,
              wrong_path_loads=2.0, instruction_footprint_bytes=24 * KIB),
        _spec("gromacs", load_fraction=0.30, store_fraction=0.10,
              branch_fraction=0.07, fp_fraction=0.32,
              working_set_bytes=384 * KIB, hot_set_bytes=32 * KIB,
              temporal_locality=0.55, spatial_locality=0.40,
              branch_predictability=0.96, instruction_footprint_bytes=12 * KIB),
        _spec("h264ref", load_fraction=0.33, store_fraction=0.13,
              branch_fraction=0.10, working_set_bytes=512 * KIB,
              hot_set_bytes=48 * KIB, temporal_locality=0.55,
              spatial_locality=0.45, branch_predictability=0.94,
              instruction_footprint_bytes=18 * KIB),
        _spec("hmmer", load_fraction=0.34, store_fraction=0.14,
              branch_fraction=0.08, working_set_bytes=192 * KIB,
              hot_set_bytes=24 * KIB, temporal_locality=0.60,
              spatial_locality=0.50, branch_predictability=0.97,
              instruction_footprint_bytes=8 * KIB),
        _spec("lbm", load_fraction=0.35, store_fraction=0.16,
              branch_fraction=0.02, fp_fraction=0.30,
              working_set_bytes=8 * MIB, hot_set_bytes=256 * KIB,
              streaming=0.9, spatial_locality=0.65, temporal_locality=0.10,
              concurrent_streams=8, branch_predictability=0.995,
              wrong_path_loads=2.0, instruction_footprint_bytes=4 * KIB,
              store_private_fraction=0.2),
        _spec("leslie3d", load_fraction=0.37, store_fraction=0.11,
              branch_fraction=0.04, fp_fraction=0.32,
              working_set_bytes=5 * MIB, hot_set_bytes=160 * KIB,
              streaming=0.8, spatial_locality=0.50, temporal_locality=0.12,
              concurrent_streams=12, branch_predictability=0.99,
              instruction_footprint_bytes=8 * KIB,
              store_private_fraction=0.3),
        _spec("libquantum", load_fraction=0.33, store_fraction=0.10,
              branch_fraction=0.13, working_set_bytes=4 * MIB,
              hot_set_bytes=192 * KIB, streaming=0.9, spatial_locality=0.6,
              temporal_locality=0.08, concurrent_streams=4,
              branch_predictability=0.99, instruction_footprint_bytes=4 * KIB,
              store_private_fraction=0.3),
        _spec("mcf", load_fraction=0.35, store_fraction=0.09,
              branch_fraction=0.17, working_set_bytes=8 * MIB,
              hot_set_bytes=256 * KIB, pointer_chase_fraction=0.45,
              temporal_locality=0.25, spatial_locality=0.15,
              branch_predictability=0.90, wrong_path_loads=2.5,
              instruction_footprint_bytes=6 * KIB, load_use_fraction=0.75,
              store_private_fraction=0.35),
        _spec("milc", load_fraction=0.36, store_fraction=0.12,
              branch_fraction=0.03, fp_fraction=0.34,
              working_set_bytes=6 * MIB, hot_set_bytes=192 * KIB,
              streaming=0.7, spatial_locality=0.45, temporal_locality=0.12,
              concurrent_streams=8, branch_predictability=0.99,
              instruction_footprint_bytes=8 * KIB,
              store_private_fraction=0.3),
        _spec("namd", load_fraction=0.31, store_fraction=0.08,
              branch_fraction=0.05, fp_fraction=0.36,
              working_set_bytes=384 * KIB, hot_set_bytes=32 * KIB,
              temporal_locality=0.55, spatial_locality=0.40,
              branch_predictability=0.97,
              instruction_footprint_bytes=36 * KIB, hot_code_fraction=0.55),
        _spec("omnetpp", load_fraction=0.31, store_fraction=0.15,
              branch_fraction=0.18, working_set_bytes=2 * MIB,
              hot_set_bytes=96 * KIB, pointer_chase_fraction=0.40,
              temporal_locality=0.40, spatial_locality=0.20,
              branch_predictability=0.92, wrong_path_loads=2.0,
              instruction_footprint_bytes=44 * KIB, hot_code_fraction=0.5,
              load_use_fraction=0.7, store_private_fraction=0.5),
        _spec("povray", load_fraction=0.30, store_fraction=0.09,
              branch_fraction=0.13, fp_fraction=0.25,
              working_set_bytes=96 * KIB, hot_set_bytes=12 * KIB,
              temporal_locality=0.72, spatial_locality=0.45,
              branch_predictability=0.94,
              instruction_footprint_bytes=24 * KIB),
        _spec("sjeng", load_fraction=0.24, store_fraction=0.09,
              branch_fraction=0.19, working_set_bytes=384 * KIB,
              hot_set_bytes=48 * KIB, temporal_locality=0.40,
              spatial_locality=0.25, branch_predictability=0.89,
              wrong_path_loads=2.0, instruction_footprint_bytes=34 * KIB,
              hot_code_fraction=0.55),
        _spec("soplex", load_fraction=0.33, store_fraction=0.08,
              branch_fraction=0.14, fp_fraction=0.20,
              working_set_bytes=3 * MIB, hot_set_bytes=128 * KIB,
              temporal_locality=0.35, spatial_locality=0.35,
              pointer_chase_fraction=0.15, branch_predictability=0.93,
              instruction_footprint_bytes=16 * KIB,
              store_private_fraction=0.5),
        _spec("sphinx3", load_fraction=0.34, store_fraction=0.07,
              branch_fraction=0.10, fp_fraction=0.25,
              working_set_bytes=1 * MIB, hot_set_bytes=64 * KIB,
              temporal_locality=0.45, spatial_locality=0.45, streaming=0.4,
              branch_predictability=0.95,
              instruction_footprint_bytes=12 * KIB),
        _spec("tonto", load_fraction=0.31, store_fraction=0.11,
              branch_fraction=0.09, fp_fraction=0.30,
              working_set_bytes=256 * KIB, hot_set_bytes=24 * KIB,
              temporal_locality=0.55, spatial_locality=0.40,
              branch_predictability=0.96,
              instruction_footprint_bytes=26 * KIB),
        _spec("xalancbmk", load_fraction=0.30, store_fraction=0.11,
              branch_fraction=0.21, working_set_bytes=1 * MIB,
              hot_set_bytes=64 * KIB, pointer_chase_fraction=0.25,
              temporal_locality=0.45, spatial_locality=0.25,
              branch_predictability=0.93,
              instruction_footprint_bytes=30 * KIB, load_use_fraction=0.65),
        _spec("zeusmp", load_fraction=0.35, store_fraction=0.12,
              branch_fraction=0.04, fp_fraction=0.33,
              working_set_bytes=6 * MIB, hot_set_bytes=192 * KIB,
              streaming=0.6, spatial_locality=0.40, temporal_locality=0.15,
              concurrent_streams=12, set_conflict_pressure=0.3,
              branch_predictability=0.985,
              instruction_footprint_bytes=22 * KIB,
              store_private_fraction=0.3),
    ]
}


#: The 7 Parsec workloads of Figures 4, 5, 6 and 8 (4 threads, simsmall).
PARSEC_PROFILES: Dict[str, WorkloadProfile] = {
    profile.name: profile for profile in [
        _parsec("blackscholes", load_fraction=0.28, store_fraction=0.08,
                branch_fraction=0.08, fp_fraction=0.35,
                working_set_bytes=64 * KIB, hot_set_bytes=4 * KIB,
                temporal_locality=0.78, spatial_locality=0.55,
                branch_predictability=0.97, shared_fraction=0.10,
                instruction_footprint_bytes=3 * KIB, load_use_fraction=0.7,
                set_conflict_pressure=0.15),
        _parsec("canneal", load_fraction=0.32, store_fraction=0.09,
                branch_fraction=0.14, working_set_bytes=4 * MIB,
                hot_set_bytes=128 * KIB, pointer_chase_fraction=0.40,
                temporal_locality=0.30, spatial_locality=0.15,
                branch_predictability=0.92, shared_fraction=0.35,
                shared_working_set_bytes=512 * KIB, load_use_fraction=0.7,
                instruction_footprint_bytes=8 * KIB,
                store_private_fraction=0.4, set_conflict_pressure=0.2),
        _parsec("ferret", load_fraction=0.30, store_fraction=0.11,
                branch_fraction=0.13, fp_fraction=0.15,
                working_set_bytes=1 * MIB, hot_set_bytes=48 * KIB,
                temporal_locality=0.50, spatial_locality=0.40,
                branch_predictability=0.94, shared_fraction=0.30,
                shared_working_set_bytes=256 * KIB,
                instruction_footprint_bytes=20 * KIB,
                store_private_fraction=0.5),
        _parsec("fluidanimate", load_fraction=0.31, store_fraction=0.12,
                branch_fraction=0.10, fp_fraction=0.28,
                working_set_bytes=512 * KIB, hot_set_bytes=16 * KIB,
                temporal_locality=0.65, spatial_locality=0.45,
                branch_predictability=0.95, shared_fraction=0.30,
                shared_working_set_bytes=256 * KIB,
                instruction_footprint_bytes=12 * KIB, load_use_fraction=0.65,
                store_private_fraction=0.5, set_conflict_pressure=0.25),
        _parsec("freqmine", load_fraction=0.33, store_fraction=0.10,
                branch_fraction=0.16, working_set_bytes=2 * MIB,
                hot_set_bytes=96 * KIB, temporal_locality=0.55,
                spatial_locality=0.30, pointer_chase_fraction=0.20,
                concurrent_streams=12, branch_predictability=0.93,
                shared_fraction=0.25, shared_working_set_bytes=256 * KIB,
                instruction_footprint_bytes=14 * KIB,
                load_use_fraction=0.65),
        _parsec("streamcluster", load_fraction=0.36, store_fraction=0.06,
                branch_fraction=0.10, fp_fraction=0.20,
                working_set_bytes=2 * MIB, hot_set_bytes=16 * KIB,
                streaming=0.55, spatial_locality=0.40, temporal_locality=0.55,
                concurrent_streams=14, branch_predictability=0.96,
                shared_fraction=0.35, shared_working_set_bytes=512 * KIB,
                instruction_footprint_bytes=4 * KIB, load_use_fraction=0.7,
                store_private_fraction=0.4, set_conflict_pressure=0.25),
        _parsec("swaptions", load_fraction=0.27, store_fraction=0.09,
                branch_fraction=0.09, fp_fraction=0.35,
                working_set_bytes=96 * KIB, hot_set_bytes=6 * KIB,
                temporal_locality=0.75, spatial_locality=0.50,
                branch_predictability=0.96, shared_fraction=0.08,
                instruction_footprint_bytes=6 * KIB, load_use_fraction=0.65),
    ]
}


def spec_benchmarks() -> List[str]:
    """Benchmark names in the order Figure 3 plots them."""
    return list(SPEC2006_PROFILES)


def parsec_benchmarks() -> List[str]:
    """Benchmark names in the order Figure 4 plots them."""
    return list(PARSEC_PROFILES)


def get_profile(name: str):
    """Look a profile up by benchmark (or co-run mix) name.

    Returns a :class:`WorkloadProfile` for SPEC/Parsec names and a
    :class:`~repro.workloads.mixes.MixProfile` for multi-programmed mixes;
    both carry ``name``, ``suite`` and ``num_threads``, which is all the
    harness layers rely on.
    """
    if name in SPEC2006_PROFILES:
        return SPEC2006_PROFILES[name]
    if name in PARSEC_PROFILES:
        return PARSEC_PROFILES[name]
    from repro.workloads.mixes import MIX_PROFILES  # lazy: avoids a cycle
    if name in MIX_PROFILES:
        return MIX_PROFILES[name]
    raise KeyError(f"unknown benchmark: {name!r}")
