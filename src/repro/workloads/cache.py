"""Content-hash-keyed caching of generated workload traces.

Generating a workload trace is pure: the same (profile, instructions, seed,
process_id) always produces the same instruction stream.  Campaigns exploit
the same property for *results* via :mod:`repro.harness.store`; this module
applies it one layer down, to the traces themselves — a suite × config ×
seed sweep runs every benchmark under several protection schemes, and
without a cache each scheme regenerates an identical trace.

Three tiers, mirroring the result store:

* a fork-inherited **shared registry** of pre-materialised workloads
  (:func:`materialize_shared_traces`): the campaign parent generates each
  distinct trace once — packed columns and execution plans included —
  *before* the worker pool forks, so every worker attaches to the same
  read-only copy-on-write pages instead of re-generating or re-unpickling
  traces per process.  Disable with ``REPRO_SHARED_TRACES=off``;
* an in-process LRU of recently generated workloads (always on), sized by
  ``MEMORY_ENTRIES`` so worker memory stays bounded;
* an optional on-disk tier enabled by pointing the ``REPRO_TRACE_CACHE``
  environment variable at a directory; entries are pickled per-key files
  written atomically, so parallel campaign workers share generated traces
  without contention.

Set ``REPRO_TRACE_CACHE=off`` to disable the LRU and disk tiers entirely
(fresh generation on every call — useful for benchmarking the generator
itself); the shared registry is separate and only ever filled explicitly.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import itertools
import json
import logging
import os
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import Any, Optional

from repro.telemetry.log import get_logger, log_event
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.trace import WorkloadTraces

#: Environment variable: a directory enables the on-disk tier, ``off`` (or
#: ``none``/``0``/``disabled``) disables caching altogether, unset/empty
#: keeps the in-memory tier only.
TRACE_CACHE_ENV = "REPRO_TRACE_CACHE"

#: Environment variable: set to ``off`` (or ``none``/``0``/``disabled``/
#: ``false``) to stop campaigns from pre-materialising traces into the
#: fork-inherited shared registry (default: enabled).
SHARED_TRACES_ENV = "REPRO_SHARED_TRACES"

#: Bump when the trace layout changes; stale on-disk entries are ignored.
TRACE_CACHE_VERSION = 1

#: Workloads kept in the in-process LRU tier.
MEMORY_ENTRIES = 8

_DISABLED_VALUES = frozenset({"off", "none", "0", "disabled", "false"})

#: Distinguishes temporary files written by concurrent threads of one
#: process; the pid distinguishes processes.
_TMP_COUNTER = itertools.count()


def _jsonable(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def trace_key(profile: WorkloadProfile, instructions: int, seed: int,
              process_id: int) -> str:
    """Content hash identifying one generated workload.

    Covers the full profile (not just its name, so ad-hoc profiles cannot
    collide with registry entries) plus every generation parameter.
    """
    payload = {
        "profile": _jsonable(profile),
        "instructions": instructions,
        "seed": seed,
        "process_id": process_id,
        "version": TRACE_CACHE_VERSION,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


class TraceCache:
    """An in-memory LRU with an optional on-disk tier of pickled traces."""

    def __init__(self, root: Optional[os.PathLike] = None,
                 memory_entries: int = MEMORY_ENTRIES) -> None:
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self.memory_entries = max(1, memory_entries)
        self._memory: "OrderedDict[str, WorkloadTraces]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Optional[Path]:
        return None if self.root is None else self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[WorkloadTraces]:
        workload = self._memory.get(key)
        if workload is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            return workload
        path = self._path(key)
        if path is not None:
            try:
                with path.open("rb") as handle:
                    payload = pickle.load(handle)
            except FileNotFoundError:
                payload = None
            except (OSError, pickle.UnpicklingError, EOFError,
                    AttributeError, ImportError, IndexError,
                    ValueError) as error:
                # A corrupt on-disk entry would otherwise fail again on
                # every run; evict it so the next put rewrites it cleanly.
                payload = None
                try:
                    path.unlink(missing_ok=True)
                except OSError:
                    pass
                log_event(get_logger("workloads.cache"),
                          "trace_cache_evicted", _level=logging.WARNING,
                          key=key, reason=type(error).__name__)
            if (isinstance(payload, dict)
                    and payload.get("version") == TRACE_CACHE_VERSION):
                workload = payload["workload"]
                self._remember(key, workload)
                self.hits += 1
                return workload
        self.misses += 1
        return None

    def put(self, key: str, workload: WorkloadTraces) -> None:
        self._remember(key, workload)
        path = self._path(key)
        if path is None:
            return
        payload = {"version": TRACE_CACHE_VERSION, "key": key,
                   "workload": workload}
        # Unique per (process, thread-interleaving) so concurrent writers
        # of the same key never collide on the intermediate file; the
        # leading dot keeps it out of the ``*.pkl`` globs.
        tmp = (self.root / f".{key}.{os.getpid()}."
                           f"{next(_TMP_COUNTER)}.tmp")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            # A full or read-only disk must not break simulation.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def _remember(self, key: str, workload: WorkloadTraces) -> None:
        self._memory[key] = workload
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def clear(self) -> int:
        """Drop every cached workload (both tiers); returns entries removed."""
        removed = len(self._memory)
        self._memory.clear()
        if self.root is not None:
            for path in self.root.glob("*.pkl"):
                path.unlink()
                removed += 1
            for path in self.root.glob(".*.tmp"):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        count = len(self._memory)
        if self.root is not None:
            on_disk = {path.stem for path in self.root.glob("*.pkl")}
            count += len(on_disk - set(self._memory))
        return count


_active_cache: Optional[TraceCache] = None
_active_signature: Optional[str] = None


def active_trace_cache() -> Optional[TraceCache]:
    """The process-wide cache configured by ``REPRO_TRACE_CACHE``.

    Re-reads the environment on every call so tests (and long-lived
    sessions) can reconfigure caching without restarting the process; the
    cache instance is only rebuilt when the setting actually changes.
    """
    global _active_cache, _active_signature
    signature = os.environ.get(TRACE_CACHE_ENV, "").strip()
    if signature.lower() in _DISABLED_VALUES:
        return None
    if _active_cache is None or signature != _active_signature:
        _active_cache = TraceCache(Path(signature) if signature else None)
        _active_signature = signature
    return _active_cache


def reset_trace_cache() -> None:
    """Forget the process-wide cache (test helper)."""
    global _active_cache, _active_signature
    _active_cache = None
    _active_signature = None


# -- fork-inherited shared trace registry --------------------------------------
#
# ``multiprocessing`` with the ``fork`` start method gives child processes
# a copy-on-write view of the parent's heap.  Traces are immutable once
# generated (the harness-wide contract), so a workload materialised in the
# campaign parent *before* the pool forks is physically shared with every
# worker: the packed columns and execution plans live in pages that are
# never written, hence never copied.  Workers attach by key through
# :func:`shared_trace_lookup`; nothing is pickled, nothing is regenerated.
#
# The registry is deliberately not wired to ``REPRO_TRACE_CACHE``: it is
# only ever filled explicitly (by ``execute_cells`` just before forking)
# and emptied explicitly when the pool is gone, so its lifetime is exactly
# one campaign execution.

_shared_traces: dict = {}


def shared_traces_enabled() -> bool:
    """Whether campaigns may pre-materialise traces (default: yes)."""
    raw = os.environ.get(SHARED_TRACES_ENV, "").strip().lower()
    return raw not in _DISABLED_VALUES


def shared_trace_lookup(profile: WorkloadProfile, instructions: int,
                        seed: int, process_id: int
                        ) -> Optional[WorkloadTraces]:
    """The shared registry's entry for one generation request, if any.

    Cheap when the registry is empty (no key is hashed), which is every
    process that is not part of a shared-trace campaign.
    """
    if not _shared_traces:
        return None
    return _shared_traces.get(
        trace_key(profile, instructions, seed, process_id))


def materialize_shared_traces(requests) -> int:
    """Generate each distinct workload once, into the shared registry.

    ``requests`` is an iterable of ``(profile, instructions, seed)``
    generation requests — typically one per pending campaign cell, with
    duplicates (the same benchmark under several configurations) welcome.
    Mix profiles are expanded into their constituents, mirroring how
    :func:`~repro.workloads.mixes.generate_mix` composes them at run time.

    Each workload is generated through the ordinary cache tiers, then
    *fully materialised* — packed columns and the default execution plan
    built — so forked workers inherit finished read-only structures and
    never fault in derived data of their own.  Returns the number of
    workloads newly registered.
    """
    from repro.workloads.generator import generate_workload
    from repro.workloads.mixes import MixProfile
    from repro.workloads.trace import DEFAULT_LINE_SIZE

    flat = []
    for profile, instructions, seed in requests:
        if isinstance(profile, MixProfile):
            flat.extend((profile.member_profile(process_id), instructions,
                         seed) for process_id in range(len(profile.members)))
        else:
            flat.append((profile, instructions, seed))
    registered = 0
    for profile, instructions, seed in flat:
        key = trace_key(profile, instructions, seed, 0)
        if key in _shared_traces:
            continue
        workload = generate_workload(profile, instructions, seed=seed)
        for trace in workload:
            trace.packed().plan(DEFAULT_LINE_SIZE)
        _shared_traces[key] = workload
        registered += 1
    if registered:
        log_event(get_logger("workloads.cache"), "shared_traces_ready",
                  registered=registered, total=len(_shared_traces))
    return registered


def shared_trace_count() -> int:
    return len(_shared_traces)


def clear_shared_traces() -> int:
    """Empty the shared registry; returns the number of entries dropped.

    Called by the campaign layer once its worker pool is gone (normal
    completion, quarantine-laden completion, or interrupt): the parent's
    references are what keep the shared pages alive, and a long-lived
    process running several campaigns must not accumulate every trace it
    ever materialised.  Already-forked workers are unaffected — their
    copy-on-write view is independent of the parent's dict.
    """
    dropped = len(_shared_traces)
    _shared_traces.clear()
    return dropped
