"""A set-associative cache with MESI state and MSHRs.

This is the building block for the non-speculative L1 instruction, L1 data
and shared L2 caches.  It deliberately models only metadata (tags, state,
replacement, timing); data values never matter for the side channels the
paper studies, only the presence, state and timing of lines.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.caches.cache_line import CacheLine
from repro.caches.mshr import MSHRFile
from repro.caches.replacement import make_replacement_policy
from repro.coherence.states import CoherenceState, E, I, M, S
from repro.common.addresses import block_align
from repro.common.params import CacheConfig
from repro.common.rng import DeterministicRng
from repro.common.statistics import StatGroup


class SetAssociativeCache:
    """Tag/state array of a single cache level."""

    def __init__(self, config: CacheConfig,
                 stats: Optional[StatGroup] = None,
                 rng: Optional[DeterministicRng] = None) -> None:
        self.config = config
        self.line_size = config.line_size
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError("line size must be a power of two")
        # Precomputed address arithmetic for the hot lookup path.
        self._offset_mask = -self.line_size          # == ~(line_size - 1)
        self._line_shift = self.line_size.bit_length() - 1
        rng = rng or DeterministicRng(0)
        self._policy = make_replacement_policy(
            config.replacement, config.associativity, rng)
        self._sets: List[List[CacheLine]] = [
            [CacheLine() for _ in range(self.associativity)]
            for _ in range(self.num_sets)
        ]
        # Tag index: line address -> (set index, way) of the line installed
        # by the last fill of that address.  Entries are verified against
        # the line before use (fills and invalidations may leave them
        # stale), so lookups stay exact while running in O(1) instead of
        # scanning the set.  An address can be indexed at most once: fills
        # are the only operation that makes a line valid, and they re-index.
        self._tag_index: dict = {}
        self.mshrs = MSHRFile(config.mshrs)
        stats = stats or StatGroup(config.name)
        self.stats = stats
        self._hits = stats.counter("hits")
        self._misses = stats.counter("misses")
        self._evictions = stats.counter("evictions")
        self._writebacks = stats.counter("writebacks")
        self._invalidations = stats.counter("invalidations")
        self._fills = stats.counter("fills")
        self._prefetch_fills = stats.counter("prefetch_fills")

    # -- address helpers ---------------------------------------------------
    def line_address(self, address: int) -> int:
        return address & self._offset_mask

    def set_index_of(self, address: int) -> int:
        return (address >> self._line_shift) % self.num_sets

    def _set_for(self, address: int) -> List[CacheLine]:
        return self._sets[self.set_index_of(address)]

    # -- lookup / fill / invalidate -----------------------------------------
    def lookup(self, address: int, now: int = 0,
               update_replacement: bool = True) -> Optional[CacheLine]:
        """Return the valid line holding ``address``, or None on a miss."""
        line_addr = address & self._offset_mask
        slot = self._tag_index.get(line_addr)
        if slot is None:
            return None
        set_idx, way = slot
        line = self._sets[set_idx][way]
        if line.address != line_addr or line.state is I:
            return None
        if update_replacement:
            line.last_use = now
            self._policy.on_access(set_idx, way, now)
        return line

    def probe(self, address: int) -> Optional[CacheLine]:
        """Lookup without disturbing replacement state (used by snoops)."""
        return self.lookup(address, update_replacement=False)

    def record_hit(self) -> None:
        self._hits.increment()

    def record_miss(self) -> None:
        self._misses.increment()

    # -- observability -------------------------------------------------------
    def attach_tracer(self, tracer, unit: str,
                      core: Optional[int] = None) -> None:
        """Emit trace events for this cache's hits/misses/fills/evictions.

        The wrappers are *instance* attributes shadowing the class methods,
        so the class — and every untraced instance — keeps executing the
        plain methods with no guard at all (the zero-cost-when-disabled
        contract of :mod:`repro.telemetry`).  Hit/miss events are stamped
        with the tracer's cycle cursor; fills and evictions carry the
        fill's own timestamp.
        """
        emit = tracer.emit
        inner_hit = self.record_hit
        inner_miss = self.record_miss
        inner_fill = self.fill
        inner_invalidate = self.invalidate

        def record_hit() -> None:
            inner_hit()
            emit("cache", "hit", core=core, unit=unit)

        def record_miss() -> None:
            inner_miss()
            emit("cache", "miss", core=core, unit=unit)

        def fill(address, state, now=0, *args, **kwargs):
            line, victim = inner_fill(address, state, now, *args, **kwargs)
            emit("cache", "fill", cycle=now, core=core, address=line.address,
                 unit=unit, state=state.name)
            if victim is not None:
                emit("cache", "evict", cycle=now, core=core,
                     address=victim.address, unit=unit, dirty=victim.dirty)
            return line, victim

        def invalidate(address):
            present = inner_invalidate(address)
            if present:
                emit("cache", "invalidate", core=core,
                     address=self.line_address(address), unit=unit)
            return present

        self.record_hit = record_hit
        self.record_miss = record_miss
        self.fill = fill
        self.invalidate = invalidate

    def fill(self, address: int, state: CoherenceState, now: int = 0,
             dirty: bool = False, prefetched: bool = False,
             ready_at: int = 0,
             writeback_handler: Optional[Callable[[CacheLine], None]] = None
             ) -> Tuple[CacheLine, Optional[CacheLine]]:
        """Install ``address`` in state ``state``; returns (line, victim).

        The victim is a *copy* of the evicted line (or None); if it was dirty
        the ``writeback_handler`` is invoked so the next level can accept the
        data.
        """
        line_addr = self.line_address(address)
        cache_set = self._set_for(address)
        set_idx = self.set_index_of(address)
        existing = self.lookup(address, now)
        if existing is not None:
            existing.state = state
            existing.dirty = existing.dirty or dirty
            existing.touch(now)
            return existing, None
        # Prefer an invalid way before consulting the replacement policy.
        victim_way = None
        for way, line in enumerate(cache_set):
            if line.state is I:
                victim_way = way
                break
        if victim_way is None:
            victim_way = self._policy.victim(set_idx, cache_set)
        victim_line = cache_set[victim_way]
        victim_copy: Optional[CacheLine] = None
        old_address = victim_line.address
        if victim_line.state is not I:
            victim_copy = CacheLine(
                address=victim_line.address, state=victim_line.state,
                dirty=victim_line.dirty, last_use=victim_line.last_use,
                prefetched=victim_line.prefetched,
                committed=victim_line.committed,
                virtual_tag=victim_line.virtual_tag,
                owner_process=victim_line.owner_process,
                fill_level=victim_line.fill_level)
            self._evictions.increment()
            if victim_line.dirty:
                self._writebacks.increment()
                if writeback_handler is not None:
                    writeback_handler(victim_copy)
        if self._tag_index.get(old_address) == (set_idx, victim_way):
            del self._tag_index[old_address]
        self._tag_index[line_addr] = (set_idx, victim_way)
        victim_line.address = line_addr
        victim_line.state = state
        victim_line.dirty = dirty
        victim_line.prefetched = prefetched
        victim_line.ready_at = ready_at
        victim_line.committed = False
        victim_line.virtual_tag = None
        victim_line.owner_process = None
        victim_line.se_upgrade_pending = False
        victim_line.fill_level = None
        victim_line.insert_time = now
        victim_line.touch(now)
        self._policy.on_access(set_idx, victim_way, now)
        self._fills.increment()
        if prefetched:
            self._prefetch_fills.increment()
        return victim_line, victim_copy

    def invalidate(self, address: int) -> bool:
        """Invalidate the line holding ``address`` if present."""
        line = self.probe(address)
        if line is None:
            return False
        line.invalidate()
        self._invalidations.increment()
        return True

    def downgrade(self, address: int,
                  to_state: CoherenceState = S) -> Optional[CoherenceState]:
        """Move the line to ``to_state`` (snoop response); returns old state."""
        line = self.probe(address)
        if line is None:
            return None
        old_state = line.state
        if to_state is I:
            line.invalidate()
            self._invalidations.increment()
        else:
            line.state = to_state
        return old_state

    def upgrade(self, address: int, to_state: CoherenceState,
                now: int = 0) -> bool:
        """Promote a present line (e.g. S -> M on a committed store)."""
        line = self.lookup(address, now)
        if line is None:
            return False
        line.state = to_state
        if to_state is M:
            line.dirty = True
        return True

    def flush_all(self) -> int:
        """Invalidate every line; returns the number of lines dropped."""
        dropped = 0
        for cache_set in self._sets:
            for line in cache_set:
                if line.valid:
                    line.invalidate()
                    dropped += 1
        return dropped

    # -- introspection helpers (used heavily by tests and attacks) ----------
    def contains(self, address: int) -> bool:
        return self.probe(address) is not None

    def state_of(self, address: int) -> CoherenceState:
        line = self.probe(address)
        return line.state if line is not None else I

    def resident_lines(self) -> List[CacheLine]:
        return [line for cache_set in self._sets for line in cache_set
                if line.valid]

    def occupancy(self) -> int:
        return len(self.resident_lines())

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def invalidations(self) -> int:
        return self._invalidations.value

    def set_addresses(self, set_idx: int) -> List[int]:
        """Addresses of the valid lines in one set (attack helper)."""
        if not 0 <= set_idx < self.num_sets:
            raise IndexError("set index out of range")
        return [line.address for line in self._sets[set_idx] if line.valid]
