"""The non-speculative cache hierarchy shared by every protection mode.

This wires together the per-core private L1 instruction and data caches, the
shared L2 with its stride prefetcher, main memory, and the MESI coherence
controller.  Protection-specific memory systems (the MuonTrap filter caches,
InvisiSpec's speculative buffers, STT's delays, or the plain unprotected
system) are thin layers on top of the two entry points provided here:

* :meth:`access` — the conventional path: look up the requester's private L1
  and, on a miss, obtain the line through the coherence controller and fill
  the L1.  Used by the unprotected baseline, the insecure-L0 ablation, and
  by InvisiSpec's validation/exposure accesses.
* :meth:`read_for_filter` — the MuonTrap path: supply a line to a filter
  cache *without* filling any non-speculative cache, honouring the reduced
  coherency speculation rules.

Commit-side helpers (:meth:`commit_fill_l1`, :meth:`commit_store`,
:meth:`notify_commit_prefetch`) implement write-through-at-commit, exclusive
upgrades with filter-cache broadcasts, and commit-time prefetcher training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.caches.base_cache import SetAssociativeCache
from repro.coherence.bus import CoherenceBus
from repro.coherence.protocol import AccessOutcome, CoherenceController
from repro.coherence.snoop_filter import SnoopFilter
from repro.coherence.states import CoherenceState, E, I, M, S
from repro.common.params import SystemConfig
from repro.common.rng import DeterministicRng
from repro.common.statistics import StatGroup
from repro.memory.main_memory import MainMemory
from repro.prefetch.base import NullPrefetcher, Prefetcher, TrainingEvent
from repro.prefetch.commit_channel import (
    CommitPrefetchChannel,
    PrefetchNotification,
)
from repro.prefetch.stream import StreamPrefetcher


@dataclass(slots=True)
class HierarchyResult:
    """Outcome of one request against the non-speculative hierarchy."""

    latency: int
    hit_level: str
    nacked: bool = False
    granted_state: CoherenceState = S
    exclusive_available: bool = False
    triggered_filter_broadcast: bool = False

    @property
    def served(self) -> bool:
        return not self.nacked


class NonSpeculativeHierarchy:
    """Private L1s (+ optional private L2s) + shared LLC + memory + MESI.

    With ``config.private_l2`` unset this is the historical topology: the
    per-core L1s sit directly on the shared L2.  A co-run configuration
    gives every core a private unified L2 between its L1s and the shared
    cache, all stitched together by the same coherence bus — whose snoops
    are scoped by a conservative :class:`SnoopFilter` directory.  Private
    geometry is resolved per core through
    :meth:`~repro.common.params.SystemConfig.core_config`, so a
    heterogeneous machine can put a big core's 64 KiB L1d beside a LITTLE
    core's 32 KiB one on the same fabric.
    """

    def __init__(self, config: SystemConfig,
                 stats: Optional[StatGroup] = None,
                 rng: Optional[DeterministicRng] = None) -> None:
        self.config = config
        stats = stats or StatGroup("hierarchy")
        self.stats = stats
        rng = rng or DeterministicRng(0)
        self.memory = MainMemory(config.memory, stats=stats.child("memory"))
        self.l2 = SetAssociativeCache(config.l2, stats=stats.child("l2"),
                                      rng=rng.fork(1))
        self.snoop_filter = SnoopFilter(stats=stats.child("snoop_filter"))
        # The filter-invalidate multicast is scoped by the directory only
        # under the explicit (insecure) ablation flag; see ProtectionConfig.
        scoped_invalidate = any(
            config.core_config(core_id).protection.insecure_scoped_invalidate
            for core_id in range(config.num_cores))
        self.bus = CoherenceBus(stats=stats.child("bus"),
                                snoop_filter=self.snoop_filter,
                                scoped_filter_invalidate=scoped_invalidate)
        self.controller = CoherenceController(self.bus, self.l2, self.memory,
                                              stats=stats.child("coherence"))
        self._l1d: Dict[int, SetAssociativeCache] = {}
        self._l1i: Dict[int, SetAssociativeCache] = {}
        self._l2p: Dict[int, SetAssociativeCache] = {}
        for core_id in range(config.num_cores):
            per_core = config.core_config(core_id)
            l1d_stats = stats.child(f"core{core_id}").child("l1d")
            l1i_stats = stats.child(f"core{core_id}").child("l1i")
            self._l1d[core_id] = SetAssociativeCache(
                per_core.l1d, stats=l1d_stats, rng=rng.fork(10 + core_id))
            self._l1i[core_id] = SetAssociativeCache(
                per_core.l1i, stats=l1i_stats, rng=rng.fork(100 + core_id))
            self.bus.register_private_cache(core_id, self._l1d[core_id])
            if per_core.private_l2 is not None:
                l2p_stats = stats.child(f"core{core_id}").child("l2p")
                self._l2p[core_id] = SetAssociativeCache(
                    per_core.private_l2, stats=l2p_stats,
                    rng=rng.fork(1000 + core_id))
                self.bus.register_private_cache(core_id, self._l2p[core_id])
        self.l2_prefetcher: Prefetcher = (
            StreamPrefetcher(line_size=config.l2.line_size,
                             degree=config.l2.prefetch_degree + 1,
                             stats=stats.child("l2_prefetcher"))
            if config.l2.prefetcher == "stride" else NullPrefetcher())
        self.commit_prefetch = CommitPrefetchChannel(
            stats=stats.child("commit_prefetch"))
        self.commit_prefetch.attach(
            "l2", self.l2_prefetcher,
            lambda line, now: self._install_prefetch(line, now))
        self.commit_prefetch.attach(
            "memory", self.l2_prefetcher,
            lambda line, now: self._install_prefetch(line, now))
        self._store_commits = stats.counter("store_commits")
        self._store_filter_broadcasts = stats.counter(
            "store_filter_broadcasts",
            "committed stores requiring a filter-cache invalidate broadcast")
        # Access-time (speculative) prefetcher training sees the miss stream
        # in the order an out-of-order core issues it, not program order.
        # The small reorder buffer below emulates that jumbling; commit-time
        # notifications bypass it and train strictly in order, which is the
        # effect behind the paper's lbm result (section 6.1).
        self._speculative_train_rng = rng.fork(999)
        self._speculative_train_buffer: list = []

    # -- accessors ----------------------------------------------------------
    def l1d(self, core_id: int) -> SetAssociativeCache:
        return self._l1d[core_id]

    def l1i(self, core_id: int) -> SetAssociativeCache:
        return self._l1i[core_id]

    def private_l2(self, core_id: int) -> Optional[SetAssociativeCache]:
        """The core's private L2, or None in the shared-L2 topology."""
        return self._l2p.get(core_id)

    def line_address(self, address: int) -> int:
        return self.l2.line_address(address)

    # -- prefetch machinery ---------------------------------------------------
    def _install_prefetch(self, line_address: int, now: int) -> None:
        """Install a prefetched line into the shared L2 (non-speculative).

        Prefetches compete with demand misses for the L2's MSHRs: when the
        file is full the prefetch is dropped rather than queued, which is
        how hardware prefetchers typically behave under load.
        """
        if self.l2.probe(line_address) is not None:
            return
        if self.l2.mshrs.occupancy(now) >= self.l2.mshrs.capacity:
            return
        fill_latency = self.config.memory.access_latency
        self.l2.mshrs.allocate(line_address, now, fill_latency)
        self.l2.fill(line_address, E, now, prefetched=True,
                     ready_at=now + fill_latency,
                     writeback_handler=lambda victim: self.memory.write(
                         victim.address, now))

    def train_l2_prefetcher(self, address: int, pc: int, now: int,
                            was_miss: bool) -> None:
        """Train the L2 prefetcher from the (out-of-order) access stream.

        This is the unprotected behaviour: training events are produced by
        speculative, possibly wrong-path accesses and reach the prefetcher
        roughly in issue order.  A small reorder window models that the
        issue order of an 8-wide out-of-order core is not program order.
        """
        event = TrainingEvent(address=address, pc=pc, cycle=now,
                              was_miss=was_miss)
        self._speculative_train_buffer.append(event)
        if len(self._speculative_train_buffer) <= 3:
            return
        # Mild reordering: most events arrive in order, but nearby accesses
        # (different loop iterations in flight together) occasionally swap.
        index = self._speculative_train_rng.choice([0, 0, 0, 1, 1, 2])
        index = min(index, len(self._speculative_train_buffer) - 1)
        delivered = self._speculative_train_buffer.pop(index)
        for line in self.l2_prefetcher.train(delivered):
            self._install_prefetch(line, delivered.cycle)

    def flush_speculative_training(self, now: int) -> int:
        """Deliver every still-buffered training event (end of run).

        The reorder window above holds back the last few events; without an
        explicit flush they would silently never reach the prefetcher,
        leaving training behaviour dependent on where the run happens to
        stop.  The simulator drains this via
        :meth:`repro.cpu.interface.MemorySystem.drain`; remaining events are
        delivered in order, stamped with their original cycles.  Returns the
        number of events delivered.
        """
        delivered = 0
        buffer = self._speculative_train_buffer
        while buffer:
            event = buffer.pop(0)
            for line in self.l2_prefetcher.train(event):
                self._install_prefetch(line, event.cycle)
            delivered += 1
        return delivered

    def notify_commit_prefetch(self, line_address: int, pc: int, level: str,
                               now: int) -> None:
        """Queue a commit-time prefetch notification (MuonTrap, section 4.6)."""
        self.commit_prefetch.notify(PrefetchNotification(
            line_address=line_address, pc=pc, level=level, cycle=now))
        self.commit_prefetch.drain(now)

    # -- conventional access path ----------------------------------------------
    def access(self, core_id: int, address: int, now: int, *,
               is_store: bool = False, speculative: bool = False,
               protect_coherence: bool = False, pc: int = 0,
               instruction: bool = False, fill_l1: bool = True,
               train_prefetcher: bool = True) -> HierarchyResult:
        """Access through the private L1 (instruction or data) and below.

        This is the behaviour of an unprotected system: (wrong-path)
        speculative accesses fill the L1 and train the prefetcher like any
        other access.  Stores request ownership (Modified); loads accept
        Shared or Exclusive.
        """
        l1 = self._l1i[core_id] if instruction else self._l1d[core_id]
        line_address = l1.line_address(address)
        line = l1.lookup(line_address, now)
        if line is not None and (not is_store or line.state.is_private):
            l1.record_hit()
            latency = l1.config.hit_latency
            if line.prefetched and line.ready_at > now:
                latency += line.ready_at - now
                line.prefetched = False
            if is_store:
                line.state = M
                line.dirty = True
            return HierarchyResult(latency=latency, hit_level="l1",
                                   granted_state=line.state)
        l1.record_miss()
        mshr_entry = l1.mshrs.lookup(line_address, now)
        if mshr_entry is not None and not is_store:
            # Merge with an in-flight miss to the same line.
            latency = max(1, mshr_entry.ready_time - now)
            return HierarchyResult(latency=l1.config.hit_latency + latency,
                                   hit_level="mshr")
        l2p = self._l2p.get(core_id)
        if l2p is not None:
            pline = l2p.lookup(line_address, now)
            if pline is not None and (not is_store or pline.state.is_private):
                # Served entirely within the core's private hierarchy: no
                # bus transaction, the L1 refills from the private L2.
                l2p.record_hit()
                latency = l1.config.hit_latency + l2p.config.hit_latency
                if is_store:
                    pline.state = M
                    pline.dirty = True
                state = M if is_store else pline.state
                if fill_l1:
                    l1.fill(line_address, state, now + latency,
                            dirty=is_store,
                            writeback_handler=lambda victim:
                            self._writeback_from_l1(core_id, victim.address,
                                                    now + latency))
                return HierarchyResult(latency=latency, hit_level="l2p",
                                       granted_state=state)
            l2p.record_miss()
        if is_store:
            already_private = line is not None and line.state.is_private
            outcome = self.controller.write(
                core_id, line_address, now,
                already_private=already_private,
                # The upgrade transaction is snooped by every protected
                # filter cache on the fabric, whatever the writer's own
                # scheme (no-op unless a mixed machine registered peers).
                broadcast_to_filters=self.bus.has_peer_filter_listeners(
                    core_id))
        else:
            outcome = self.controller.read(
                core_id, line_address, now, speculative=speculative,
                protect_coherence=protect_coherence)
        if outcome.nacked:
            return HierarchyResult(latency=outcome.latency, hit_level="nack",
                                   nacked=True)
        # Loads allocate an MSHR so occupancy statistics and merge behaviour
        # are tracked; stores drain through the write buffer instead.  The
        # latency charged is the downstream latency itself: the out-of-order
        # core model accounts for overlap, so an additional structural stall
        # here would double-count contention.
        total_latency = l1.config.hit_latency + outcome.latency
        if not is_store:
            l1.mshrs.allocate(line_address, now, outcome.latency)
        if fill_l1:
            state = M if is_store else outcome.granted_state
            l1.fill(line_address, state, now + total_latency,
                    dirty=is_store,
                    writeback_handler=lambda victim: self._writeback_from_l1(
                        core_id, victim.address, now + total_latency))
            if l2p is not None:
                l2p.fill(line_address, state, now + total_latency,
                         dirty=is_store,
                         writeback_handler=lambda victim:
                         self._writeback_to_l2(victim.address,
                                               now + total_latency))
            if l2p is not None or not instruction:
                self.bus.note_fill(core_id, line_address)
        if train_prefetcher and not instruction and outcome.hit_level in (
                "l2", "memory"):
            self.train_l2_prefetcher(line_address, pc, now, was_miss=True)
        return HierarchyResult(latency=total_latency,
                               hit_level=outcome.hit_level,
                               granted_state=outcome.granted_state,
                               exclusive_available=outcome.exclusive_available)

    def _writeback_to_l2(self, line_address: int, now: int) -> None:
        self.l2.fill(line_address, M, now, dirty=True,
                     writeback_handler=lambda victim: self.memory.write(
                         victim.address, now))

    def _writeback_from_l1(self, core_id: int, line_address: int,
                           now: int) -> None:
        """A dirty L1 victim lands in the private L2 (or the shared LLC)."""
        l2p = self._l2p.get(core_id)
        if l2p is None:
            self._writeback_to_l2(line_address, now)
            return
        l2p.fill(line_address, M, now, dirty=True,
                 writeback_handler=lambda victim: self._writeback_to_l2(
                     victim.address, now))
        self.bus.note_fill(core_id, line_address)

    # -- MuonTrap filter-cache path ---------------------------------------------
    def read_for_filter(self, core_id: int, address: int, now: int, *,
                        speculative: bool = True,
                        protect_coherence: bool = True,
                        pc: int = 0, instruction: bool = False,
                        train_prefetcher_speculatively: bool = False
                        ) -> HierarchyResult:
        """Supply a line to a filter cache without filling the L1 or L2.

        The filter cache may read data from any cache on its linear path to
        memory (its own L1, the shared L2, memory) and from peers only when
        no private non-speculative cache holds the line exclusively
        (section 4.5).  ``exclusive_available`` in the result signals that an
        unprotected system would have installed the line in E, i.e. the
        filter line should be marked ``SE``.
        """
        l1 = self._l1i[core_id] if instruction else self._l1d[core_id]
        line_address = l1.line_address(address)
        line = l1.lookup(line_address, now)
        if line is not None:
            l1.record_hit()
            latency = l1.config.hit_latency
            if line.prefetched and line.ready_at > now:
                latency += line.ready_at - now
                line.prefetched = False
            return HierarchyResult(latency=latency, hit_level="l1",
                                   granted_state=S,
                                   exclusive_available=line.state.is_private)
        l1.record_miss()
        mshr_entry = l1.mshrs.lookup(line_address, now)
        if mshr_entry is not None:
            latency = max(1, mshr_entry.ready_time - now)
            return HierarchyResult(latency=l1.config.hit_latency + latency,
                                   hit_level="mshr")
        l2p = self._l2p.get(core_id)
        if l2p is not None:
            pline = l2p.lookup(line_address, now)
            if pline is not None:
                # The private L2 is on the filter cache's linear path to
                # memory, so it may supply the line (section 4.5).
                l2p.record_hit()
                latency = l1.config.hit_latency + l2p.config.hit_latency
                return HierarchyResult(
                    latency=latency, hit_level="l2p", granted_state=S,
                    exclusive_available=pline.state.is_private)
            l2p.record_miss()
        outcome = self.controller.read(core_id, line_address, now,
                                       speculative=speculative,
                                       protect_coherence=protect_coherence,
                                       fill_l2=False)
        if outcome.nacked:
            return HierarchyResult(latency=outcome.latency, hit_level="nack",
                                   nacked=True)
        l1.mshrs.allocate(line_address, now, outcome.latency)
        total_latency = l1.config.hit_latency + outcome.latency
        if (train_prefetcher_speculatively and not instruction
                and outcome.hit_level in ("l2", "memory")):
            # Only used when the commit-time prefetch protection is disabled
            # (the "fcache only" ablation points of Figures 8 and 9).
            self.train_l2_prefetcher(line_address, pc, now, was_miss=True)
        return HierarchyResult(latency=total_latency,
                               hit_level=outcome.hit_level,
                               granted_state=S,
                               exclusive_available=outcome.exclusive_available)

    # -- commit-side operations ---------------------------------------------------
    def commit_fill_l1(self, core_id: int, address: int, now: int, *,
                       exclusive: bool = False, instruction: bool = False,
                       asynchronous_reload: bool = False) -> None:
        """Write a committed filter-cache line through into the L1.

        ``exclusive`` installs the line in E and launches the asynchronous
        upgrade of section 4.5 (invalidating stale copies elsewhere,
        including other filter caches) off the critical path.
        ``asynchronous_reload`` marks fills for lines that had already been
        evicted from the filter cache: the line arrives after an L2/memory
        round trip rather than immediately.
        """
        l1 = self._l1i[core_id] if instruction else self._l1d[core_id]
        line_address = l1.line_address(address)
        l2p = self._l2p.get(core_id)
        if l1.probe(line_address) is None:
            if self.config.num_cores > 1:
                # A peer may have acquired the line privately since the
                # filter cache read it (e.g. a committed store invalidated
                # the filter copy before this commit).  Installing a Shared
                # copy next to an M/E owner would break the single-writer
                # invariant, so downgrade the owner first — asynchronously,
                # like the fill itself, so commit latency is unaffected.
                snoop = self.bus.snoop(core_id, line_address)
                if snoop.dirty_owner is not None:
                    self.bus.downgrade_core(snoop.dirty_owner, line_address,
                                            S)
                    self.l2.fill(line_address, S, now, dirty=True,
                                 writeback_handler=lambda victim:
                                 self.memory.write(victim.address, now))
                elif snoop.exclusive_owner is not None:
                    self.bus.downgrade_core(snoop.exclusive_owner,
                                            line_address, S)
            ready_at = now
            prefetched = False
            if asynchronous_reload:
                reload_latency = (self.config.l2.hit_latency
                                  if self.l2.probe(line_address) is not None
                                  else self.config.memory.access_latency)
                ready_at = now + reload_latency
                prefetched = True
            state = E if exclusive else S
            l1.fill(line_address, state, now, prefetched=prefetched,
                    ready_at=ready_at,
                    writeback_handler=lambda victim: self._writeback_from_l1(
                        core_id, victim.address, now))
            if l2p is not None and l2p.probe(line_address) is None:
                l2p.fill(line_address, state, now,
                         writeback_handler=lambda victim:
                         self._writeback_to_l2(victim.address, now))
            if l2p is not None or not instruction:
                self.bus.note_fill(core_id, line_address)
            if self.l2.probe(line_address) is None:
                # Keep the (mostly-inclusive) shared L2 aware of the line so
                # later evictions and snoops behave sensibly.
                self.l2.fill(line_address, S, now)
        if exclusive and not instruction:
            self.controller.asynchronous_exclusive_upgrade(core_id,
                                                           line_address, now)

    def commit_store(self, core_id: int, address: int, now: int, *,
                     broadcast_to_filters: bool = False) -> HierarchyResult:
        """Perform a committed store's write into the L1 (write-allocate).

        Returns the latency of obtaining ownership.  When
        ``broadcast_to_filters`` is set and the line was not already held
        privately, the exclusive upgrade additionally invalidates every other
        filter cache; the caller can read ``triggered_filter_broadcast`` to
        build Figure 7.  The multicast is also forced whenever another
        core's protected filter cache listens on the bus: it is a fabric
        property, so an unprotected writer's committed store still
        invalidates a MuonTrap peer's speculative copy on a mixed machine.
        """
        self._store_commits.increment()
        broadcast_to_filters = (broadcast_to_filters
                                or self.bus.has_peer_filter_listeners(
                                    core_id))
        l1 = self._l1d[core_id]
        line_address = l1.line_address(address)
        line = l1.lookup(line_address, now)
        already_private = line is not None and line.state.is_private
        if already_private:
            line.state = M
            line.dirty = True
            return HierarchyResult(latency=l1.config.hit_latency,
                                   hit_level="l1", granted_state=M)
        l2p = self._l2p.get(core_id)
        if l2p is not None:
            pline = l2p.lookup(line_address, now)
            if pline is not None and pline.state.is_private:
                # Ownership already held within the private hierarchy.
                pline.state = M
                pline.dirty = True
                l1.fill(line_address, M, now, dirty=True,
                        writeback_handler=lambda victim:
                        self._writeback_from_l1(core_id, victim.address, now))
                return HierarchyResult(
                    latency=l1.config.hit_latency + l2p.config.hit_latency,
                    hit_level="l2p", granted_state=M)
        outcome = self.controller.write(
            core_id, line_address, now, already_private=False,
            broadcast_to_filters=broadcast_to_filters)
        if outcome.triggered_filter_broadcast:
            self._store_filter_broadcasts.increment()
        l1.fill(line_address, M, now + outcome.latency, dirty=True,
                writeback_handler=lambda victim: self._writeback_from_l1(
                    core_id, victim.address, now + outcome.latency))
        if l2p is not None:
            l2p.fill(line_address, M, now + outcome.latency, dirty=True,
                     writeback_handler=lambda victim: self._writeback_to_l2(
                         victim.address, now + outcome.latency))
        self.bus.note_fill(core_id, line_address)
        return HierarchyResult(
            latency=l1.config.hit_latency + outcome.latency,
            hit_level=outcome.hit_level, granted_state=M,
            triggered_filter_broadcast=outcome.triggered_filter_broadcast)

    # -- statistics convenience -----------------------------------------------
    @property
    def store_commits(self) -> int:
        return self._store_commits.value

    @property
    def store_filter_broadcasts(self) -> int:
        return self._store_filter_broadcasts.value
