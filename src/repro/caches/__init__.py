"""Set-associative caches, replacement policies, MSHRs and write buffers."""

from repro.caches.base_cache import SetAssociativeCache
from repro.caches.cache_line import CacheLine
from repro.caches.hierarchy import HierarchyResult, NonSpeculativeHierarchy
from repro.caches.mshr import MSHREntry, MSHRFile
from repro.caches.replacement import (
    LRUReplacement,
    RandomReplacement,
    ReplacementPolicy,
    TreePLRUReplacement,
    make_replacement_policy,
)
from repro.caches.write_buffer import WriteBuffer

__all__ = [
    "CacheLine",
    "HierarchyResult",
    "LRUReplacement",
    "NonSpeculativeHierarchy",
    "MSHREntry",
    "MSHRFile",
    "RandomReplacement",
    "ReplacementPolicy",
    "SetAssociativeCache",
    "TreePLRUReplacement",
    "WriteBuffer",
    "make_replacement_policy",
]
