"""Replacement policies for set-associative caches.

Three policies are provided: true LRU (the default, matching the gem5
classic caches used by the paper), random replacement, and tree pseudo-LRU.
A policy chooses a victim among the lines of one set; invalid lines are
always preferred by the cache itself before the policy is consulted.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.caches.cache_line import CacheLine
from repro.common.rng import DeterministicRng


class ReplacementPolicy:
    """Interface: pick a victim way among valid candidate lines."""

    def victim(self, set_index: int, lines: Sequence[CacheLine]) -> int:
        raise NotImplementedError

    def on_access(self, set_index: int, way: int, now: int) -> None:
        """Hook called on every hit/fill; most policies need nothing here."""


class LRUReplacement(ReplacementPolicy):
    """Evict the least recently used line (by the ``last_use`` timestamp)."""

    def victim(self, set_index: int, lines: Sequence[CacheLine]) -> int:
        oldest_way = 0
        oldest_time = lines[0].last_use
        for way, line in enumerate(lines):
            if line.last_use < oldest_time:
                oldest_time = line.last_use
                oldest_way = way
        return oldest_way


class RandomReplacement(ReplacementPolicy):
    """Evict a uniformly random line."""

    def __init__(self, rng: DeterministicRng) -> None:
        self._rng = rng

    def victim(self, set_index: int, lines: Sequence[CacheLine]) -> int:
        return self._rng.randint(0, len(lines) - 1)


class TreePLRUReplacement(ReplacementPolicy):
    """Tree pseudo-LRU, as commonly implemented in hardware.

    Maintains one bit per internal node of a binary tree over the ways of a
    set.  On an access, the bits along the path to the accessed way are set
    to point *away* from it; the victim is found by following the bits.
    """

    def __init__(self, associativity: int) -> None:
        if associativity <= 0:
            raise ValueError("associativity must be positive")
        self._assoc = associativity
        self._tree_size = max(1, associativity - 1)
        self._trees: Dict[int, List[int]] = {}

    def _tree(self, set_index: int) -> List[int]:
        if set_index not in self._trees:
            self._trees[set_index] = [0] * self._tree_size
        return self._trees[set_index]

    def on_access(self, set_index: int, way: int, now: int) -> None:
        if self._assoc == 1:
            return
        tree = self._tree(set_index)
        node = 0
        low, high = 0, self._assoc
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                tree[node] = 1      # point away: next victim on the right
                node = 2 * node + 1
                high = mid
            else:
                tree[node] = 0      # point away: next victim on the left
                node = 2 * node + 2
                low = mid
            if node >= self._tree_size:
                break

    def victim(self, set_index: int, lines: Sequence[CacheLine]) -> int:
        if self._assoc == 1:
            return 0
        tree = self._tree(set_index)
        node = 0
        low, high = 0, self._assoc
        while high - low > 1:
            mid = (low + high) // 2
            if node < self._tree_size and tree[node] == 0:
                high = mid
                node = 2 * node + 1
            else:
                low = mid
                node = 2 * node + 2
        return low


def make_replacement_policy(name: str, associativity: int,
                            rng: DeterministicRng) -> ReplacementPolicy:
    """Factory used by the cache constructors."""
    name = name.lower()
    if name == "lru":
        return LRUReplacement()
    if name == "random":
        return RandomReplacement(rng)
    if name in ("plru", "tree-plru", "pseudo-lru"):
        return TreePLRUReplacement(associativity)
    raise ValueError(f"unknown replacement policy: {name!r}")
