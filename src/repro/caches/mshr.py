"""Miss status holding registers.

Each cache has a small MSHR file (4 for the L1s and filter caches, 16 for
the L2 in Table 1).  Outstanding misses to the same line merge into one
entry; when the file is full, further misses stall and the access model
charges a structural-hazard penalty.  Entries are retired lazily based on
the cycle at which their fill completes, so the model needs no central event
queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(slots=True)
class MSHREntry:
    """One outstanding miss."""

    line_address: int
    issue_time: int
    ready_time: int
    merged_requests: int = 1


class MSHRFile:
    """A bounded set of outstanding misses for one cache."""

    def __init__(self, num_entries: int) -> None:
        if num_entries <= 0:
            raise ValueError("MSHR file needs at least one entry")
        self.num_entries = num_entries
        self._entries: Dict[int, MSHREntry] = {}
        self.full_stalls = 0
        self.merges = 0
        # Lower bound on the earliest ready_time of any outstanding entry;
        # lets _expire skip the scan entirely when nothing can have retired.
        self._min_ready = 0

    def _expire(self, now: int) -> None:
        entries = self._entries
        if not entries or now < self._min_ready:
            return
        finished = [addr for addr, entry in entries.items()
                    if entry.ready_time <= now]
        for addr in finished:
            del entries[addr]
        self._min_ready = min(
            (entry.ready_time for entry in entries.values()), default=0)

    def lookup(self, line_address: int, now: int) -> Optional[MSHREntry]:
        """Return the in-flight entry for this line, if any."""
        self._expire(now)
        return self._entries.get(line_address)

    def allocate(self, line_address: int, now: int,
                 fill_latency: int) -> MSHREntry:
        """Allocate (or merge into) an entry for a miss issued at ``now``.

        Returns the entry; callers read ``ready_time`` to learn when the
        fill completes.  If the file is full the issue is delayed until the
        earliest entry retires, modelling the structural stall.
        """
        self._expire(now)
        existing = self._entries.get(line_address)
        if existing is not None:
            existing.merged_requests += 1
            self.merges += 1
            return existing
        issue_time = now
        if len(self._entries) >= self.num_entries:
            earliest = min(entry.ready_time for entry in self._entries.values())
            issue_time = max(now, earliest)
            self.full_stalls += 1
            # Retire everything that will have finished by then.
            self._expire(issue_time)
            if len(self._entries) >= self.num_entries:
                # Still full (all ready later): wait for the earliest one.
                earliest_addr = min(self._entries,
                                    key=lambda a: self._entries[a].ready_time)
                issue_time = self._entries[earliest_addr].ready_time
                del self._entries[earliest_addr]
        entry = MSHREntry(line_address=line_address, issue_time=issue_time,
                          ready_time=issue_time + fill_latency)
        if not self._entries or entry.ready_time < self._min_ready:
            self._min_ready = entry.ready_time
        self._entries[line_address] = entry
        return entry

    def occupancy(self, now: int) -> int:
        self._expire(now)
        return len(self._entries)

    @property
    def capacity(self) -> int:
        return self.num_entries
