"""Cache line metadata.

A :class:`CacheLine` carries the state every cache in the hierarchy needs
(physical tag, MESI state, dirty bit, LRU timestamp) plus the extra fields
the MuonTrap filter caches use: the *committed* bit of section 4.2, the
virtual tag of section 4.4, the ``SE`` pseudo-state flag of section 4.5 and
the fill-level tag that directs commit-time prefetch notifications
(section 4.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.coherence.states import CoherenceState, I


@dataclass(slots=True)
class CacheLine:
    """Metadata for a single cache line (the data payload is not modelled)."""

    address: int = 0
    state: CoherenceState = I
    dirty: bool = False
    last_use: int = 0
    insert_time: int = 0
    # Prefetch support: lines installed by a prefetcher are not "demanded"
    # until a real access touches them, and may still be in flight.
    prefetched: bool = False
    ready_at: int = 0
    # -- filter-cache specific fields (unused by non-speculative caches) ---
    committed: bool = False
    virtual_tag: Optional[int] = None
    owner_process: Optional[int] = None
    se_upgrade_pending: bool = False
    fill_level: Optional[str] = None

    @property
    def valid(self) -> bool:
        return self.state.is_valid

    def invalidate(self) -> None:
        """Reset the line to the invalid state, clearing all metadata."""
        self.state = I
        self.dirty = False
        self.prefetched = False
        self.committed = False
        self.virtual_tag = None
        self.owner_process = None
        self.se_upgrade_pending = False
        self.fill_level = None

    def touch(self, now: int) -> None:
        """Record a use for LRU replacement."""
        self.last_use = now
