"""A small committed-store write buffer.

Committed stores drain from the store queue into the L1 through this buffer
so that store commit does not stall the pipeline unless the buffer is full.
The timing model is coarse: each drained store occupies the buffer for the
latency of its L1 access, and a commit that finds the buffer full pays the
time until the oldest entry drains.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple


class WriteBuffer:
    """Bounded FIFO of committed stores awaiting their cache write."""

    def __init__(self, entries: int = 16) -> None:
        if entries <= 0:
            raise ValueError("write buffer needs at least one entry")
        self.entries = entries
        self._pending: Deque[Tuple[int, int]] = deque()  # (address, drain_at)
        self.full_stalls = 0

    def _drain(self, now: int) -> None:
        while self._pending and self._pending[0][1] <= now:
            self._pending.popleft()

    def push(self, address: int, now: int, drain_latency: int) -> int:
        """Insert a committed store; returns the stall (0 if buffer had room)."""
        self._drain(now)
        stall = 0
        if len(self._pending) >= self.entries:
            oldest_drain = self._pending[0][1]
            stall = max(0, oldest_drain - now)
            self.full_stalls += 1
            self._drain(now + stall)
            if len(self._pending) >= self.entries:
                self._pending.popleft()
        drain_at = now + stall + drain_latency
        self._pending.append((address, drain_at))
        return stall

    def occupancy(self, now: int) -> int:
        self._drain(now)
        return len(self._pending)
