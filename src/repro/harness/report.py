"""Reporting: normalised-execution-time tables in text, markdown and CSV.

The paper's figures all share one shape — benchmarks on the x-axis, one
series per protection scheme, a geometric-mean summary — so reporting is a
single :class:`Report` built either from a campaign result or from raw
series dictionaries (which is how the figure reproductions use it).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.statistics import geometric_mean
from repro.harness.campaign import CampaignResult, ExecutionStats

GEOMEAN_ROW = "geomean"

#: The annotation rendered in place of a value whose cell was quarantined.
FAILED_CELL = "FAILED"

#: The geomean footer of a series with no completed (positive) values —
#: e.g. every cell quarantined.  The aggregate is undefined there; the
#: historical ``0.000`` read as "this scheme is infinitely fast".
NO_GEOMEAN_CELL = "n/a"


@dataclass
class Report:
    """A benchmark × series table with geometric-mean footer."""

    benchmarks: List[str]
    #: series label -> {benchmark -> value (normalised time or rate)}
    series: Dict[str, Dict[str, float]]
    geomeans: Dict[str, float] = field(default_factory=dict)
    title: str = ""
    precision: int = 3
    #: Optional execution accounting; rendered as a footnote when present.
    stats: Optional[ExecutionStats] = None
    #: ``(benchmark, label)`` pairs whose cells were quarantined by the
    #: executor layer; rendered as ``FAILED`` instead of a value.  The
    #: geomean footer always covers the completed cells only (missing
    #: values never contribute).
    failed: Set[Tuple[str, str]] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.geomeans:
            self.geomeans = {
                label: geometric_mean([value for value in values.values()
                                       if value > 0])
                for label, values in self.series.items()}

    @classmethod
    def from_campaign(cls, result: CampaignResult, title: str = "",
                      precision: int = 3,
                      include_stats: bool = False) -> "Report":
        # Geomeans are derived from the series by __post_init__.
        return cls(benchmarks=list(result.benchmarks),
                   series=result.normalised(),
                   title=title, precision=precision,
                   stats=result.stats if include_stats else None,
                   failed=result.failed_series())

    @classmethod
    def from_campaign_constituents(cls, result: CampaignResult,
                                   title: str = "",
                                   precision: int = 3) -> "Report":
        """Mix-aware table: one row per co-run constituent (``mix:member``).

        Rows follow the campaign's benchmark order, with each mix's
        members in their per-core placement order (the order
        ``core_benchmarks`` records), so the table is invariant to how
        result dictionaries happen to iterate.
        """
        series = result.per_constituent_normalised()
        rows: List[str] = []
        seen = set()
        for values in series.values():
            for row in values:
                if row not in seen:
                    seen.add(row)
                    rows.append(row)
        # Stable overall order: campaign benchmark order first, then the
        # insertion (placement) order of each benchmark's member rows.
        rows.sort(key=lambda row: (
            result.benchmarks.index(row.split(":", 1)[0])
            if row.split(":", 1)[0] in result.benchmarks else len(
                result.benchmarks)))
        return cls(benchmarks=rows, series=series, title=title,
                   precision=precision, failed=result.failed_series())

    # -- table construction ---------------------------------------------------
    @property
    def labels(self) -> List[str]:
        return list(self.series)

    def _cell(self, benchmark: str, label: str, fmt: str) -> str:
        value = self.series[label].get(benchmark)
        if value is not None:
            return fmt.format(value)
        # Missing value: a quarantined cell renders as FAILED (mix rows
        # check their parent mix's quarantine record); anything else keeps
        # the historical zero so sparse hand-built series still render.
        base = benchmark.split(":", 1)[0]
        if (benchmark, label) in self.failed or (base, label) in self.failed:
            return FAILED_CELL
        return fmt.format(0.0)

    def _geomean_cell(self, label: str, fmt: str) -> str:
        """The footer cell for one series: a value, or ``n/a``.

        A series with no completed positive values — every cell
        quarantined, or an empty hand-built series — has no geometric
        mean; rendering the ``geometric_mean([])`` fallback of 0.0 would
        claim a measured (and absurdly good) aggregate for a scheme that
        produced no data at all.
        """
        geomean = self.geomeans.get(label)
        if geomean:
            return fmt.format(geomean)
        if any(value > 0
               for value in self.series.get(label, {}).values()):
            return fmt.format(geomean or 0.0)
        return NO_GEOMEAN_CELL

    def rows(self) -> List[List[str]]:
        """Header row, one row per benchmark, geomean footer.

        Quarantined cells render as ``FAILED``; the geomean footer is
        computed over the completed cells only, and reads ``n/a`` for a
        series with no completed cells at all.  Every renderer (text,
        markdown, CSV) goes through here, so they agree on the
        annotation.
        """
        fmt = f"{{:.{self.precision}f}}"
        header = ["benchmark"] + self.labels
        body = [[benchmark] + [self._cell(benchmark, label, fmt)
                               for label in self.labels]
                for benchmark in self.benchmarks]
        footer = [GEOMEAN_ROW] + [self._geomean_cell(label, fmt)
                                  for label in self.labels]
        return [header] + body + [footer]

    # -- renderers ------------------------------------------------------------
    def to_text(self, column_width: int = 18) -> str:
        """Fixed-width table (the historical ``format_table`` layout).

        The label column widens to the longest row name so per-constituent
        rows (``mix-pointer-stream:libquantum``) stay aligned.
        """
        rows = self.rows()
        label_width = max(column_width,
                          max(len(row[0]) for row in rows))
        text = "\n".join(
            "  ".join(f"{cell:>{label_width if index == 0 else column_width}s}"
                      for index, cell in enumerate(row))
            for row in rows)
        if self.stats is not None:
            text += f"\n\ncells: {self.stats.summary()}"
        return text

    def to_markdown(self) -> str:
        rows = self.rows()
        lines = []
        if self.title:
            lines.append(f"### {self.title}")
            lines.append("")
        lines.append("| " + " | ".join(rows[0]) + " |")
        lines.append("|" + "|".join([" --- "] + [" ---: "] * (
            len(rows[0]) - 1)) + "|")
        for row in rows[1:]:
            lines.append("| " + " | ".join(row) + " |")
        if self.stats is not None:
            lines.append("")
            lines.append(f"_cells: {self.stats.summary()}_")
        return "\n".join(lines)

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerows(self.rows())
        return buffer.getvalue()

    def render(self, fmt: str = "text") -> str:
        renderers = {"text": self.to_text, "markdown": self.to_markdown,
                     "csv": self.to_csv}
        if fmt not in renderers:
            raise ValueError(f"unknown report format: {fmt!r} "
                             f"(choose from {sorted(renderers)})")
        return renderers[fmt]()
