"""Persistent result store for campaign runs.

Every simulation cell — one benchmark under one system configuration for a
given instruction budget and seed — is identified by a stable content hash
of its inputs.  Results are written as one JSON file per cell, so

* re-running a campaign skips every cell whose result is already on disk,
  making large sweeps incremental;
* parallel workers never contend on a shared index file;
* the store survives process restarts and can be shared between the CLI,
  the benchmark harness and the examples.

The simulator itself is deterministic, which is what makes caching by input
hash sound: the same (profile, config, instructions, seed) always produces
the same :class:`~repro.sim.simulator.SimulationResult`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro.common.params import SystemConfig
from repro.cpu.core import CoreResult
from repro.sim.simulator import SimulationResult
from repro.workloads.profiles import WorkloadProfile

#: Bump when the serialised result layout changes; stale entries are ignored.
#: v2: results carry per-core clock frequencies (frequency-scaled times).
STORE_VERSION = 2


def _jsonable(value: Any) -> Any:
    """Convert dataclasses / enums / paths into plain JSON-friendly values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def config_fingerprint(config: SystemConfig) -> Dict[str, Any]:
    """A canonical, JSON-serialisable view of a system configuration."""
    return _jsonable(config)


def stable_key(profile: WorkloadProfile, config: SystemConfig,
               instructions: int, seed: int,
               warmup_fraction: float = 0.0,
               collect_stats: bool = False) -> str:
    """Content hash identifying one simulation cell.

    The hash covers everything that determines the simulation outcome — the
    full workload profile (not just its name, so ad-hoc profiles cannot
    collide with registry entries), the complete system configuration, the
    instruction budget and the seed.  The display label deliberately does
    not participate, so renaming a series does not invalidate cached
    results.
    """
    payload = {
        "profile": _jsonable(profile),
        "config": config_fingerprint(config),
        "instructions": instructions,
        "seed": seed,
        "warmup_fraction": warmup_fraction,
        "collect_stats": collect_stats,
        "version": STORE_VERSION,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    return {
        "benchmark": result.benchmark,
        "mode": result.mode,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "warmup_cycles": result.warmup_cycles,
        "stats": dict(result.stats),
        "core_results": [_jsonable(core) for core in result.core_results],
        "core_benchmarks": list(result.core_benchmarks),
        "core_warmup_cycles": list(result.core_warmup_cycles),
        "core_warmup_instructions": list(result.core_warmup_instructions),
        "core_frequencies_ghz": list(result.core_frequencies_ghz),
    }


def result_from_dict(payload: Dict[str, Any]) -> SimulationResult:
    return SimulationResult(
        benchmark=payload["benchmark"],
        mode=payload["mode"],
        cycles=payload["cycles"],
        instructions=payload["instructions"],
        warmup_cycles=payload.get("warmup_cycles", 0),
        stats=dict(payload.get("stats", {})),
        core_results=[CoreResult(**core)
                      for core in payload.get("core_results", [])],
        core_benchmarks=list(payload.get("core_benchmarks", [])),
        core_warmup_cycles=list(payload.get("core_warmup_cycles", [])),
        core_warmup_instructions=list(
            payload.get("core_warmup_instructions", [])),
        core_frequencies_ghz=list(
            payload.get("core_frequencies_ghz", [])),
    )


class ResultStore:
    """A directory of per-cell JSON result files."""

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("*.json")):
            yield path.stem

    def get(self, key: str) -> Optional[SimulationResult]:
        """Load a cached result, or ``None`` on miss / stale entry."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if payload.get("version") != STORE_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return result_from_dict(payload["result"])

    def put(self, key: str, result: SimulationResult,
            metadata: Optional[Dict[str, Any]] = None) -> None:
        """Persist one result atomically (write-then-rename)."""
        payload = {
            "version": STORE_VERSION,
            "key": key,
            "metadata": metadata or {},
            "result": result_to_dict(result),
        }
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        tmp.replace(path)

    def metadata(self, key: str) -> Dict[str, Any]:
        try:
            payload = json.loads(self._path(key).read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        return payload.get("metadata", {})

    def clear(self) -> int:
        """Delete every stored result; returns the number removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        return removed
