"""Persistent result store for campaign runs.

Every simulation cell — one benchmark under one system configuration for a
given instruction budget and seed — is identified by a stable content hash
of its inputs.  Results are written as one JSON file per cell, so

* re-running a campaign skips every cell whose result is already on disk,
  making large sweeps incremental;
* parallel workers never contend on a shared index file;
* the store survives process restarts and can be shared between the CLI,
  the benchmark harness and the examples.

The simulator itself is deterministic, which is what makes caching by input
hash sound: the same (profile, config, instructions, seed) always produces
the same :class:`~repro.sim.simulator.SimulationResult`.

The store is also the campaign harness's crash-safety anchor: writes are
atomic (a per-process-unique temporary file renamed into place with
``os.replace``, optionally fsynced via ``REPRO_STORE_FSYNC=1``), every
entry carries a sha256 integrity digest of its result payload, and reads
*evict* corrupt or torn entries instead of silently returning ``None`` —
so after any crash, re-running a campaign recomputes exactly the missing
or damaged cells and nothing else.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import itertools
import json
import logging
import os
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from repro.common.params import SystemConfig
from repro.cpu.core import CoreResult
from repro.sim.simulator import SimulationResult
from repro.telemetry.log import get_logger, log_event
from repro.workloads.profiles import WorkloadProfile

#: Bump when the serialised result layout changes; stale entries are ignored.
#: v2: results carry per-core clock frequencies (frequency-scaled times).
#: v3: entries carry a sha256 integrity digest of the result payload, so
#: torn writes are detected and evicted rather than half-trusted.
STORE_VERSION = 3

#: Environment variable: truthy values fsync entries before rename (and the
#: directory after), trading write latency for power-loss durability.
STORE_FSYNC_ENV = "REPRO_STORE_FSYNC"

#: Distinguishes temporary files written by concurrent threads of one
#: process; the pid distinguishes processes.
_TMP_COUNTER = itertools.count()


def _jsonable(value: Any) -> Any:
    """Convert dataclasses / enums / paths into plain JSON-friendly values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def config_fingerprint(config: SystemConfig) -> Dict[str, Any]:
    """A canonical, JSON-serialisable view of a system configuration.

    Engine selection (``use_vectorized``) is excluded: the engines are
    golden-tested bit-identical, so the choice cannot change the outcome
    and including it would needlessly split stored results per engine.
    """
    fingerprint = _jsonable(config)
    fingerprint.pop("use_vectorized", None)
    return fingerprint


def stable_key(profile: WorkloadProfile, config: SystemConfig,
               instructions: int, seed: int,
               warmup_fraction: float = 0.0,
               collect_stats: bool = False) -> str:
    """Content hash identifying one simulation cell.

    The hash covers everything that determines the simulation outcome — the
    full workload profile (not just its name, so ad-hoc profiles cannot
    collide with registry entries), the complete system configuration, the
    instruction budget and the seed.  The display label deliberately does
    not participate, so renaming a series does not invalidate cached
    results.
    """
    payload = {
        "profile": _jsonable(profile),
        "config": config_fingerprint(config),
        "instructions": instructions,
        "seed": seed,
        "warmup_fraction": warmup_fraction,
        "collect_stats": collect_stats,
        "version": STORE_VERSION,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    return {
        "benchmark": result.benchmark,
        "mode": result.mode,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "warmup_cycles": result.warmup_cycles,
        "stats": dict(result.stats),
        "core_results": [_jsonable(core) for core in result.core_results],
        "core_benchmarks": list(result.core_benchmarks),
        "core_warmup_cycles": list(result.core_warmup_cycles),
        "core_warmup_instructions": list(result.core_warmup_instructions),
        "core_frequencies_ghz": list(result.core_frequencies_ghz),
    }


def result_from_dict(payload: Dict[str, Any]) -> SimulationResult:
    return SimulationResult(
        benchmark=payload["benchmark"],
        mode=payload["mode"],
        cycles=payload["cycles"],
        instructions=payload["instructions"],
        warmup_cycles=payload.get("warmup_cycles", 0),
        stats=dict(payload.get("stats", {})),
        core_results=[CoreResult(**core)
                      for core in payload.get("core_results", [])],
        core_benchmarks=list(payload.get("core_benchmarks", [])),
        core_warmup_cycles=list(payload.get("core_warmup_cycles", [])),
        core_warmup_instructions=list(
            payload.get("core_warmup_instructions", [])),
        core_frequencies_ghz=list(
            payload.get("core_frequencies_ghz", [])),
    )


def result_digest(result_payload: Dict[str, Any]) -> str:
    """The integrity digest stored beside (and verified against) a result."""
    canonical = json.dumps(result_payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _fsync_enabled() -> bool:
    raw = os.environ.get(STORE_FSYNC_ENV, "").strip().lower()
    return raw in ("1", "true", "yes", "on")


class ResultStore:
    """A directory of per-cell JSON result files.

    ``fsync=True`` (or ``REPRO_STORE_FSYNC=1``) makes each write durable
    against power loss, not just process crashes; the default relies on
    ``os.replace`` atomicity alone, which is what the integrity digest in
    each entry backstops — a torn write is detected and evicted on read.
    """

    def __init__(self, root: os.PathLike,
                 fsync: Optional[bool] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = _fsync_enabled() if fsync is None else fsync
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._logger = get_logger("harness.store")

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("*.json")):
            yield path.stem

    def _evict(self, key: str, reason: str) -> None:
        """Delete a damaged entry so it cannot fail again on every run."""
        try:
            self._path(key).unlink()
        except OSError:
            return
        self.evictions += 1
        log_event(self._logger, "store_evicted", _level=logging.WARNING,
                  key=key, reason=reason)

    def get(self, key: str) -> Optional[SimulationResult]:
        """Load a cached result, or ``None`` on miss / stale entry.

        Corrupt entries — unparseable JSON, a missing or mismatching
        integrity digest, an undecodable result payload — are *evicted*
        (deleted, with a logged warning), so the next campaign run
        recomputes the cell instead of tripping over the damage forever.
        Entries from older store versions are merely skipped.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except OSError:
            self.misses += 1
            return None
        except json.JSONDecodeError:
            self._evict(key, "unparseable-json")
            self.misses += 1
            return None
        if not isinstance(payload, dict) \
                or payload.get("version") != STORE_VERSION:
            self.misses += 1
            return None
        result_payload = payload.get("result")
        if not isinstance(result_payload, dict) \
                or payload.get("sha256") != result_digest(result_payload):
            self._evict(key, "integrity-mismatch")
            self.misses += 1
            return None
        try:
            result = result_from_dict(result_payload)
        except (KeyError, TypeError, ValueError):
            self._evict(key, "undecodable-result")
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult,
            metadata: Optional[Dict[str, Any]] = None) -> None:
        """Persist one result atomically (unique tmp file, then rename).

        The temporary name embeds the pid and a per-process counter, so
        concurrent workers (or threads) writing the same key never collide
        on the intermediate file; ``os.replace`` makes the last writer
        win atomically.  With :attr:`fsync` enabled the entry is synced
        before the rename and the directory after it.
        """
        result_payload = result_to_dict(result)
        payload = {
            "version": STORE_VERSION,
            "key": key,
            "metadata": metadata or {},
            "result": result_payload,
            "sha256": result_digest(result_payload),
        }
        path = self._path(key)
        tmp = self.root / (f".{key}.{os.getpid()}."
                           f"{next(_TMP_COUNTER)}.tmp")
        try:
            with tmp.open("w") as handle:
                handle.write(json.dumps(payload, sort_keys=True, indent=1))
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise
        if self.fsync:
            self._fsync_dir()

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def metadata(self, key: str) -> Dict[str, Any]:
        try:
            payload = json.loads(self._path(key).read_text())
        except (OSError, json.JSONDecodeError):
            return {}
        return payload.get("metadata", {})

    def clear(self) -> int:
        """Delete every stored result; returns the number removed.

        Stray temporary files (from writers that crashed mid-``put``) are
        swept too, without counting towards the total.
        """
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        for path in self.root.glob(".*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass
        return removed
