"""Persistent result store for campaign runs — pluggable backends.

Every simulation cell — one benchmark under one system configuration for a
given instruction budget and seed — is identified by a stable content hash
of its inputs.  Results persist under that key in one of two backends
sharing a single entry format and integrity discipline:

* :class:`ResultStore` — one JSON file per cell in a directory.  Parallel
  writers never contend on a shared index file, and the layout is
  trivially inspectable (``cat <key>.json``).
* :class:`SqliteResultStore` — one SQLite database in WAL mode.  Many
  processes (campaign supervisors, HTTP service threads, concurrent
  clients) coordinate through one file with transactional writes, which
  is what lets a widened sweep compute each missing cell exactly once
  across the whole fleet.

:func:`open_store` selects the backend (explicit argument, then the
``REPRO_STORE_BACKEND`` environment variable, then layout auto-detection)
and :func:`migrate_store` copies entries between backends, verifying each
entry's integrity digest as it goes.

The simulator itself is deterministic, which is what makes caching by input
hash sound: the same (profile, config, instructions, seed) always produces
the same :class:`~repro.sim.simulator.SimulationResult`.

The store is also the campaign harness's crash-safety anchor: writes are
atomic (a unique-tmp-then-``os.replace`` rename for the JSON backend, a
transaction for SQLite, optionally fsynced via ``REPRO_STORE_FSYNC=1``),
every entry carries a sha256 integrity digest of its result payload, and
reads *evict* corrupt or torn entries instead of silently returning
``None`` — so after any crash, re-running a campaign recomputes exactly
the missing or damaged cells and nothing else.
"""

from __future__ import annotations

import abc
import dataclasses
import enum
import hashlib
import itertools
import json
import logging
import os
import sqlite3
from contextlib import closing
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.common.params import SystemConfig
from repro.cpu.core import CoreResult
from repro.sim.simulator import SimulationResult
from repro.telemetry.log import get_logger, log_event
from repro.workloads.profiles import WorkloadProfile

#: Bump when the serialised result layout changes; stale entries are ignored.
#: v2: results carry per-core clock frequencies (frequency-scaled times).
#: v3: entries carry a sha256 integrity digest of the result payload, so
#: torn writes are detected and evicted rather than half-trusted.
STORE_VERSION = 3

#: Environment variable: truthy values fsync entries before rename (and the
#: directory after), trading write latency for power-loss durability.
STORE_FSYNC_ENV = "REPRO_STORE_FSYNC"

#: Environment variable: default result-store backend (``json`` or
#: ``sqlite``) for :func:`open_store` when no explicit backend is given.
STORE_BACKEND_ENV = "REPRO_STORE_BACKEND"

#: The recognised backend names, normalised form first.
STORE_BACKENDS = ("json", "sqlite")

#: Distinguishes temporary files written by concurrent threads of one
#: process; the pid distinguishes processes.
_TMP_COUNTER = itertools.count()


def _jsonable(value: Any) -> Any:
    """Convert dataclasses / enums / paths into plain JSON-friendly values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: _jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def config_fingerprint(config: SystemConfig) -> Dict[str, Any]:
    """A canonical, JSON-serialisable view of a system configuration.

    Engine selection (``use_vectorized``) is excluded: the engines are
    golden-tested bit-identical, so the choice cannot change the outcome
    and including it would needlessly split stored results per engine.
    """
    fingerprint = _jsonable(config)
    fingerprint.pop("use_vectorized", None)
    return fingerprint


def stable_key(profile: WorkloadProfile, config: SystemConfig,
               instructions: int, seed: int,
               warmup_fraction: float = 0.0,
               collect_stats: bool = False) -> str:
    """Content hash identifying one simulation cell.

    The hash covers everything that determines the simulation outcome — the
    full workload profile (not just its name, so ad-hoc profiles cannot
    collide with registry entries), the complete system configuration, the
    instruction budget and the seed.  The display label deliberately does
    not participate, so renaming a series does not invalidate cached
    results.
    """
    payload = {
        "profile": _jsonable(profile),
        "config": config_fingerprint(config),
        "instructions": instructions,
        "seed": seed,
        "warmup_fraction": warmup_fraction,
        "collect_stats": collect_stats,
        "version": STORE_VERSION,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    return {
        "benchmark": result.benchmark,
        "mode": result.mode,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "warmup_cycles": result.warmup_cycles,
        "stats": dict(result.stats),
        "core_results": [_jsonable(core) for core in result.core_results],
        "core_benchmarks": list(result.core_benchmarks),
        "core_warmup_cycles": list(result.core_warmup_cycles),
        "core_warmup_instructions": list(result.core_warmup_instructions),
        "core_frequencies_ghz": list(result.core_frequencies_ghz),
    }


def result_from_dict(payload: Dict[str, Any]) -> SimulationResult:
    return SimulationResult(
        benchmark=payload["benchmark"],
        mode=payload["mode"],
        cycles=payload["cycles"],
        instructions=payload["instructions"],
        warmup_cycles=payload.get("warmup_cycles", 0),
        stats=dict(payload.get("stats", {})),
        core_results=[CoreResult(**core)
                      for core in payload.get("core_results", [])],
        core_benchmarks=list(payload.get("core_benchmarks", [])),
        core_warmup_cycles=list(payload.get("core_warmup_cycles", [])),
        core_warmup_instructions=list(
            payload.get("core_warmup_instructions", [])),
        core_frequencies_ghz=list(
            payload.get("core_frequencies_ghz", [])),
    )


def result_digest(result_payload: Dict[str, Any]) -> str:
    """The integrity digest stored beside (and verified against) a result."""
    canonical = json.dumps(result_payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _fsync_enabled() -> bool:
    raw = os.environ.get(STORE_FSYNC_ENV, "").strip().lower()
    return raw in ("1", "true", "yes", "on")


#: Sentinel returned by ``load_entry`` for entries that exist but cannot
#: even be parsed (as opposed to ``None`` for entries that do not exist).
CORRUPT = object()


class StoreBackend(abc.ABC):
    """The result-store protocol both backends implement.

    Concrete backends only provide raw entry storage (``load_entry`` /
    ``store_entry`` / ``delete_entry`` / ``keys`` / ``clear``); the
    integrity discipline — version checks, sha256 digest verification,
    eviction of corrupt or torn entries — lives here, so every backend
    gives campaigns the same crash-safety guarantees.
    """

    #: Short name used by ``--store-backend`` / ``REPRO_STORE_BACKEND``.
    backend_name = "abstract"

    def __init__(self, fsync: Optional[bool] = None) -> None:
        self.fsync = _fsync_enabled() if fsync is None else fsync
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._logger = get_logger("harness.store")

    # -- raw entry storage (per backend) -----------------------------------
    @abc.abstractmethod
    def load_entry(self, key: str) -> Any:
        """The raw entry payload dict, ``None`` when absent, or
        :data:`CORRUPT` when present but unparseable."""

    @abc.abstractmethod
    def store_entry(self, key: str, payload: Dict[str, Any]) -> None:
        """Persist one raw entry payload atomically (last writer wins)."""

    @abc.abstractmethod
    def delete_entry(self, key: str) -> bool:
        """Remove one entry; ``True`` if something was removed."""

    @abc.abstractmethod
    def keys(self) -> Iterator[str]:
        """All stored keys in sorted order."""

    @abc.abstractmethod
    def clear(self) -> int:
        """Delete every stored result; returns the number removed."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One human-readable line naming the backend and its location."""

    # -- shared integrity discipline ----------------------------------------
    def __contains__(self, key: str) -> bool:
        return self.load_entry(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def _evict(self, key: str, reason: str) -> None:
        """Delete a damaged entry so it cannot fail again on every run."""
        if not self.delete_entry(key):
            return
        self.evictions += 1
        log_event(self._logger, "store_evicted", _level=logging.WARNING,
                  key=key, reason=reason)

    def get(self, key: str) -> Optional[SimulationResult]:
        """Load a cached result, or ``None`` on miss / stale entry.

        Corrupt entries — unparseable JSON, a missing or mismatching
        integrity digest, an undecodable result payload — are *evicted*
        (deleted, with a logged warning), so the next campaign run
        recomputes the cell instead of tripping over the damage forever.
        Entries from older store versions are merely skipped.
        """
        payload = self.load_entry(key)
        if payload is None:
            self.misses += 1
            return None
        if payload is CORRUPT or not isinstance(payload, dict):
            self._evict(key, "unparseable-json")
            self.misses += 1
            return None
        if payload.get("version") != STORE_VERSION:
            self.misses += 1
            return None
        result_payload = payload.get("result")
        if not isinstance(result_payload, dict) \
                or payload.get("sha256") != result_digest(result_payload):
            self._evict(key, "integrity-mismatch")
            self.misses += 1
            return None
        try:
            result = result_from_dict(result_payload)
        except (KeyError, TypeError, ValueError):
            self._evict(key, "undecodable-result")
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult,
            metadata: Optional[Dict[str, Any]] = None) -> None:
        """Persist one result atomically under its content-hash key."""
        result_payload = result_to_dict(result)
        self.store_entry(key, {
            "version": STORE_VERSION,
            "key": key,
            "metadata": metadata or {},
            "result": result_payload,
            "sha256": result_digest(result_payload),
        })

    def metadata(self, key: str) -> Dict[str, Any]:
        payload = self.load_entry(key)
        if not isinstance(payload, dict):
            return {}
        return payload.get("metadata", {})


class ResultStore(StoreBackend):
    """A directory of per-cell JSON result files (the ``json`` backend).

    ``fsync=True`` (or ``REPRO_STORE_FSYNC=1``) makes each write durable
    against power loss, not just process crashes; the default relies on
    ``os.replace`` atomicity alone, which is what the integrity digest in
    each entry backstops — a torn write is detected and evicted on read.
    """

    backend_name = "json"

    def __init__(self, root: os.PathLike,
                 fsync: Optional[bool] = None) -> None:
        super().__init__(fsync=fsync)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def describe(self) -> str:
        return f"json:{self.root}"

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("*.json")):
            yield path.stem

    def load_entry(self, key: str) -> Any:
        try:
            return json.loads(self._path(key).read_text())
        except OSError:
            return None
        except json.JSONDecodeError:
            return CORRUPT

    def delete_entry(self, key: str) -> bool:
        try:
            self._path(key).unlink()
        except OSError:
            return False
        return True

    def store_entry(self, key: str, payload: Dict[str, Any]) -> None:
        """Write one entry atomically (unique tmp file, then rename).

        The temporary name embeds the pid and a per-process counter, so
        concurrent workers (or threads) writing the same key never collide
        on the intermediate file; ``os.replace`` makes the last writer
        win atomically.  With :attr:`fsync` enabled the entry is synced
        before the rename and the directory after it.
        """
        path = self._path(key)
        tmp = self.root / (f".{key}.{os.getpid()}."
                           f"{next(_TMP_COUNTER)}.tmp")
        try:
            with tmp.open("w") as handle:
                handle.write(json.dumps(payload, sort_keys=True, indent=1))
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise
        if self.fsync:
            self._fsync_dir()

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.root, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def clear(self) -> int:
        """Delete every stored result; returns the number removed.

        Stray temporary files (from writers that crashed mid-``put``) are
        swept too, without counting towards the total.
        """
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        for path in self.root.glob(".*.tmp"):
            try:
                path.unlink()
            except OSError:
                pass
        return removed


#: Explicit alias for symmetry with :class:`SqliteResultStore`.
JsonResultStore = ResultStore


class SqliteResultStore(StoreBackend):
    """A single SQLite database in WAL mode (the ``sqlite`` backend).

    WAL journalling gives concurrent readers a consistent snapshot while
    one writer commits, which is exactly the service/campaign sharing
    pattern: many HTTP threads and campaign supervisors read, completed
    cells are inserted one transaction at a time.  A writer killed
    mid-transaction rolls back on the next open — the entry is simply
    absent, costing one recompute, never a torn row.

    Connections are opened per operation (with a busy timeout), never
    cached: the store object can be shared across threads and survives
    ``fork`` without inheriting a connection, and WAL mode is a property
    of the database file, so the one-time ``PRAGMA`` at creation sticks.
    """

    backend_name = "sqlite"

    #: Database filename inside a store root directory.
    DB_FILENAME = "results.sqlite3"

    #: Suffixes accepted as "the root *is* the database file".
    _DB_SUFFIXES = (".sqlite", ".sqlite3", ".db")

    def __init__(self, root: os.PathLike,
                 fsync: Optional[bool] = None) -> None:
        super().__init__(fsync=fsync)
        root = Path(root)
        if root.suffix in self._DB_SUFFIXES:
            self.root = root.parent
            self.path = root
        else:
            self.root = root
            self.path = root / self.DB_FILENAME
        self.root.mkdir(parents=True, exist_ok=True)
        with closing(self._connect()) as conn, conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                " key TEXT PRIMARY KEY,"
                " version INTEGER NOT NULL,"
                " sha256 TEXT NOT NULL,"
                " metadata TEXT NOT NULL,"
                " result TEXT NOT NULL)")

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        # WAL persists in the database file; re-issuing it is a no-op
        # read.  synchronous/busy_timeout are per-connection.
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA busy_timeout=30000")
        conn.execute("PRAGMA synchronous=%s"
                     % ("FULL" if self.fsync else "NORMAL"))
        return conn

    def describe(self) -> str:
        return f"sqlite:{self.path}"

    def keys(self) -> Iterator[str]:
        with closing(self._connect()) as conn:
            rows = conn.execute(
                "SELECT key FROM results ORDER BY key").fetchall()
        for (key,) in rows:
            yield key

    def __len__(self) -> int:
        with closing(self._connect()) as conn:
            return conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]

    def __contains__(self, key: str) -> bool:
        with closing(self._connect()) as conn:
            return conn.execute("SELECT 1 FROM results WHERE key = ?",
                                (key,)).fetchone() is not None

    def load_entry(self, key: str) -> Any:
        try:
            with closing(self._connect()) as conn:
                row = conn.execute(
                    "SELECT version, sha256, metadata, result FROM results"
                    " WHERE key = ?", (key,)).fetchone()
        except sqlite3.Error:
            # A damaged database file is indistinguishable from a miss at
            # this level; the row-level digest discipline cannot repair
            # it, so report the miss and leave the file for inspection.
            return None
        if row is None:
            return None
        version, sha256, metadata_text, result_text = row
        try:
            metadata = json.loads(metadata_text)
            result_payload = json.loads(result_text)
        except (TypeError, json.JSONDecodeError):
            return CORRUPT
        return {"version": version, "key": key, "metadata": metadata,
                "result": result_payload, "sha256": sha256}

    def store_entry(self, key: str, payload: Dict[str, Any]) -> None:
        with closing(self._connect()) as conn, conn:
            conn.execute(
                "INSERT OR REPLACE INTO results"
                " (key, version, sha256, metadata, result)"
                " VALUES (?, ?, ?, ?, ?)",
                (key, payload["version"], payload["sha256"],
                 json.dumps(payload.get("metadata") or {}, sort_keys=True),
                 json.dumps(payload["result"], sort_keys=True,
                            separators=(",", ":"))))

    def delete_entry(self, key: str) -> bool:
        try:
            with closing(self._connect()) as conn, conn:
                cursor = conn.execute(
                    "DELETE FROM results WHERE key = ?", (key,))
                return cursor.rowcount > 0
        except sqlite3.Error:
            return False

    def clear(self) -> int:
        with closing(self._connect()) as conn, conn:
            count = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
            conn.execute("DELETE FROM results")
        return count


def store_backend_from_env() -> Optional[str]:
    """The ``REPRO_STORE_BACKEND`` value, validated, or ``None`` if unset."""
    raw = os.environ.get(STORE_BACKEND_ENV, "").strip().lower()
    if not raw:
        return None
    if raw not in STORE_BACKENDS:
        raise ValueError(
            f"environment variable {STORE_BACKEND_ENV} must be one of "
            f"{', '.join(STORE_BACKENDS)}; got {raw!r}")
    return raw


def open_store(root: Union[str, os.PathLike],
               backend: Optional[str] = None,
               fsync: Optional[bool] = None) -> StoreBackend:
    """Open a result store, selecting the backend.

    Precedence: the explicit ``backend`` argument, then the
    ``REPRO_STORE_BACKEND`` environment variable, then auto-detection by
    layout (a root that is — or contains — a SQLite database opens as
    ``sqlite``), then the ``json`` default.  Auto-detection is what keeps
    a migrated store working without passing ``--store-backend`` on every
    subsequent command.
    """
    if backend is None:
        backend = store_backend_from_env()
    if backend is None:
        root_path = Path(root)
        if root_path.suffix in SqliteResultStore._DB_SUFFIXES \
                or (root_path / SqliteResultStore.DB_FILENAME).is_file():
            backend = "sqlite"
        else:
            backend = "json"
    backend = backend.strip().lower()
    if backend == "json":
        return ResultStore(root, fsync=fsync)
    if backend == "sqlite":
        return SqliteResultStore(root, fsync=fsync)
    raise ValueError(f"unknown result-store backend {backend!r}: "
                     f"expected one of {', '.join(STORE_BACKENDS)}")


def migrate_store(source: StoreBackend,
                  dest: StoreBackend) -> Tuple[int, int]:
    """Copy every entry from ``source`` to ``dest``, verifying digests.

    Entries are copied verbatim (metadata and digest included) so a
    round-trip migration is lossless.  Each entry's sha256 integrity
    digest is re-verified against its result payload before the copy;
    corrupt, torn or old-version entries are skipped with a logged
    warning rather than propagated.  Returns ``(copied, skipped)``.
    """
    logger = get_logger("harness.store")
    copied = skipped = 0
    for key in source.keys():
        payload = source.load_entry(key)
        reason = None
        if not isinstance(payload, dict):
            reason = "unparseable-json"
        elif payload.get("version") != STORE_VERSION:
            reason = "stale-version"
        elif not isinstance(payload.get("result"), dict) \
                or payload.get("sha256") != result_digest(payload["result"]):
            reason = "integrity-mismatch"
        if reason is not None:
            skipped += 1
            log_event(logger, "migrate_skipped", _level=logging.WARNING,
                      key=key, reason=reason)
            continue
        dest.store_entry(key, payload)
        copied += 1
    log_event(logger, "migrate_done", source=source.describe(),
              dest=dest.describe(), copied=copied, skipped=skipped)
    return copied, skipped
