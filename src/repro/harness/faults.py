"""Deterministic fault injection for the campaign harness.

The executor layer (:mod:`repro.harness.executor`) promises that a sweep
survives worker crashes, hangs and corrupted store entries with the
determinism guarantee intact — the final results are byte-identical to a
fault-free run.  This module makes that promise *testable*: the
``REPRO_FAULTS`` environment variable describes a seed-driven plan of
faults to inject at chosen cells, and the chaos test tier runs real
campaigns under that plan and compares them bit-for-bit against clean
runs.

A plan is a comma-separated list of ``kind:rate:seed[:attempts]`` specs::

    REPRO_FAULTS=exc:0.5:7            # half the cells raise once
    REPRO_FAULTS=kill:0.3:3,hang:0.1:9
    REPRO_FAULTS=exc:1.0:7:2          # every cell raises on attempts 0 and 1

* ``kind`` — what to inject:

  - ``exc``     the worker raises :class:`InjectedFault` inside the cell;
  - ``hang``    the worker sleeps past any per-cell timeout;
  - ``kill``    the worker dies abruptly via ``os._exit`` (models OOM-kill
    / SIGKILL: no exception, no cleanup, no reply to the supervisor);
  - ``corrupt`` the just-written result-store entry is torn (models a
    crash mid-write; the store's integrity check must evict it).

* ``rate`` — fraction of cells affected, in ``[0, 1]``.
* ``seed`` — drives *which* cells are affected.  The decision for a cell
  is a pure function of ``(seed, kind, cell key)``, so every worker,
  retry and re-run agrees on where the faults are — no shared state, no
  randomness at decision time.
* ``attempts`` — inject on attempts ``0 .. attempts-1`` only (default 1,
  i.e. *transient*: the first retry succeeds).  A large value makes the
  fault effectively permanent, which is how the quarantine path is
  tested.

Faults are injected at two points: worker-side (``exc``/``hang``/``kill``)
around :func:`repro.harness.campaign.run_cell`, and supervisor-side
(``corrupt``) right after a result is persisted.  Production code never
imports the decisions — when ``REPRO_FAULTS`` is unset,
:func:`active_fault_plan` returns ``None`` and the harness pays a single
environment lookup per cell.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.telemetry.log import get_logger, log_event

#: Environment variable holding the fault plan (empty/unset = no faults).
FAULTS_ENV = "REPRO_FAULTS"

#: The fault kinds a spec may name.
FAULT_KINDS = ("exc", "hang", "kill", "corrupt")

#: Worker-side kinds (applied around ``run_cell``); ``corrupt`` is
#: supervisor-side.
WORKER_FAULT_KINDS = ("exc", "hang", "kill")

#: Exit code of a ``kill``-faulted worker (distinctive in supervisor logs).
KILL_EXIT_CODE = 87

#: How long a ``hang`` fault sleeps.  Far past any sane cell timeout; the
#: supervisor is expected to kill the worker long before this elapses.
HANG_SECONDS = 3600.0


class FaultSpecError(ValueError):
    """A malformed ``REPRO_FAULTS`` value."""


class InjectedFault(RuntimeError):
    """The exception an ``exc`` fault raises inside a worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One ``kind:rate:seed[:attempts]`` clause of a fault plan."""

    kind: str
    rate: float
    seed: int
    attempts: int = 1


def parse_fault_specs(raw: str) -> Tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` value into specs (empty input → ``()``)."""
    specs = []
    for clause in raw.split(","):
        clause = clause.strip()
        if not clause:
            continue
        fields = clause.split(":")
        if len(fields) not in (3, 4):
            raise FaultSpecError(
                f"fault spec {clause!r} must be kind:rate:seed[:attempts] "
                f"(e.g. 'exc:0.5:7')")
        kind = fields[0].strip().lower()
        if kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} "
                f"(choose from {', '.join(FAULT_KINDS)})")
        try:
            rate = float(fields[1])
            seed = int(fields[2])
            attempts = int(fields[3]) if len(fields) == 4 else 1
        except ValueError:
            raise FaultSpecError(
                f"fault spec {clause!r}: rate must be a float, seed and "
                f"attempts integers") from None
        if not 0.0 <= rate <= 1.0:
            raise FaultSpecError(
                f"fault spec {clause!r}: rate must be in [0, 1]")
        if attempts < 1:
            raise FaultSpecError(
                f"fault spec {clause!r}: attempts must be at least 1")
        specs.append(FaultSpec(kind=kind, rate=rate, seed=seed,
                               attempts=attempts))
    return tuple(specs)


class FaultPlan:
    """A set of fault specs plus the deterministic injection decisions."""

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self.specs = tuple(specs)

    @staticmethod
    def _roll(spec: FaultSpec, key: str) -> bool:
        """The pure (seed, kind, key) → bool decision behind every fault."""
        digest = hashlib.sha256(
            f"{spec.seed}:{spec.kind}:{key}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return fraction < spec.rate

    def decide(self, kind: str, key: str, attempt: int = 0) -> bool:
        """Should a ``kind`` fault hit cell ``key`` on this attempt?"""
        return any(spec.kind == kind and attempt < spec.attempts
                   and self._roll(spec, key)
                   for spec in self.specs)

    def apply_worker_faults(self, key: str, attempt: int,
                            kinds: Sequence[str] = WORKER_FAULT_KINDS
                            ) -> None:
        """Inject the worker-side faults planned for ``(key, attempt)``.

        Called inside the worker immediately before the cell runs.  The
        serial executor restricts ``kinds`` to ``("exc",)`` — a ``kill``
        would take down the caller's own process and a ``hang`` would
        block forever with no supervisor to time it out.
        """
        if "kill" in kinds and self.decide("kill", key, attempt):
            # Abrupt death: no exception, no atexit, no flushing — exactly
            # what SIGKILL or the OOM killer looks like from outside.
            os._exit(KILL_EXIT_CODE)
        if "hang" in kinds and self.decide("hang", key, attempt):
            time.sleep(HANG_SECONDS)
        if "exc" in kinds and self.decide("exc", key, attempt):
            raise InjectedFault(
                f"injected transient fault at cell {key} attempt {attempt}")

    def corrupt_store_entry(self, store, key: str) -> bool:
        """Tear the stored entry for ``key`` (models a crash mid-write).

        Returns True when the entry was corrupted.  The store's integrity
        field must detect the damage on the next read, evict the entry and
        recompute the cell — so a corrupted entry costs one re-simulation,
        never a wrong result.
        """
        if not self.decide("corrupt", key, 0):
            return False
        path = store.root / f"{key}.json"
        try:
            text = path.read_text()
            path.write_text(text[:max(1, len(text) // 2)])
        except OSError:
            return False
        log_event(get_logger("harness.faults"), "store_corrupted", key=key)
        return True


_active_plan: Optional[FaultPlan] = None
_active_signature: Optional[str] = None


def active_fault_plan() -> Optional[FaultPlan]:
    """The process-wide plan configured by ``REPRO_FAULTS``, or ``None``.

    Re-reads the environment on every call (workers inherit the variable
    across fork/spawn, and tests reconfigure it freely); the plan object
    is only rebuilt when the setting changes.
    """
    global _active_plan, _active_signature
    raw = os.environ.get(FAULTS_ENV, "").strip()
    if not raw:
        return None
    if _active_plan is None or raw != _active_signature:
        _active_plan = FaultPlan(parse_fault_specs(raw))
        _active_signature = raw
    return _active_plan


def reset_fault_plan() -> None:
    """Forget the process-wide plan (test helper)."""
    global _active_plan, _active_signature
    _active_plan = None
    _active_signature = None
