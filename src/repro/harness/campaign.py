"""Campaign execution: a benchmark × configuration × seed run matrix.

A :class:`Campaign` expands benchmark suites, labelled system
configurations and seeds into a flat list of :class:`RunSpec` cells,
executes them on a ``multiprocessing`` pool and collects the results.
Three properties make campaigns practical for paper-scale sweeps:

* **Parallelism** — cells are independent simulations, so they scale to
  the machine.  The worker count comes from the ``REPRO_JOBS`` environment
  variable (default: ``os.cpu_count()``).
* **Determinism** — each cell's seed is a pure function of the campaign
  seed and the replicate index, and cells never share mutable state, so a
  parallel campaign produces byte-identical results to a sequential one.
  Within a replicate every configuration sees the *same* workload trace
  per benchmark, which is what lets normalised execution times isolate
  the memory-system differences (the paper's methodology).
* **Incrementality** — when a :class:`~repro.harness.store.ResultStore`
  is attached, completed cells are persisted and skipped on re-runs, so
  extending a sweep only simulates the new cells.
* **Fault tolerance** — cells run through the supervised executor layer
  (:mod:`repro.harness.executor`): failed cells are retried with bounded
  deterministic backoff, hung or killed workers are detected and their
  cells re-dispatched, and cells that exhaust their retries are
  quarantined as :class:`~repro.harness.executor.FailedCell` records on
  :attr:`CampaignResult.failures` instead of aborting the sweep.
  Results are persisted as each cell completes, so interrupting or
  crashing a campaign loses at most the cells in flight — re-running the
  same command resumes by computing only the missing cells.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.params import SystemConfig
from repro.common.statistics import geometric_mean
from repro.harness.executor import (
    CellExecutionError,
    Executor,
    FailedCell,
    PoolExecutor,
    SerialExecutor,
)
from repro.harness.faults import active_fault_plan
from repro.harness.store import ResultStore, stable_key
from repro.sim.runner import (
    DEFAULT_WARMUP_FRACTION,
    NormalisedSeries,
    instructions_per_workload,
    parallel_jobs,
)
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.system import build_system
from repro.telemetry.log import get_logger, log_event
from repro.telemetry.phases import phase
from repro.workloads.cache import (
    clear_shared_traces,
    materialize_shared_traces,
    shared_traces_enabled,
)
from repro.workloads.generator import generate_workload
from repro.workloads.profiles import WorkloadProfile, get_profile

DEFAULT_SEED = 1234

#: Progress callback: called with (cells_done, cells_total).
ProgressCallback = Callable[[int, int], None]


def derive_seed(base_seed: int, replicate: int) -> int:
    """Seed of one replicate: stable, collision-free, and equal to the
    base seed for replicate 0 so single-replicate campaigns reproduce the
    historical :class:`~repro.sim.runner.ExperimentRunner` numbers."""
    if replicate == 0:
        return base_seed
    return (base_seed + 0x9E3779B1 * replicate) & 0x7FFFFFFF


@dataclass(frozen=True)
class RunSpec:
    """One cell of the run matrix: a benchmark under one configuration."""

    profile: WorkloadProfile
    label: str
    config: SystemConfig
    instructions: int
    seed: int
    warmup_fraction: float = DEFAULT_WARMUP_FRACTION
    collect_stats: bool = False

    @property
    def benchmark(self) -> str:
        return self.profile.name

    def key(self) -> str:
        """Stable content hash (the result-store key)."""
        return stable_key(self.profile, self.config, self.instructions,
                          self.seed, self.warmup_fraction,
                          self.collect_stats)


def run_cell(spec: RunSpec) -> SimulationResult:
    """Execute one cell from scratch (pure function of the spec).

    Trace generation goes through the workload trace cache
    (:mod:`repro.workloads.cache`), so a worker sweeping one benchmark
    across several configurations generates its trace once; pointing
    ``REPRO_TRACE_CACHE`` at a directory extends the sharing across
    workers and campaign invocations.  In a parallel campaign the lookup
    is normally satisfied one tier earlier still: the fork-inherited
    shared registry the parent filled before the pool forked, making
    trace generation (and the packing below) a pure attach.
    """
    with phase("trace-gen"):
        workload = generate_workload(spec.profile, spec.instructions,
                                     seed=spec.seed)
    with phase("pack"):
        for trace in workload:
            trace.packed()
    with phase("simulate"):
        cores_needed = max(1, spec.profile.num_threads)
        system_config = spec.config.with_cores(max(spec.config.num_cores,
                                                   cores_needed))
        system = build_system(system_config, seed=spec.seed)
        simulator = Simulator(system)
        return simulator.run(workload, collect_stats=spec.collect_stats,
                             warmup_fraction=spec.warmup_fraction)


@dataclass
class ExecutionStats:
    """Where each requested cell came from, and what executing cost.

    ``executed_seconds`` sums per-cell wall-clock measured inside the
    workers; ``wall_seconds`` is the caller-side wall-clock of the whole
    :func:`execute_cells` call; ``workers`` is the pool size actually
    used.  Their ratio is the pool's utilisation — low values mean the
    campaign is dominated by stragglers or pool overhead rather than
    simulation.
    """

    executed: int = 0
    store_hits: int = 0
    memory_hits: int = 0
    executed_seconds: float = 0.0
    wall_seconds: float = 0.0
    workers: int = 1
    #: Workloads pre-materialised into the fork-inherited shared trace
    #: registry before the worker pool forked (0 = serial run, sharing
    #: disabled, or every cell cached).
    shared_traces: int = 0
    #: Supervision accounting (see :mod:`repro.harness.executor`):
    #: re-dispatches of failed cells, per-cell timeouts fired, worker
    #: processes that died and were replaced, and cells quarantined after
    #: exhausting their retries.
    retries: int = 0
    timeouts: int = 0
    worker_restarts: int = 0
    failed: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.store_hits + self.memory_hits

    @property
    def cached_fraction(self) -> float:
        if not self.total:
            return 0.0
        return (self.store_hits + self.memory_hits) / self.total

    @property
    def worker_utilisation(self) -> float:
        """Fraction of the pool's wall-clock spent simulating, in [0, 1]."""
        if not self.executed or self.wall_seconds <= 0:
            return 0.0
        return min(1.0, self.executed_seconds
                   / (self.wall_seconds * max(1, self.workers)))

    def summary(self) -> str:
        """One human-readable line for reports and logs."""
        text = (f"{self.executed} executed, {self.store_hits} store hits, "
                f"{self.memory_hits} memory hits "
                f"({self.cached_fraction:.0%} cached)")
        if self.shared_traces:
            text += f"; {self.shared_traces} trace(s) shared with workers"
        if self.executed and self.wall_seconds > 0:
            text += (f"; {self.executed_seconds:.2f}s simulated work in "
                     f"{self.wall_seconds:.2f}s wall on {self.workers} "
                     f"worker(s), {self.worker_utilisation:.0%} utilisation")
        if self.retries or self.timeouts or self.worker_restarts \
                or self.failed:
            text += (f"; supervision: {self.retries} retries, "
                     f"{self.timeouts} timeouts, {self.worker_restarts} "
                     f"worker restarts, {self.failed} quarantined")
        return text


def execute_cells(specs: Sequence[RunSpec], *,
                  jobs: Optional[int] = None,
                  store: Optional[ResultStore] = None,
                  cache: Optional[Dict[str, SimulationResult]] = None,
                  stats: Optional[ExecutionStats] = None,
                  progress: Optional[ProgressCallback] = None,
                  executor: Optional[Executor] = None,
                  max_retries: Optional[int] = None,
                  cell_timeout: Optional[float] = None,
                  failures: Optional[List[FailedCell]] = None
                  ) -> Dict[str, SimulationResult]:
    """Execute cells, consulting the in-memory cache and result store.

    Returns a mapping from cell key to result covering every spec.  Cells
    missing from both caches run through the supervised executor layer
    (:mod:`repro.harness.executor`): a :class:`PoolExecutor` when
    ``jobs > 1``, a :class:`SerialExecutor` otherwise, or any
    ``executor`` passed explicitly.  Results land back in both caches —
    the store is written *as each cell completes*, so an interrupted run
    resumes from everything that finished.  The output is independent of
    the worker count, and of how many retries, timeouts or worker deaths
    occurred along the way.

    ``max_retries`` / ``cell_timeout`` configure the default executors
    (falling back to ``REPRO_MAX_RETRIES`` / ``REPRO_CELL_TIMEOUT``).
    Cells that fail permanently are appended to ``failures`` when a list
    is given; without one, a :class:`CellExecutionError` is raised after
    the surviving cells have completed (preserving the historical
    fail-fast contract for single-cell callers).

    ``progress`` (if given) is called with ``(done, total)`` over the
    *unique* cells: once up front for everything the caches satisfied,
    then once per finished (or quarantined) simulation.
    """
    jobs = parallel_jobs(default=None) if jobs is None else max(1, jobs)
    stats = stats if stats is not None else ExecutionStats()
    logger = get_logger("harness.campaign")
    started = time.perf_counter()
    results: Dict[str, SimulationResult] = {}
    pending: List[Tuple[str, RunSpec]] = []
    pending_keys: set = set()
    for spec in specs:
        key = spec.key()
        if key in results or key in pending_keys:
            continue
        if cache is not None and key in cache:
            results[key] = cache[key]
            stats.memory_hits += 1
            continue
        if store is not None:
            stored = store.get(key)
            if stored is not None:
                results[key] = stored
                stats.store_hits += 1
                continue
        pending.append((key, spec))
        pending_keys.add(key)

    total = len(results) + len(pending)
    progress_state = {"done": len(results)}
    if progress is not None:
        progress(progress_state["done"], total)

    failed_cells: List[FailedCell] = []
    if pending:
        stats.executed += len(pending)
        workers = (min(jobs, len(pending))
                   if jobs > 1 and len(pending) > 1 else 1)
        stats.workers = max(stats.workers, workers)
        if executor is None:
            executor = (PoolExecutor(workers, max_retries=max_retries,
                                     cell_timeout=cell_timeout)
                        if workers > 1
                        else SerialExecutor(max_retries=max_retries,
                                            cell_timeout=cell_timeout))
        if isinstance(executor, PoolExecutor) and shared_traces_enabled():
            # Materialise every distinct workload *before* the pool forks:
            # workers inherit the finished traces (packed columns and
            # execution plans included) as read-only copy-on-write pages
            # and attach by key instead of regenerating per process.
            with phase("trace-materialize"):
                stats.shared_traces += materialize_shared_traces(
                    (spec.profile, spec.instructions, spec.seed)
                    for _, spec in pending)
        log_event(logger, "execute_start", cells=len(pending),
                  cached=progress_state["done"], workers=workers,
                  executor=type(executor).__name__)
        fault_plan = active_fault_plan()

        def on_complete(key: str, spec: RunSpec, result: SimulationResult,
                        seconds: float) -> None:
            results[key] = result
            stats.executed_seconds += seconds
            if store is not None:
                # Persist immediately: a later crash or interrupt loses at
                # most the cells still in flight.
                store.put(key, result, metadata={
                    "benchmark": spec.benchmark,
                    "label": spec.label,
                    "mode": spec.config.mode_label,
                    "instructions": spec.instructions,
                    "seed": spec.seed,
                })
                if fault_plan is not None:
                    fault_plan.corrupt_store_entry(store, key)
            progress_state["done"] += 1
            log_event(logger, "cell_done", benchmark=spec.benchmark,
                      label=spec.label, seed=spec.seed,
                      seconds=f"{seconds:.2f}")
            if progress is not None:
                progress(progress_state["done"], total)

        def on_failure(failure: FailedCell) -> None:
            failed_cells.append(failure)
            progress_state["done"] += 1
            if progress is not None:
                progress(progress_state["done"], total)

        try:
            executor.execute(pending, stats=stats, on_complete=on_complete,
                             on_failure=on_failure)
        except KeyboardInterrupt:
            if isinstance(progress, _ProgressLine):
                progress.interrupt()
            stats.wall_seconds += time.perf_counter() - started
            log_event(logger, "execute_interrupted",
                      completed=progress_state["done"], total=total)
            raise
        finally:
            # The pool is gone by now (``executor.execute`` shuts its
            # workers down on every exit path, interrupts and quarantines
            # included), so drop the parent's shared-trace references:
            # holding them across campaigns would accumulate every trace
            # ever materialised in a long-lived process.
            clear_shared_traces()

    if cache is not None:
        cache.update(results)
    # Deterministic iteration order regardless of completion order: rebuild
    # the mapping in first-seen spec order.
    ordered: Dict[str, SimulationResult] = {}
    for spec in specs:
        key = spec.key()
        if key in results and key not in ordered:
            ordered[key] = results[key]
    results = ordered
    stats.wall_seconds += time.perf_counter() - started
    if pending:
        log_event(logger, "execute_done", executed=stats.executed,
                  store_hits=stats.store_hits, memory_hits=stats.memory_hits,
                  failed=stats.failed, retries=stats.retries,
                  wall=f"{stats.wall_seconds:.2f}")
    if failed_cells:
        # Quarantine order follows the submission order, not the
        # nondeterministic completion order.
        submitted = {key: index for index, (key, _) in enumerate(pending)}
        failed_cells.sort(key=lambda cell: submitted.get(cell.key, 0))
        if failures is None:
            raise CellExecutionError(failed_cells)
        failures.extend(failed_cells)
    return results


def _progress_enabled() -> bool:
    """Progress-line gate: ``REPRO_PROGRESS`` override, else a TTY check."""
    raw = os.environ.get("REPRO_PROGRESS", "").strip().lower()
    if raw in ("1", "true", "yes", "on"):
        return True
    if raw in ("0", "false", "no", "off"):
        return False
    try:
        return sys.stderr.isatty()
    except Exception:
        return False


class _ProgressLine:
    """A live ``\\rcells done/total`` line on stderr, newline on completion."""

    def __init__(self, stream=None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._started = time.perf_counter()

    def __call__(self, done: int, total: int) -> None:
        elapsed = time.perf_counter() - self._started
        percent = (100 * done // total) if total else 100
        self._done, self._total = done, total
        self._stream.write(f"\rcells {done}/{total} ({percent}%) "
                           f"{elapsed:.1f}s")
        if done >= total:
            self._stream.write("\n")
        self._stream.flush()

    def interrupt(self) -> None:
        """End the live line cleanly on interruption (no dirty ``\\r``)."""
        done = getattr(self, "_done", 0)
        total = getattr(self, "_total", 0)
        self._stream.write(f"\rcells {done}/{total} — interrupted\n")
        self._stream.flush()


@dataclass
class CampaignResult:
    """Results of one campaign run, indexed by (benchmark, label, seed)."""

    benchmarks: List[str]
    labels: List[str]
    baseline_label: str
    seeds: List[int]
    runs: Dict[Tuple[str, str, int], SimulationResult]
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    #: Cells quarantined by the executor layer (exhausted retries).  The
    #: sweep completed without them; normalisation and geomeans cover the
    #: completed cells only, and reports annotate the gaps as FAILED.
    failures: List[FailedCell] = field(default_factory=list)

    def result(self, benchmark: str, label: str,
               seed: Optional[int] = None) -> SimulationResult:
        seed = self.seeds[0] if seed is None else seed
        try:
            return self.runs[(benchmark, label, seed)]
        except KeyError:
            for failure in self.failures:
                if (failure.benchmark, failure.label,
                        failure.seed) == (benchmark, label, seed):
                    raise KeyError(
                        f"cell ({benchmark}, {label}, seed {seed}) was "
                        f"quarantined after {failure.attempts} attempt(s): "
                        f"{failure.error}") from None
            raise

    def failed_series(self) -> set:
        """The ``(benchmark, label)`` pairs with at least one failed seed."""
        return {(failure.benchmark, failure.label)
                for failure in self.failures}

    def normalised(self) -> Dict[str, Dict[str, float]]:
        """label -> {benchmark -> execution time normalised to baseline}.

        Times are frequency-scaled
        (:attr:`~repro.sim.simulator.SimulationResult.time`): on machines
        whose cores all run at the reference clock this is exactly
        cycles / baseline cycles, while heterogeneous-frequency machines
        (big.LITTLE) are credited for their faster clocks.  With several
        replicates the per-seed ratios are averaged.

        Quarantined cells simply contribute no ratio: a benchmark whose
        every seed failed (in the series or in the baseline) is omitted
        from that series, and reports annotate the gap as FAILED.
        """
        series: Dict[str, Dict[str, float]] = {}
        for label in self.labels:
            if label == self.baseline_label:
                continue
            values: Dict[str, float] = {}
            for benchmark in self.benchmarks:
                ratios = []
                for seed in self.seeds:
                    baseline = self.runs.get((benchmark, self.baseline_label,
                                              seed))
                    run = self.runs.get((benchmark, label, seed))
                    if baseline is None or run is None:
                        continue
                    ratios.append(run.time / baseline.time
                                  if baseline.time else 0.0)
                if ratios:
                    values[benchmark] = sum(ratios) / len(ratios)
            series[label] = values
        return series

    def normalised_series(self) -> Dict[str, NormalisedSeries]:
        """The same data as :class:`~repro.sim.runner.NormalisedSeries`."""
        return {label: NormalisedSeries(label=label, values=values)
                for label, values in self.normalised().items()}

    def geomeans(self) -> Dict[str, float]:
        return {label: geometric_mean([v for v in values.values() if v > 0])
                for label, values in self.normalised().items()}

    @property
    def has_corun_results(self) -> bool:
        """True when any cell is a multi-programmed co-run mix."""
        return any(result.is_corun for result in self.runs.values())

    def per_constituent_normalised(self) -> Dict[str, Dict[str, float]]:
        """label -> {row -> normalised time}, with mixes split per member.

        Mix-aware counterpart of :meth:`normalised`: a co-run cell
        contributes one row per constituent, named ``mix:member`` and
        normalised against *that member's* execution time in the baseline
        run of the same mix (attribution via
        :attr:`~repro.sim.simulator.SimulationResult.core_benchmarks`),
        so the table shows how each program fared inside the mix rather
        than only the mix's completion time.  Single-program cells keep
        their plain benchmark row.  As in :meth:`normalised`, per-seed
        ratios are averaged.
        """
        # The baseline split is identical for every label; compute it once
        # per (benchmark, seed) rather than inside the label loop.
        baseline_parts = {
            (benchmark, seed): run.per_benchmark()
            for benchmark in self.benchmarks for seed in self.seeds
            for run in [self.runs.get((benchmark, self.baseline_label,
                                       seed))]
            if run is not None}
        series: Dict[str, Dict[str, float]] = {}
        for label in self.labels:
            if label == self.baseline_label:
                continue
            values: Dict[str, List[float]] = {}
            for benchmark in self.benchmarks:
                for seed in self.seeds:
                    baseline = self.runs.get((benchmark, self.baseline_label,
                                              seed))
                    run = self.runs.get((benchmark, label, seed))
                    if baseline is None or run is None:
                        continue
                    if run.is_corun:
                        base_parts = baseline_parts[(benchmark, seed)]
                        for member, part in run.per_benchmark().items():
                            base = base_parts.get(member)
                            ratio = (part.time / base.time
                                     if base is not None and base.time
                                     else 0.0)
                            values.setdefault(f"{benchmark}:{member}",
                                              []).append(ratio)
                    else:
                        ratio = (run.time / baseline.time
                                 if baseline.time else 0.0)
                        values.setdefault(benchmark, []).append(ratio)
            series[label] = {row: sum(ratios) / len(ratios)
                             for row, ratios in values.items()}
        return series

    def per_constituent_geomeans(self) -> Dict[str, float]:
        return {label: geometric_mean([v for v in values.values() if v > 0])
                for label, values
                in self.per_constituent_normalised().items()}


class Campaign:
    """A suite × configuration × seed matrix with an execution engine."""

    def __init__(self, benchmarks: Sequence[str],
                 configs: Mapping[str, SystemConfig],
                 baseline_config: Optional[SystemConfig] = None,
                 baseline_label: str = "baseline",
                 instructions: Optional[int] = None,
                 seed: int = DEFAULT_SEED,
                 replicates: int = 1,
                 warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                 collect_stats: bool = False,
                 store: Optional[ResultStore] = None,
                 jobs: Optional[int] = None,
                 cache: Optional[Dict[str, SimulationResult]] = None,
                 max_retries: Optional[int] = None,
                 cell_timeout: Optional[float] = None,
                 executor: Optional[Executor] = None
                 ) -> None:
        if not benchmarks:
            raise ValueError("campaign needs at least one benchmark")
        if not configs:
            raise ValueError("campaign needs at least one configuration")
        if baseline_label in configs:
            raise ValueError(
                f"baseline label {baseline_label!r} shadows a configuration")
        self.benchmarks = list(benchmarks)
        self.configs = dict(configs)
        self.baseline_config = baseline_config
        self.baseline_label = baseline_label
        self.instructions = instructions_per_workload(instructions)
        self.seed = seed
        self.replicates = max(1, replicates)
        self.warmup_fraction = warmup_fraction
        self.collect_stats = collect_stats
        self.store = store
        self.jobs = jobs
        # Supervision policy (None = the REPRO_MAX_RETRIES /
        # REPRO_CELL_TIMEOUT environment defaults); an explicit executor
        # overrides the jobs-based choice entirely.
        self.max_retries = max_retries
        self.cell_timeout = cell_timeout
        self.executor = executor
        # An external cache (e.g. an ExperimentRunner's) may be shared so
        # several campaigns reuse each other's in-memory results.
        self._cache: Dict[str, SimulationResult] = \
            cache if cache is not None else {}

    @classmethod
    def from_suites(cls, suites: Sequence[str], *args, **kwargs) -> "Campaign":
        """Build a campaign from suite / benchmark names (sorted, deduped)."""
        from repro.harness.suites import resolve_suites
        return cls(resolve_suites(suites), *args, **kwargs)

    @property
    def seeds(self) -> List[int]:
        return [derive_seed(self.seed, replicate)
                for replicate in range(self.replicates)]

    def _series(self) -> Dict[str, SystemConfig]:
        series = dict(self.configs)
        if self.baseline_config is not None:
            series[self.baseline_label] = self.baseline_config
        return series

    def cells(self) -> List[RunSpec]:
        """The full run matrix in a deterministic order."""
        specs: List[RunSpec] = []
        for seed in self.seeds:
            for benchmark in self.benchmarks:
                profile = get_profile(benchmark)
                for label, config in self._series().items():
                    specs.append(RunSpec(
                        profile=profile, label=label, config=config,
                        instructions=self.instructions, seed=seed,
                        warmup_fraction=self.warmup_fraction,
                        collect_stats=self.collect_stats))
        return specs

    def run(self, progress: Optional[ProgressCallback] = None
            ) -> CampaignResult:
        """Execute the matrix (parallel, cached) and index the results.

        ``progress`` overrides the live progress line: pass a callback to
        observe ``(done, total)`` yourself, or leave it ``None`` to get a
        ``\\r``-updating stderr line when stderr is a TTY (force with
        ``REPRO_PROGRESS=1``/``0``).
        """
        if progress is None and _progress_enabled():
            progress = _ProgressLine()
        stats = ExecutionStats()
        specs = self.cells()
        failures: List[FailedCell] = []
        results = execute_cells(specs, jobs=self.jobs, store=self.store,
                                cache=self._cache, stats=stats,
                                progress=progress, executor=self.executor,
                                max_retries=self.max_retries,
                                cell_timeout=self.cell_timeout,
                                failures=failures)
        return self._index_results(results, stats, failures)

    def partial_result(self) -> CampaignResult:
        """Index whatever the caches already hold, executing nothing.

        This is how an interrupted run reports the cells that completed
        (they were persisted as they finished): collect the cached subset,
        render a partial table, and leave the missing cells for the next
        invocation to compute.
        """
        results: Dict[str, SimulationResult] = {}
        for spec in self.cells():
            key = spec.key()
            if key in results:
                continue
            if key in self._cache:
                results[key] = self._cache[key]
            elif self.store is not None:
                stored = self.store.get(key)
                if stored is not None:
                    results[key] = stored
        indexed = self._index_results(results, ExecutionStats(), [])
        # A partial table only shows rows with data; benchmarks whose
        # every cell is still missing would render as all-zero noise.
        present = {benchmark for benchmark, _, _ in indexed.runs}
        indexed.benchmarks = [benchmark for benchmark in indexed.benchmarks
                              if benchmark in present]
        return indexed

    def _index_results(self, results: Dict[str, SimulationResult],
                       stats: ExecutionStats,
                       failures: List[FailedCell]) -> CampaignResult:
        series = self._series()
        runs = {(spec.benchmark, spec.label, spec.seed): results[spec.key()]
                for spec in self.cells() if spec.key() in results}
        labels = [label for label in series if label != self.baseline_label]
        baseline_label = (self.baseline_label
                          if self.baseline_config is not None
                          else labels[0])
        return CampaignResult(
            benchmarks=list(self.benchmarks), labels=list(series),
            baseline_label=baseline_label, seeds=self.seeds, runs=runs,
            stats=stats, failures=failures)
