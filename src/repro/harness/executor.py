"""Supervised cell execution: the campaign harness's executor layer.

:func:`repro.harness.campaign.execute_cells` used to hand pending cells to
a bare ``multiprocessing.Pool.imap``, which made three failure modes
fatal: a worker that dies abruptly (SIGKILL, OOM-kill) leaves its cell's
result unfulfilled forever and deadlocks the sweep; a hung cell blocks
every cell queued behind it; and any exception aborts the whole campaign.
This module replaces that with *supervised dispatch*:

* an :class:`Executor` abstraction — :class:`SerialExecutor` runs cells
  inline, :class:`PoolExecutor` runs them on a supervised pool of worker
  processes with per-cell completion tracking;
* the supervisor detects dead workers (process exit without a reply),
  spawns replacements and re-dispatches their cells;
* a per-cell timeout (``REPRO_CELL_TIMEOUT`` / ``--cell-timeout``) kills
  hung workers and re-dispatches their cells;
* failed cells are retried with bounded deterministic backoff
  (``REPRO_MAX_RETRIES`` / ``--max-retries``, default 2); cells that
  exhaust their retries become quarantined :class:`FailedCell` records —
  the sweep completes and reports them instead of aborting;
* SIGINT/SIGTERM trigger a graceful shutdown: workers are terminated,
  completed results stay flushed (the campaign layer persists each result
  as it completes), and a :class:`KeyboardInterrupt` propagates so
  callers can print a partial report with a resume hint.

Because :func:`~repro.harness.campaign.run_cell` is a pure function of
its spec, none of this affects the *values* computed: a campaign that
suffered retries, timeouts and worker deaths produces byte-identical
results to an undisturbed run — the invariant the chaos test tier
(driven by :mod:`repro.harness.faults`) locks in.
"""

from __future__ import annotations

import logging
import os
import signal
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection, get_context
from typing import Callable, List, Optional, Sequence, Tuple

from repro.telemetry.log import get_logger, log_event

#: Environment variable: per-cell timeout in seconds (unset = no timeout).
CELL_TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"

#: Environment variable: retries per failed cell (unset = 2).
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"

#: Default retries per failed cell when neither argument nor env is given.
DEFAULT_MAX_RETRIES = 2

#: Deterministic backoff before re-dispatching a failed cell:
#: ``min(BACKOFF_CAP, BACKOFF_BASE * 2**(attempt-1))`` seconds.  Bounded
#: and non-random, so chaos runs stay reproducible.
BACKOFF_BASE_SECONDS = 0.02
BACKOFF_CAP_SECONDS = 1.0

#: Supervisor poll interval while waiting on worker replies.
_POLL_SECONDS = 0.05


def env_float(name: str, minimum: float = 0.0) -> Optional[float]:
    """Read a float environment variable, or ``None`` when unset.

    Mirrors :func:`repro.sim.runner.env_int`: a set-but-malformed value is
    a configuration mistake reported with a clear message naming the
    variable.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return None
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"environment variable {name} must be a number, "
            f"got {raw!r}") from None
    if value <= minimum:
        raise ValueError(
            f"environment variable {name} must be greater than {minimum}, "
            f"got {raw!r}")
    return value


def default_max_retries() -> int:
    """``REPRO_MAX_RETRIES`` or the module default."""
    from repro.sim.runner import env_int
    value = env_int(MAX_RETRIES_ENV, minimum=0)
    return DEFAULT_MAX_RETRIES if value is None else value


def default_cell_timeout() -> Optional[float]:
    """``REPRO_CELL_TIMEOUT`` in seconds, or ``None`` (no timeout)."""
    return env_float(CELL_TIMEOUT_ENV, minimum=0.0)


def retry_backoff(attempt: int) -> float:
    """Seconds to wait before dispatching ``attempt`` (1-based retry)."""
    return min(BACKOFF_CAP_SECONDS,
               BACKOFF_BASE_SECONDS * (2.0 ** max(0, attempt - 1)))


@dataclass(frozen=True)
class FailedCell:
    """A quarantined cell: it exhausted its retries and was given up on.

    Carried on :attr:`repro.harness.campaign.CampaignResult.failures`;
    the sweep completes without it, reports annotate it as FAILED, and a
    re-run (the fault gone) computes exactly the missing cells.
    """

    key: str
    benchmark: str
    label: str
    seed: int
    error: str
    attempts: int
    seconds: float


class CellExecutionError(RuntimeError):
    """Raised when cells fail permanently and no quarantine was requested.

    Callers that pass a ``failures`` list to
    :func:`~repro.harness.campaign.execute_cells` get quarantined
    :class:`FailedCell` records instead; callers that don't (single-cell
    paths like :func:`repro.api.simulate`) get this exception, preserving
    the historical fail-fast contract.
    """

    def __init__(self, failures: Sequence[FailedCell]) -> None:
        self.failures = list(failures)
        first = self.failures[0]
        detail = (f" (and {len(self.failures) - 1} more)"
                  if len(self.failures) > 1 else "")
        super().__init__(
            f"{len(self.failures)} cell(s) failed permanently after "
            f"{first.attempts} attempt(s): {first.benchmark}/{first.label} "
            f"seed {first.seed}: {first.error}{detail}")


#: Callback signatures the executors drive.
CompleteCallback = Callable[[str, "RunSpec", "SimulationResult", float], None]
FailureCallback = Callable[[FailedCell], None]


class _Task:
    """One cell in flight: its spec plus retry bookkeeping."""

    __slots__ = ("key", "spec", "attempt", "errors", "seconds", "not_before")

    def __init__(self, key: str, spec) -> None:
        self.key = key
        self.spec = spec
        self.attempt = 0
        self.errors: List[str] = []
        self.seconds = 0.0
        self.not_before = 0.0

    def failed(self) -> FailedCell:
        return FailedCell(
            key=self.key, benchmark=self.spec.benchmark,
            label=self.spec.label, seed=self.spec.seed,
            error=self.errors[-1] if self.errors else "unknown error",
            attempts=self.attempt, seconds=self.seconds)


class Executor:
    """Base class: retry/timeout policy shared by both executors."""

    def __init__(self, *, max_retries: Optional[int] = None,
                 cell_timeout: Optional[float] = None) -> None:
        self.max_retries = (default_max_retries() if max_retries is None
                            else max(0, max_retries))
        self.cell_timeout = (default_cell_timeout() if cell_timeout is None
                             else cell_timeout)
        self._logger = get_logger("harness.executor")

    def execute(self, tasks: Sequence[Tuple[str, "RunSpec"]], *,
                stats, on_complete: CompleteCallback,
                on_failure: FailureCallback) -> None:
        raise NotImplementedError

    def _record_failure(self, task: _Task, error: str, stats,
                        on_failure: FailureCallback) -> bool:
        """Common retry-or-quarantine decision; True when re-dispatching."""
        task.errors.append(error)
        task.attempt += 1
        if task.attempt > self.max_retries:
            stats.failed += 1
            log_event(self._logger, "cell_quarantined",
                      _level=logging.WARNING,
                      benchmark=task.spec.benchmark, label=task.spec.label,
                      seed=task.spec.seed, attempts=task.attempt,
                      error=error)
            on_failure(task.failed())
            return False
        stats.retries += 1
        task.not_before = time.monotonic() + retry_backoff(task.attempt)
        log_event(self._logger, "cell_retry",
                  benchmark=task.spec.benchmark, label=task.spec.label,
                  seed=task.spec.seed, attempt=task.attempt, error=error)
        return True


class SerialExecutor(Executor):
    """Run cells inline, in submission order, with the retry policy.

    No processes are involved, so there is no timeout enforcement (a hung
    cell hangs the caller) and only ``exc`` faults are injected —
    ``kill``/``hang`` faults would take down or block the caller itself.
    This is the executor behind ``--jobs 1`` and single-cell API calls.
    """

    def execute(self, tasks, *, stats, on_complete, on_failure) -> None:
        from repro.harness.campaign import run_cell
        from repro.harness.faults import active_fault_plan
        for key, spec in tasks:
            task = _Task(key, spec)
            while True:
                wait = task.not_before - time.monotonic()
                if wait > 0:
                    time.sleep(wait)
                started = time.perf_counter()
                try:
                    plan = active_fault_plan()
                    if plan is not None:
                        plan.apply_worker_faults(key, task.attempt,
                                                 kinds=("exc",))
                    result = run_cell(spec)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    task.seconds += time.perf_counter() - started
                    error = f"{type(exc).__name__}: {exc}"
                    if self._record_failure(task, error, stats, on_failure):
                        continue
                    break
                seconds = time.perf_counter() - started
                task.seconds += seconds
                on_complete(key, spec, result, seconds)
                break


def _worker_main(conn) -> None:
    """Worker-process loop: receive (key, spec, attempt), reply with the
    result or the error description; exit on the ``None`` sentinel / EOF.

    SIGINT is ignored so a Ctrl-C in the supervisor's terminal (delivered
    to the whole process group) doesn't race the supervisor's own
    graceful shutdown; the supervisor terminates workers explicitly.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    from repro.harness.campaign import run_cell
    from repro.harness.faults import active_fault_plan
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if message is None:
            return
        key, spec, attempt = message
        started = time.perf_counter()
        try:
            plan = active_fault_plan()
            if plan is not None:
                plan.apply_worker_faults(key, attempt)
            result = run_cell(spec)
            reply = ("ok", result, time.perf_counter() - started)
        except BaseException as exc:  # noqa: BLE001 — reported, not hidden
            reply = ("error", f"{type(exc).__name__}: {exc}",
                     time.perf_counter() - started)
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


class _WorkerHandle:
    """One supervised worker process plus its command pipe."""

    __slots__ = ("process", "conn", "task", "deadline")

    def __init__(self, context) -> None:
        self.conn, child_conn = context.Pipe(duplex=True)
        self.process = context.Process(target=_worker_main,
                                       args=(child_conn,), daemon=True)
        self.process.start()
        child_conn.close()
        self.task: Optional[_Task] = None
        self.deadline: Optional[float] = None

    def assign(self, task: _Task, timeout: Optional[float]) -> None:
        self.task = task
        self.deadline = (time.monotonic() + timeout
                         if timeout is not None else None)
        self.conn.send((task.key, task.spec, task.attempt))

    @property
    def idle(self) -> bool:
        return self.task is None

    def shutdown(self, graceful: bool = True) -> None:
        """Stop the worker: sentinel, short join, then terminate/kill."""
        if graceful and self.process.is_alive():
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.process.join(timeout=0.2 if graceful else 0.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=0.5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=0.5)


class PoolExecutor(Executor):
    """Supervised worker-process pool with completion tracking.

    Each worker is a long-lived process fed one cell at a time over a
    pipe (so per-worker caches, e.g. the in-process trace cache, stay
    warm across cells) and the supervisor knows exactly which cell every
    worker holds.  That mapping is what bare ``pool.imap`` lacked: when a
    worker dies or exceeds the cell timeout, its cell — and only its
    cell — is re-dispatched to a fresh process.
    """

    def __init__(self, workers: Optional[int] = None, *,
                 max_retries: Optional[int] = None,
                 cell_timeout: Optional[float] = None) -> None:
        super().__init__(max_retries=max_retries, cell_timeout=cell_timeout)
        if workers is None:
            from repro.sim.runner import parallel_jobs
            workers = parallel_jobs(default=None)
        self.workers = max(1, workers)
        try:
            self._context = get_context("fork")
        except ValueError:
            self._context = get_context()
        self._interrupted = False

    # -- signal handling ------------------------------------------------------
    def _install_signal_handlers(self):
        """Route SIGINT/SIGTERM into the supervisor loop's stop flag.

        Only possible from the main thread; elsewhere the default
        KeyboardInterrupt delivery already unwinds through ``execute``'s
        ``finally`` cleanup.
        """
        def _handler(signum, frame):
            self._interrupted = True
        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, _handler)
            except (ValueError, OSError):
                pass
        return previous

    @staticmethod
    def _restore_signal_handlers(previous) -> None:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass

    # -- supervision ----------------------------------------------------------
    def execute(self, tasks, *, stats, on_complete, on_failure) -> None:
        queue = deque(_Task(key, spec) for key, spec in tasks)
        outstanding = len(queue)
        pool: List[_WorkerHandle] = []
        self._interrupted = False
        previous_handlers = self._install_signal_handlers()
        try:
            while outstanding > 0 and not self._interrupted:
                self._reap_and_dispatch(queue, pool)
                outstanding -= self._poll_workers(
                    queue, pool, stats, on_complete, on_failure)
        finally:
            for worker in pool:
                worker.shutdown(graceful=not self._interrupted)
            self._restore_signal_handlers(previous_handlers)
        if self._interrupted:
            log_event(self._logger, "execute_interrupted",
                      remaining=outstanding)
            raise KeyboardInterrupt

    def _reap_and_dispatch(self, queue, pool: List[_WorkerHandle]) -> None:
        """Top up the pool and hand queued tasks to idle workers."""
        now = time.monotonic()
        # Workers wanted: one per runnable task, capped at the pool size.
        busy = sum(1 for worker in pool if not worker.idle)
        runnable = sum(1 for task in queue if task.not_before <= now)
        wanted = min(self.workers, busy + runnable)
        while len(pool) < wanted:
            pool.append(_WorkerHandle(self._context))
        for worker in list(pool):
            if not worker.idle:
                continue
            task = self._next_runnable(queue, now)
            if task is None:
                break
            try:
                worker.assign(task, self.cell_timeout)
            except (BrokenPipeError, OSError):
                # The worker died while idle; retire it on the spot (a
                # replacement is spawned next pass) and requeue the task.
                worker.task = None
                worker.shutdown(graceful=False)
                pool.remove(worker)
                queue.appendleft(task)

    @staticmethod
    def _next_runnable(queue, now: float) -> Optional[_Task]:
        """Pop the first task whose backoff window has elapsed."""
        for _ in range(len(queue)):
            task = queue.popleft()
            if task.not_before <= now:
                return task
            queue.append(task)
        return None

    def _poll_workers(self, queue, pool, stats, on_complete,
                      on_failure) -> int:
        """One supervision step; returns the number of tasks settled."""
        settled = 0
        busy = [worker for worker in pool if not worker.idle]
        if not busy:
            # Every remaining task is waiting out its backoff.
            time.sleep(_POLL_SECONDS)
            return 0
        try:
            ready = connection.wait([worker.conn for worker in busy],
                                    timeout=_POLL_SECONDS)
        except (OSError, InterruptedError):
            ready = []
        now = time.monotonic()
        for worker in busy:
            task = worker.task
            if task is None:
                continue
            if worker.conn in ready:
                try:
                    reply = worker.conn.recv()
                except (EOFError, OSError):
                    settled += self._worker_died(worker, queue, pool, stats,
                                                 on_failure)
                    continue
                worker.task, worker.deadline = None, None
                kind, payload, seconds = reply
                task.seconds += seconds
                if kind == "ok":
                    on_complete(task.key, task.spec, payload, seconds)
                    settled += 1
                elif self._record_failure(task, payload, stats, on_failure):
                    queue.append(task)
                else:
                    settled += 1
            elif not worker.process.is_alive():
                settled += self._worker_died(worker, queue, pool, stats,
                                             on_failure)
            elif worker.deadline is not None and now > worker.deadline:
                settled += self._worker_timed_out(worker, queue, pool, stats,
                                                  on_failure)
        return settled

    def _worker_died(self, worker, queue, pool, stats, on_failure) -> int:
        """A worker exited without replying (SIGKILL, OOM, ``os._exit``)."""
        task = worker.task
        exitcode = worker.process.exitcode
        stats.worker_restarts += 1
        log_event(self._logger, "worker_died", exitcode=exitcode,
                  benchmark=task.spec.benchmark, label=task.spec.label,
                  seed=task.spec.seed)
        self._replace(worker, pool)
        error = f"worker died (exit code {exitcode})"
        if self._record_failure(task, error, stats, on_failure):
            queue.append(task)
            return 0
        return 1

    def _worker_timed_out(self, worker, queue, pool, stats,
                          on_failure) -> int:
        """A cell exceeded the per-cell timeout: kill its worker."""
        task = worker.task
        stats.timeouts += 1
        log_event(self._logger, "cell_timeout",
                  benchmark=task.spec.benchmark, label=task.spec.label,
                  seed=task.spec.seed, timeout=self.cell_timeout)
        worker.task = None
        worker.shutdown(graceful=False)
        pool.remove(worker)
        error = f"cell timeout after {self.cell_timeout}s"
        if self._record_failure(task, error, stats, on_failure):
            queue.append(task)
            return 0
        return 1

    @staticmethod
    def _replace(worker: _WorkerHandle, pool: List[_WorkerHandle]) -> None:
        """Retire a dead worker (a replacement is spawned on dispatch)."""
        worker.task = None
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=0.5)
        pool.remove(worker)
