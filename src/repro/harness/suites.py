"""Named, composable benchmark suites.

The paper's evaluation matrix is organised around benchmark *sets*: the 26
SPEC CPU2006 workloads (split into integer and floating point, the way SPEC
itself groups them), the 7 four-threaded Parsec workloads, and combinations
thereof.  Following the convention of benchmark-infrastructure projects,
suites are named, composable and order-insensitive: a request may mix suite
names and individual benchmark names, duplicates are removed and the result
is sorted so every expansion of the same request is identical.

Additional suites can be registered at runtime with :func:`register_suite`,
which lets experiment scripts define a subset once ("the four Parsec
workloads sensitive to filter-cache size") and refer to it by name from the
command line.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.workloads.mixes import MIX_PROFILES
from repro.workloads.profiles import (
    PARSEC_PROFILES,
    SPEC2006_PROFILES,
    get_profile,
)

#: SPEC CPU2006 integer workloads among the 26 the paper evaluates
#: (CINT2006 minus perlbench, which the paper does not run).
SPEC_INT: List[str] = [
    "astar", "bzip2", "gcc", "gobmk", "h264ref", "hmmer", "libquantum",
    "mcf", "omnetpp", "sjeng", "xalancbmk",
]

#: SPEC CPU2006 floating-point workloads (CFP2006 minus wrf).
SPEC_FP: List[str] = [
    "bwaves", "cactusADM", "calculix", "gamess", "GemsFDTD", "gromacs",
    "lbm", "leslie3d", "milc", "namd", "povray", "soplex", "sphinx3",
    "tonto", "zeusmp",
]

_BUILTIN_SUITES: Dict[str, List[str]] = {
    "spec_int": SPEC_INT,
    "spec_fp": SPEC_FP,
    "spec_all": sorted(SPEC2006_PROFILES),
    "parsec": sorted(PARSEC_PROFILES),
    "mixed": sorted(list(SPEC2006_PROFILES) + list(PARSEC_PROFILES)),
    #: The multi-programmed co-run mixes (one benchmark per core, distinct
    #: address spaces, contention through the shared LLC and bus).
    "mixes": sorted(MIX_PROFILES),
}

#: Suites registered at runtime (checked before the builtins so callers can
#: shadow a builtin with a project-specific definition).
_USER_SUITES: Dict[str, List[str]] = {}


class UnknownSuiteError(KeyError):
    """A requested name matches neither a suite nor a benchmark."""


def suite_names() -> List[str]:
    """All known suite names, builtins first."""
    return list(_BUILTIN_SUITES) + [name for name in _USER_SUITES
                                    if name not in _BUILTIN_SUITES]


def register_suite(name: str, benchmarks: Iterable[str]) -> List[str]:
    """Define (or redefine) a named suite from benchmark names.

    Members are validated, deduplicated and sorted; the resolved member
    list is returned.  Members may themselves be suite names, so suites
    compose: ``register_suite("everything", ["spec_all", "parsec"])``.
    """
    members = resolve_suites(list(benchmarks))
    _USER_SUITES[name] = members
    return members


def unregister_suite(name: str) -> None:
    """Remove a user-registered suite (builtins cannot be removed)."""
    _USER_SUITES.pop(name, None)


def _lookup(name: str) -> List[str]:
    if name in _USER_SUITES:
        return _USER_SUITES[name]
    if name in _BUILTIN_SUITES:
        return _BUILTIN_SUITES[name]
    # Individual benchmark names are one-element suites.
    try:
        get_profile(name)
    except KeyError:
        raise UnknownSuiteError(
            f"unknown suite or benchmark: {name!r} "
            f"(known suites: {', '.join(suite_names())})") from None
    return [name]


def resolve_suites(names: Sequence[str]) -> List[str]:
    """Expand suite and benchmark names into a sorted, deduplicated list.

    ``names`` may mix suite names (``spec_int``) and individual benchmark
    names (``mcf``); order and repetition do not matter, so the same request
    always expands to the same benchmark list.
    """
    benchmarks: set = set()
    for name in names:
        benchmarks.update(_lookup(name))
    return sorted(benchmarks)


def resolve_suite(name: str) -> List[str]:
    """Expand one suite (or benchmark) name."""
    return resolve_suites([name])
