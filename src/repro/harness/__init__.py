"""Campaign harness: suites, parallel execution, result cache, reporting.

The harness layers on top of :mod:`repro.sim`:

* :mod:`repro.harness.suites` — named, composable benchmark sets
  (``spec_int``, ``spec_fp``, ``spec_all``, ``parsec``, ``mixed``, plus
  user-registered suites);
* :mod:`repro.harness.campaign` — expansion of suites × configurations ×
  seeds into a run matrix, executed on a ``multiprocessing`` pool with
  deterministic results;
* :mod:`repro.harness.store` — a persistent JSON result store keyed by a
  stable content hash, making repeated campaigns incremental;
* :mod:`repro.harness.report` — text / markdown / CSV tables with
  geometric means.

The ``python -m repro`` command line (:mod:`repro.__main__`) exposes the
harness as ``run`` / ``report`` / ``clean`` subcommands.
"""

from repro.harness.campaign import (
    Campaign,
    CampaignResult,
    DEFAULT_SEED,
    ExecutionStats,
    RunSpec,
    derive_seed,
    execute_cells,
    run_cell,
)
from repro.harness.report import Report
from repro.harness.store import (
    ResultStore,
    config_fingerprint,
    result_from_dict,
    result_to_dict,
    stable_key,
)
from repro.harness.suites import (
    SPEC_FP,
    SPEC_INT,
    UnknownSuiteError,
    register_suite,
    resolve_suite,
    resolve_suites,
    suite_names,
    unregister_suite,
)

__all__ = [
    "Campaign",
    "CampaignResult",
    "DEFAULT_SEED",
    "ExecutionStats",
    "Report",
    "ResultStore",
    "RunSpec",
    "SPEC_FP",
    "SPEC_INT",
    "UnknownSuiteError",
    "config_fingerprint",
    "derive_seed",
    "execute_cells",
    "register_suite",
    "resolve_suite",
    "resolve_suites",
    "result_from_dict",
    "result_to_dict",
    "run_cell",
    "stable_key",
    "suite_names",
    "unregister_suite",
]
