"""Campaign harness: suites, parallel execution, result cache, reporting.

The harness layers on top of :mod:`repro.sim`:

* :mod:`repro.harness.suites` — named, composable benchmark sets
  (``spec_int``, ``spec_fp``, ``spec_all``, ``parsec``, ``mixed``, plus
  user-registered suites);
* :mod:`repro.harness.campaign` — expansion of suites × configurations ×
  seeds into a run matrix, executed through the supervised executor layer
  with deterministic results;
* :mod:`repro.harness.executor` — supervised cell execution:
  :class:`SerialExecutor` / :class:`PoolExecutor` with per-cell timeouts,
  bounded deterministic retries, dead-worker re-dispatch and quarantine
  of permanently failing cells;
* :mod:`repro.harness.faults` — deterministic, seed-driven fault
  injection (``REPRO_FAULTS``) used by the chaos test tier to prove the
  fault-tolerance invariants;
* :mod:`repro.harness.store` — a persistent result store keyed by a
  stable content hash, with atomic integrity-checked writes and two
  pluggable backends (per-directory JSON files, SQLite in WAL mode),
  making repeated campaigns incremental, crash-safe and shareable
  between concurrent processes;
* :mod:`repro.harness.report` — text / markdown / CSV tables with
  geometric means (quarantined cells annotated as FAILED).

The ``python -m repro`` command line (:mod:`repro.__main__`) exposes the
harness as ``run`` / ``report`` / ``clean`` subcommands.
"""

from repro.harness.campaign import (
    Campaign,
    CampaignResult,
    DEFAULT_SEED,
    ExecutionStats,
    RunSpec,
    derive_seed,
    execute_cells,
    run_cell,
)
from repro.harness.executor import (
    CellExecutionError,
    Executor,
    FailedCell,
    PoolExecutor,
    SerialExecutor,
)
from repro.harness.faults import (
    FaultPlan,
    FaultSpec,
    FaultSpecError,
    InjectedFault,
    active_fault_plan,
    parse_fault_specs,
)
from repro.harness.report import Report
from repro.harness.store import (
    JsonResultStore,
    ResultStore,
    SqliteResultStore,
    StoreBackend,
    config_fingerprint,
    migrate_store,
    open_store,
    result_from_dict,
    result_to_dict,
    stable_key,
)
from repro.harness.suites import (
    SPEC_FP,
    SPEC_INT,
    UnknownSuiteError,
    register_suite,
    resolve_suite,
    resolve_suites,
    suite_names,
    unregister_suite,
)

__all__ = [
    "Campaign",
    "CampaignResult",
    "CellExecutionError",
    "DEFAULT_SEED",
    "ExecutionStats",
    "Executor",
    "FailedCell",
    "FaultPlan",
    "FaultSpec",
    "FaultSpecError",
    "InjectedFault",
    "JsonResultStore",
    "PoolExecutor",
    "Report",
    "ResultStore",
    "RunSpec",
    "SPEC_FP",
    "SPEC_INT",
    "SerialExecutor",
    "SqliteResultStore",
    "StoreBackend",
    "UnknownSuiteError",
    "active_fault_plan",
    "config_fingerprint",
    "derive_seed",
    "execute_cells",
    "migrate_store",
    "open_store",
    "parse_fault_specs",
    "register_suite",
    "resolve_suite",
    "resolve_suites",
    "result_from_dict",
    "result_to_dict",
    "run_cell",
    "stable_key",
    "suite_names",
    "unregister_suite",
]
