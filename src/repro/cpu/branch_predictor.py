"""The tournament branch predictor of Table 1.

A local predictor (2048-entry pattern history), a global predictor
(8192-entry gshare) and a 2048-entry chooser, plus a 4096-entry branch
target buffer and a 16-entry return address stack.  The workload generator
produces branch *outcomes*; the predictor decides which of them the core
mispredicts, so the misprediction rate (and therefore the volume of
wrong-path execution each workload produces) is an emergent property of the
branch behaviour encoded in the workload profile.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.params import BranchPredictorConfig
from repro.common.statistics import StatGroup


class SaturatingCounter:
    """An n-bit saturating counter used by all the predictor tables."""

    __slots__ = ("value", "maximum")

    def __init__(self, bits: int = 2, initial: Optional[int] = None) -> None:
        self.maximum = (1 << bits) - 1
        self.value = initial if initial is not None else (self.maximum + 1) // 2

    @property
    def taken(self) -> bool:
        return self.value > self.maximum // 2

    def update(self, taken: bool) -> None:
        if taken:
            self.value = min(self.maximum, self.value + 1)
        else:
            self.value = max(0, self.value - 1)


class BranchTargetBuffer:
    """Maps branch PCs to their last seen targets."""

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._table: Dict[int, int] = {}

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def lookup(self, pc: int) -> Optional[int]:
        return self._table.get(self._index(pc))

    def update(self, pc: int, target: int) -> None:
        self._table[self._index(pc)] = target

    def flush(self) -> None:
        """BTB isolation on domain switches (variant-2 mitigation hook)."""
        self._table.clear()


class ReturnAddressStack:
    """A small circular return-address stack."""

    def __init__(self, entries: int) -> None:
        self.entries = entries
        self._stack: List[int] = []
        self.overflows = 0

    def push(self, return_address: int) -> None:
        if len(self._stack) >= self.entries:
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(return_address)

    def pop(self) -> Optional[int]:
        if not self._stack:
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


class TournamentPredictor:
    """Local + gshare global predictors arbitrated by a chooser."""

    def __init__(self, config: Optional[BranchPredictorConfig] = None,
                 stats: Optional[StatGroup] = None) -> None:
        self.config = config or BranchPredictorConfig()
        self._local_history: List[int] = [0] * self.config.local_entries
        self._local_counters = [SaturatingCounter()
                                for _ in range(self.config.local_entries)]
        self._global_counters = [SaturatingCounter()
                                 for _ in range(self.config.global_entries)]
        self._chooser = [SaturatingCounter()
                         for _ in range(self.config.chooser_entries)]
        self._global_history = 0
        self.btb = BranchTargetBuffer(self.config.btb_entries)
        self.ras = ReturnAddressStack(self.config.ras_entries)
        stats = stats or StatGroup("branch_predictor")
        self.stats = stats
        self._predictions = stats.counter("predictions")
        self._mispredictions = stats.counter("mispredictions")
        self._btb_misses = stats.counter("btb_misses")

    # -- index helpers ----------------------------------------------------------
    def _local_index(self, pc: int) -> int:
        return (pc >> 2) % self.config.local_entries

    def _global_index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._global_history) % self.config.global_entries

    def _chooser_index(self, pc: int) -> int:
        return (pc >> 2) % self.config.chooser_entries

    # -- prediction / update ------------------------------------------------------
    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc``."""
        self._predictions.increment()
        local_idx = self._local_index(pc)
        pattern = self._local_history[local_idx] % self.config.local_entries
        local_prediction = self._local_counters[pattern].taken
        global_prediction = self._global_counters[self._global_index(pc)].taken
        use_global = self._chooser[self._chooser_index(pc)].taken
        return global_prediction if use_global else local_prediction

    def predict_target(self, pc: int) -> Optional[int]:
        target = self.btb.lookup(pc)
        if target is None:
            self._btb_misses.increment()
        return target

    def update(self, pc: int, taken: bool,
               target: Optional[int] = None) -> bool:
        """Update all structures; returns True if the branch was mispredicted."""
        local_idx = self._local_index(pc)
        pattern = self._local_history[local_idx] % self.config.local_entries
        local_prediction = self._local_counters[pattern].taken
        global_idx = self._global_index(pc)
        global_prediction = self._global_counters[global_idx].taken
        chooser_idx = self._chooser_index(pc)
        use_global = self._chooser[chooser_idx].taken
        prediction = global_prediction if use_global else local_prediction

        mispredicted = prediction != taken
        if taken and target is not None:
            predicted_target = self.btb.lookup(pc)
            if predicted_target != target:
                mispredicted = True
            self.btb.update(pc, target)
        if mispredicted:
            self._mispredictions.increment()

        # Chooser trains toward whichever component was right.
        if local_prediction != global_prediction:
            self._chooser[chooser_idx].update(global_prediction == taken)
        self._local_counters[pattern].update(taken)
        self._global_counters[global_idx].update(taken)
        self._local_history[local_idx] = (
            (self._local_history[local_idx] << 1) | int(taken)) & 0x3FF
        self._global_history = (
            (self._global_history << 1) | int(taken)) & 0x1FFF
        return mispredicted

    # -- statistics ------------------------------------------------------------------
    @property
    def predictions(self) -> int:
        return self._predictions.value

    @property
    def mispredictions(self) -> int:
        return self._mispredictions.value

    @property
    def misprediction_rate(self) -> float:
        if not self._predictions.value:
            return 0.0
        return self._mispredictions.value / self._predictions.value
