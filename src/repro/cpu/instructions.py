"""Micro-op representation used by the out-of-order core model.

The workload generators (:mod:`repro.workloads`) produce streams of
:class:`MicroOp` objects; the core model consumes them.  A micro-op carries
its architectural effects only to the extent the timing and security model
needs: which registers it reads and writes, which address it touches, how
long its functional unit takes, whether it is a branch and what the branch
actually does, and which *wrong-path* memory accesses the core would perform
if the branch is mispredicted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


class OpKind(enum.Enum):
    """The instruction classes the timing model distinguishes."""

    INT_ALU = "int"
    FP_ALU = "fp"
    MUL_DIV = "mul"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    SYSCALL = "syscall"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        return self in (OpKind.LOAD, OpKind.STORE)

    @property
    def is_transmitter(self) -> bool:
        """Instructions STT treats as covert-channel transmitters."""
        return self in (OpKind.LOAD, OpKind.STORE)


#: Default functional-unit latencies, in cycles.
EXECUTION_LATENCY = {
    OpKind.INT_ALU: 1,
    OpKind.FP_ALU: 3,
    OpKind.MUL_DIV: 4,
    OpKind.LOAD: 0,      # memory latency comes from the memory system
    OpKind.STORE: 1,
    OpKind.BRANCH: 1,
    OpKind.SYSCALL: 1,
    OpKind.NOP: 1,
}


# Per-op flag bits used by the packed (struct-of-arrays) trace format.  The
# kind-derived bits are precomputed once per OpKind in KIND_FLAGS so the hot
# simulation loop tests a bitmask instead of touching enum properties per op.
F_LOAD = 1 << 0
F_STORE = 1 << 1
F_BRANCH = 1 << 2
F_SYSCALL = 1 << 3
#: STT transmitter (covert-channel capable) instruction.
F_TRANSMITTER = 1 << 4
F_TAKEN = 1 << 5
F_CONTEXT_SWITCH = 1 << 6
F_SANDBOX_ENTRY = 1 << 7
#: ``force_mispredict`` is not None; its value is F_FORCE_MISPREDICT_VALUE.
F_FORCE_MISPREDICT = 1 << 8
F_FORCE_MISPREDICT_VALUE = 1 << 9

#: OpKind -> the flag bits implied by the kind alone.
KIND_FLAGS = {
    kind: ((F_LOAD if kind is OpKind.LOAD else 0)
           | (F_STORE if kind is OpKind.STORE else 0)
           | (F_BRANCH if kind is OpKind.BRANCH else 0)
           | (F_SYSCALL if kind is OpKind.SYSCALL else 0)
           | (F_TRANSMITTER if kind.is_transmitter else 0))
    for kind in OpKind
}


@dataclass(frozen=True, slots=True)
class WrongPathAccess:
    """A memory access the core performs down a mispredicted path.

    These are the accesses a speculative side channel is built from: they
    execute, touch the memory system, and are then squashed without ever
    committing.
    """

    address: int
    is_store: bool = False
    is_instruction: bool = False
    #: Offset (in issue slots) after the mispredicted branch dispatches.
    issue_offset: int = 1


@dataclass(slots=True)
class MicroOp:
    """One instruction of a workload trace.

    ``MicroOp`` is the boundary format: the workload generators, the attack
    programs and the unit tests build and inspect individual ops.  The bulk
    simulation path packs whole traces into the struct-of-arrays
    :class:`~repro.workloads.trace.PackedTrace` (lossless ``pack`` /
    ``unpack`` converters) so the core never allocates per instruction.
    """

    kind: OpKind
    pc: int
    sequence: int = 0
    address: Optional[int] = None
    src_regs: Tuple[int, ...] = ()
    dst_reg: Optional[int] = None
    execution_latency: Optional[int] = None
    # Branch-specific fields.
    taken: bool = False
    target: Optional[int] = None
    #: If set, overrides the branch predictor (used by attacks that need a
    #: deterministic misprediction); None lets the tournament predictor decide.
    force_mispredict: Optional[bool] = None
    wrong_path: List[WrongPathAccess] = field(default_factory=list)
    #: Marks a protection-domain boundary the core must honour at commit.
    is_context_switch: bool = False
    is_sandbox_entry: bool = False

    def __post_init__(self) -> None:
        if self.kind.is_memory and self.address is None:
            raise ValueError(f"{self.kind.value} micro-op requires an address")
        if self.execution_latency is None:
            self.execution_latency = EXECUTION_LATENCY[self.kind]

    @property
    def is_load(self) -> bool:
        return self.kind is OpKind.LOAD

    @property
    def is_store(self) -> bool:
        return self.kind is OpKind.STORE

    @property
    def is_branch(self) -> bool:
        return self.kind is OpKind.BRANCH

    @property
    def is_syscall(self) -> bool:
        return self.kind is OpKind.SYSCALL


def summarize_trace(ops: List[MicroOp]) -> dict:
    """Per-kind instruction counts (handy in tests and workload validation)."""
    counts = {kind: 0 for kind in OpKind}
    for op in ops:
        counts[op.kind] += 1
    total = len(ops)
    return {
        "total": total,
        "loads": counts[OpKind.LOAD],
        "stores": counts[OpKind.STORE],
        "branches": counts[OpKind.BRANCH],
        "int_alu": counts[OpKind.INT_ALU],
        "fp_alu": counts[OpKind.FP_ALU],
        "mul_div": counts[OpKind.MUL_DIV],
        "syscalls": counts[OpKind.SYSCALL],
        "load_fraction": counts[OpKind.LOAD] / total if total else 0.0,
        "store_fraction": counts[OpKind.STORE] / total if total else 0.0,
        "branch_fraction": counts[OpKind.BRANCH] / total if total else 0.0,
    }
