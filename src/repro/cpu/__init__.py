"""The out-of-order core model and its supporting structures."""

from repro.cpu.branch_predictor import (
    BranchTargetBuffer,
    ReturnAddressStack,
    SaturatingCounter,
    TournamentPredictor,
)
from repro.cpu.core import CoreResult, OutOfOrderCore
from repro.cpu.instructions import (
    EXECUTION_LATENCY,
    MicroOp,
    OpKind,
    WrongPathAccess,
    summarize_trace,
)
from repro.cpu.interface import MemoryAccessResult, MemorySystem
from repro.cpu.rob import LoadQueue, ReorderBuffer, RetirementWindow, StoreQueue

__all__ = [
    "BranchTargetBuffer",
    "CoreResult",
    "EXECUTION_LATENCY",
    "LoadQueue",
    "MemoryAccessResult",
    "MemorySystem",
    "MicroOp",
    "OpKind",
    "OutOfOrderCore",
    "ReorderBuffer",
    "RetirementWindow",
    "ReturnAddressStack",
    "SaturatingCounter",
    "StoreQueue",
    "TournamentPredictor",
    "WrongPathAccess",
    "summarize_trace",
]
