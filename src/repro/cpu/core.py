"""The out-of-order core timing model.

The core consumes a trace of micro-ops and computes, for each instruction,
when it dispatches, issues, completes and commits, under the structural
constraints of Table 1 (8-wide front end and commit, 192-entry ROB, 32-entry
load and store queues) and the data-flow constraints implied by register
dependencies and memory latency.  It is a constraint-propagation model
rather than a cycle-stepped pipeline: each instruction is processed once, in
program order, which keeps simulation O(1) per instruction while still
reproducing the behaviour the paper's evaluation depends on:

* speculative and *wrong-path* memory accesses reach the memory system
  before the branch that caused them resolves, and are then squashed;
* long-latency loads, NACK retries (MuonTrap's reduced coherency
  speculation) and commit-time validation (InvisiSpec) create back-pressure
  through the ROB/LSQ capacity constraints;
* STT-style defences delay the issue of transmit instructions that depend
  on a still-speculative load;
* every committed load/store/fetch performs its commit-time action in the
  memory system (write-through-at-commit, prefetch notification, exclusive
  upgrade, ...).

Two execution paths produce bit-identical results:

* :meth:`OutOfOrderCore.execute_op` — one :class:`MicroOp` at a time; the
  boundary API used by attacks and unit tests.
* :meth:`OutOfOrderCore.run_packed` — the hot path.  It consumes a
  :class:`~repro.workloads.trace.PackedTrace` (struct-of-arrays), hoists
  every attribute lookup and memory-system capability probe into locals,
  keeps register ready-times/taints in flat arrays, and accumulates
  statistics in plain local integers flushed to the
  :class:`~repro.common.statistics.StatGroup` counters once per call.
  Nothing is allocated per instruction.

The same class serves single-core (SPEC CPU2006) and multi-core (Parsec)
experiments; in the latter case :class:`repro.sim.simulator.Simulator`
interleaves chunked ``run_packed`` calls across cores so that the cores'
clocks advance together and their traffic interacts in the shared L2 and
coherence bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

from repro.common.params import PipelineConfig, SystemConfig
from repro.common.statistics import StatGroup
from repro.cpu.branch_predictor import TournamentPredictor
from repro.cpu.instructions import (
    F_BRANCH,
    F_CONTEXT_SWITCH,
    F_FORCE_MISPREDICT,
    F_FORCE_MISPREDICT_VALUE,
    F_LOAD,
    F_SANDBOX_ENTRY,
    F_STORE,
    F_SYSCALL,
    F_TAKEN,
    F_TRANSMITTER,
    MicroOp,
)
from repro.cpu.interface import MemorySystem
from repro.cpu.rob import LoadQueue, ReorderBuffer, StoreQueue
from repro.telemetry.tracer import active_tracer as _active_tracer

try:  # numpy drives the vectorized engine's long-run replay; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain ships numpy
    _np = None

#: Initial size of the flat register ready-time/taint arrays; grown on
#: demand for traces that name larger register ids.
_INITIAL_REGISTERS = 64


@dataclass
class CoreResult:
    """Summary of one core's execution of one trace."""

    core_id: int
    committed_instructions: int
    cycles: int
    committed_loads: int = 0
    committed_stores: int = 0
    committed_branches: int = 0
    mispredictions: int = 0
    squashed_accesses: int = 0
    nack_retries: int = 0

    @property
    def ipc(self) -> float:
        return (self.committed_instructions / self.cycles
                if self.cycles else 0.0)

    @property
    def misprediction_rate(self) -> float:
        if not self.committed_branches:
            return 0.0
        return self.mispredictions / self.committed_branches


class OutOfOrderCore:
    """An 8-wide out-of-order core driven by a micro-op trace."""

    def __init__(self, core_id: int, config: SystemConfig,
                 memory_system: MemorySystem,
                 process_id: int = 0,
                 stats: Optional[StatGroup] = None) -> None:
        self.core_id = core_id
        self.config = config
        # Per-core resolution: on a heterogeneous machine this core may run
        # a different pipeline (big.LITTLE) than its neighbours.
        per_core = config.core_config(core_id)
        self.core_config: PipelineConfig = per_core.pipeline
        self.memory = memory_system
        self.process_id = process_id
        stats = stats or StatGroup(f"core{core_id}")
        self.stats = stats
        self.predictor = TournamentPredictor(
            self.core_config.branch_predictor,
            stats=stats.child("branch_predictor"))
        self.rob = ReorderBuffer(self.core_config.rob_entries)
        self.load_queue = LoadQueue(self.core_config.lq_entries)
        self.store_queue = StoreQueue(self.core_config.sq_entries)
        # Register file: flat ready-time and taint-visibility arrays indexed
        # by register id (an unwritten register reads as ready at 0 with no
        # taint, exactly like the absent-dict-entry it replaces).
        self._reg_ready: List[int] = [0] * _INITIAL_REGISTERS
        self._reg_taint: List[Optional[int]] = [None] * _INITIAL_REGISTERS
        self._committed = stats.counter("committed_instructions")
        self._committed_loads = stats.counter("committed_loads")
        self._committed_stores = stats.counter("committed_stores")
        self._committed_branches = stats.counter("committed_branches")
        self._mispredictions = stats.counter("mispredictions")
        self._squashed_accesses = stats.counter("squashed_accesses")
        self._nack_retries = stats.counter("nack_retries")
        self._context_switches = stats.counter("context_switches")
        # Timing cursors.
        self._fetch_ready = 0           # when the front end can deliver next
        self._dispatched_in_cycle: Tuple[int, int] = (-1, 0)
        self._committed_in_cycle: Tuple[int, int] = (-1, 0)
        self._last_commit_time = 0
        self._last_branch_resolve = 0   # prefix max of branch resolve times
        self._sequence = 0
        self._pending_lq_hold = 0
        self._line_size = per_core.l1i.line_size
        self._current_fetch_line: Optional[int] = None
        # Memory-system capability probes, hoisted once per core so the hot
        # loop never calls getattr/hasattr.
        self._stt_mode = getattr(memory_system, "delays_dependent_transmitters",
                                 False)
        self._stt_future = getattr(memory_system, "future_variant", False)
        self._invisispec = hasattr(memory_system, "validation_latency")
        self._validation_latency = getattr(memory_system,
                                           "validation_latency", None)
        self._record_delayed_forward = getattr(memory_system,
                                               "record_delayed_forward", None)
        # The base-class commit_fetch is an empty hook whose return value
        # both engines ignore; when the scheme does not override it
        # (everything but MuonTrap and heterogeneous frontends) the
        # vectorized engine skips the call outright.
        self._commit_fetch_is_noop = (
            type(memory_system).commit_fetch is MemorySystem.commit_fetch)
        # The active tracer for the op currently in execute_op (None when
        # tracing is off); helpers read it instead of re-consulting the
        # module-level guard.
        self._tracer = None

    # -- bandwidth helpers ---------------------------------------------------------
    def _bandwidth_limit(self, desired_time: int,
                         tracker: Tuple[int, int],
                         width: int) -> Tuple[int, Tuple[int, int]]:
        """Allow at most ``width`` events per cycle; returns (time, tracker)."""
        cycle, used = tracker
        if desired_time > cycle:
            return desired_time, (desired_time, 1)
        if used < width:
            return cycle, (cycle, used + 1)
        return cycle + 1, (cycle + 1, 1)

    # -- register file helpers --------------------------------------------------------
    def _ensure_register(self, register: int) -> None:
        if register >= len(self._reg_ready):
            grow = register + 1 - len(self._reg_ready)
            self._reg_ready.extend([0] * grow)
            self._reg_taint.extend([None] * grow)

    def _read_sources(self, op: MicroOp) -> Tuple[int, Optional[int]]:
        """Return (ready_time, taint_visibility) over the op's source registers."""
        ready = 0
        taint: Optional[int] = None
        limit = len(self._reg_ready)
        for reg in op.src_regs:
            if reg >= limit:
                continue
            value = self._reg_ready[reg]
            if value > ready:
                ready = value
            visibility = self._reg_taint[reg]
            if visibility is not None and (taint is None or visibility > taint):
                taint = visibility
        return ready, taint

    def _write_destination(self, op: MicroOp, ready_time: int,
                           taint_visibility: Optional[int]) -> None:
        if op.dst_reg is None:
            return
        self._ensure_register(op.dst_reg)
        self._reg_ready[op.dst_reg] = ready_time
        self._reg_taint[op.dst_reg] = taint_visibility

    # -- front end ---------------------------------------------------------------------
    def _fetch(self, op: MicroOp, earliest: int) -> int:
        """Model the instruction-cache access for this op's fetch group."""
        fetch_line = op.pc - (op.pc % self._line_size)
        fetch_time = max(self._fetch_ready, earliest)
        if fetch_line != self._current_fetch_line:
            result = self.memory.fetch(self.core_id, self.process_id, op.pc,
                                       fetch_time, speculative=True, pc=op.pc)
            fetch_time += max(0, result.latency - 1)
            self._current_fetch_line = fetch_line
        self._fetch_ready = fetch_time
        return fetch_time

    # -- wrong-path execution --------------------------------------------------------------
    def _execute_wrong_path(self, op: MicroOp, dispatch_time: int,
                            resolve_time: int) -> None:
        """Issue the squashed accesses a mispredicted branch would cause."""
        if not op.wrong_path:
            return
        window = max(1, resolve_time - dispatch_time)
        tracer = self._tracer
        for access in op.wrong_path:
            issue_at = dispatch_time + min(access.issue_offset, window)
            if tracer is not None:
                tracer.now = issue_at
                tracer.emit("pipeline", "squash", cycle=issue_at,
                            core=self.core_id, address=access.address,
                            pc=op.pc, store=access.is_store,
                            fetch=access.is_instruction)
            if access.is_instruction:
                self.memory.fetch(self.core_id, self.process_id,
                                  access.address, issue_at,
                                  speculative=True, pc=access.address)
            elif access.is_store:
                self.memory.store_address_ready(self.core_id, self.process_id,
                                                access.address, issue_at,
                                                speculative=True, pc=op.pc)
            else:
                self.memory.load(self.core_id, self.process_id, access.address,
                                 issue_at, speculative=True, pc=op.pc)
            self._squashed_accesses.increment()
        # The fetch path also ran down the wrong path; the next correct-path
        # fetch re-reads the instruction cache.
        self._current_fetch_line = None
        self.memory.squash(self.core_id, resolve_time)

    # -- main per-instruction processing --------------------------------------------------------
    def execute_op(self, op: MicroOp) -> int:
        """Process one micro-op; returns its commit time."""
        op.sequence = self._sequence
        self._sequence += 1
        tracer = self._tracer = _active_tracer()

        # 1. Front end: fetch and dispatch, bounded by ROB/LSQ occupancy and
        #    dispatch bandwidth.
        fetch_time = self._fetch(op, self._fetch_ready)
        dispatch_time = self.rob.earliest_dispatch_time(fetch_time)
        if op.is_load:
            dispatch_time = max(dispatch_time,
                                self.load_queue.earliest_dispatch_time(
                                    dispatch_time))
        if op.is_store:
            dispatch_time = max(dispatch_time,
                                self.store_queue.earliest_dispatch_time(
                                    dispatch_time))
        dispatch_time, self._dispatched_in_cycle = self._bandwidth_limit(
            dispatch_time, self._dispatched_in_cycle, self.core_config.width)

        # 2. Issue: wait for source operands (plus STT taint delays).
        source_ready, source_taint = self._read_sources(op)
        issue_time = max(dispatch_time + 1, source_ready)
        if (self._stt_mode and source_taint is not None
                and op.kind.is_transmitter):
            if issue_time < source_taint:
                issue_time = source_taint
                if self._record_delayed_forward is not None:
                    self._record_delayed_forward()
        if tracer is not None:
            tracer.now = issue_time
            tracer.emit("pipeline", "issue", cycle=issue_time,
                        core=self.core_id, address=op.address, pc=op.pc,
                        kind=op.kind.value)

        # 3. Execute.
        completion, taint_visibility = self._execute(op, issue_time,
                                                     dispatch_time)
        if self._stt_mode and not op.is_load and source_taint is not None:
            # STT propagates taint transitively through non-load producers:
            # the result of an ALU op on a tainted value is itself tainted
            # until the original load's visibility point.
            taint_visibility = (source_taint if taint_visibility is None
                                else max(taint_visibility, source_taint))

        # 4. Commit in order, at most ``width`` per cycle.
        commit_time = max(completion, self._last_commit_time)
        commit_time, self._committed_in_cycle = self._bandwidth_limit(
            commit_time, self._committed_in_cycle, self.core_config.width)
        if tracer is not None:
            tracer.now = commit_time
        commit_time += self._commit_actions(op, commit_time, issue_time)
        self._last_commit_time = commit_time
        if tracer is not None:
            tracer.now = commit_time
            tracer.emit("pipeline", "commit", cycle=commit_time,
                        core=self.core_id, address=op.address, pc=op.pc,
                        kind=op.kind.value, issue=issue_time)

        # 5. Update structures.
        self.rob.retire_older_than(dispatch_time)
        self.rob.allocate(commit_time)
        if op.is_load:
            self.load_queue.retire_older_than(dispatch_time)
            self.load_queue.allocate(max(commit_time, self._pending_lq_hold))
            self._pending_lq_hold = 0
        if op.is_store:
            self.store_queue.retire_older_than(dispatch_time)
            self.store_queue.allocate(commit_time)
        self._write_destination(op, completion, taint_visibility)
        self._committed.increment()
        return commit_time

    # -- execution of the different op kinds -------------------------------------------------------
    def _execute(self, op: MicroOp, issue_time: int,
                 dispatch_time: int) -> Tuple[int, Optional[int]]:
        """Return (completion_time, taint_visibility_for_dst)."""
        if op.is_load:
            return self._execute_load(op, issue_time)
        if op.is_store:
            self.memory.store_address_ready(self.core_id, self.process_id,
                                            op.address, issue_time,
                                            speculative=True, pc=op.pc)
            return issue_time + op.execution_latency, None
        if op.is_branch:
            return self._execute_branch(op, issue_time, dispatch_time), None
        # Plain ALU / FP / system ops.
        return issue_time + op.execution_latency, None

    def _execute_load(self, op: MicroOp,
                      issue_time: int) -> Tuple[int, Optional[int]]:
        result = self.memory.load(self.core_id, self.process_id, op.address,
                                  issue_time, speculative=True, pc=op.pc)
        if result.must_retry_nonspeculative:
            # MuonTrap NACKed the access (it would disturb another core's
            # private line): retry once the load is the oldest outstanding
            # instruction, i.e. not before every older instruction committed.
            self._nack_retries.increment()
            retry_time = max(issue_time, self._last_commit_time)
            if self._tracer is not None:
                self._tracer.now = retry_time
                self._tracer.emit("pipeline", "nack_retry", cycle=retry_time,
                                  core=self.core_id, address=op.address,
                                  pc=op.pc)
            retry = self.memory.load(self.core_id, self.process_id, op.address,
                                     retry_time, speculative=False, pc=op.pc)
            completion = retry_time + retry.latency
        else:
            completion = issue_time + result.latency
        # STT taint: the loaded value is unsafe to forward to transmitters
        # until the load's visibility point.
        visibility: Optional[int] = None
        if self._stt_mode:
            if self._stt_future:
                visibility = max(completion, self._last_commit_time)
            else:
                visibility = max(completion, self._last_branch_resolve)
        return completion, visibility

    def _execute_branch(self, op: MicroOp, issue_time: int,
                        dispatch_time: int) -> int:
        resolve_time = issue_time + op.execution_latency
        if op.force_mispredict is None:
            self.predictor.predict(op.pc)
            mispredicted = self.predictor.update(op.pc, op.taken, op.target)
        else:
            mispredicted = op.force_mispredict
            self.predictor.update(op.pc, op.taken, op.target)
        self._last_branch_resolve = max(self._last_branch_resolve,
                                        resolve_time)
        if mispredicted:
            self._mispredictions.increment()
            if self._tracer is not None:
                self._tracer.emit("pipeline", "mispredict",
                                  cycle=resolve_time, core=self.core_id,
                                  pc=op.pc)
            self._execute_wrong_path(op, dispatch_time, resolve_time)
            # Redirect: the front end can only deliver correct-path
            # instructions after the pipeline refills.
            self._fetch_ready = max(
                self._fetch_ready,
                resolve_time + self.core_config.mispredict_penalty)
        return resolve_time

    # -- commit actions -------------------------------------------------------------------------------
    def _commit_actions(self, op: MicroOp, commit_time: int,
                        issue_time: int) -> int:
        """Perform memory-system commit work; returns extra commit latency."""
        extra = 0
        if op.is_load:
            self._committed_loads.increment()
            if self._invisispec:
                # InvisiSpec validation/exposure: the Spectre variant issues
                # it once older branches have resolved, the Future variant
                # only at commit; either way commit waits for it, and the
                # load-queue entry is held until the re-access completes.
                visibility = (commit_time if self._stt_future_like_invisispec()
                              else max(self._last_branch_resolve, issue_time))
                validation = self.memory.validation_latency(
                    self.core_id, self.process_id, op.address, visibility,
                    pc=op.pc)
                validation_done = visibility + validation
                extra += max(0, validation_done - commit_time)
                if self._stt_future_like_invisispec():
                    # The Future variant only starts its validation at the
                    # retirement point, so the load-queue entry is pinned for
                    # the whole re-access; the Spectre variant's validations
                    # overlap with the time the load spends waiting to retire.
                    self._pending_lq_hold = validation_done
            extra += self.memory.commit_load(self.core_id, self.process_id,
                                             op.address, commit_time + extra,
                                             pc=op.pc)
        elif op.is_store:
            self._committed_stores.increment()
            extra += self.memory.commit_store(self.core_id, self.process_id,
                                              op.address, commit_time + extra,
                                              pc=op.pc)
        elif op.is_branch:
            self._committed_branches.increment()
        self.memory.commit_fetch(self.core_id, self.process_id, op.pc,
                                 commit_time + extra, pc=op.pc)
        if op.is_syscall or op.is_context_switch:
            self._context_switches.increment()
            self.memory.context_switch(self.core_id, commit_time + extra)
            extra += self.core_config.mispredict_penalty
        if op.is_sandbox_entry:
            self.memory.sandbox_entry(self.core_id, commit_time + extra)
        return extra

    def _stt_future_like_invisispec(self) -> bool:
        """True for InvisiSpec-Future: visibility only at commit."""
        return self._invisispec and self._stt_future

    # -- packed-trace execution (the hot path) ------------------------------------------------------
    def run_packed(self, packed, start: int = 0,
                   end: Optional[int] = None) -> int:
        """Execute ops ``[start, end)`` of a packed trace; returns the clock.

        This is the zero-allocation twin of :meth:`execute_op`: identical
        step-for-step semantics (it is golden-tested to produce bit-identical
        cycles, instructions and statistics), but driven by the
        struct-of-arrays trace with every per-op attribute lookup hoisted
        into locals and statistics accumulated in local integers that are
        flushed once per call.

        When a tracer is active (``repro.telemetry``), execution routes
        through the per-op boundary path instead — bit-identical results,
        every hook point live.  With tracing off (the default) the check
        is one module-global read per call and the loop below is
        untouched, which is what keeps telemetry zero-cost when disabled.
        """
        if _active_tracer() is not None:
            return self._run_packed_traced(packed, start, end)
        if end is None:
            end = packed.length
        # -- trace columns ---------------------------------------------------
        col_flags = packed.flags
        col_pcs = packed.pcs
        col_addresses = packed.addresses
        col_latencies = packed.latencies
        col_srcs = packed.srcs
        col_dsts = packed.dsts
        col_targets = packed.targets
        col_wrong_paths = packed.wrong_paths
        # -- hoisted collaborators -------------------------------------------
        core_id = self.core_id
        process_id = self.process_id
        memory = self.memory
        mem_fetch = memory.fetch
        mem_load = memory.load
        mem_store_address_ready = memory.store_address_ready
        mem_commit_load = memory.commit_load
        mem_commit_store = memory.commit_store
        mem_commit_fetch = memory.commit_fetch
        mem_squash = memory.squash
        mem_context_switch = memory.context_switch
        mem_sandbox_entry = memory.sandbox_entry
        mem_validation_latency = self._validation_latency
        record_delayed_forward = self._record_delayed_forward
        predictor_predict = self.predictor.predict
        predictor_update = self.predictor.update
        rob = self.rob
        load_queue = self.load_queue
        store_queue = self.store_queue
        rob_times = rob._commit_times
        lq_times = load_queue._commit_times
        sq_times = store_queue._commit_times
        rob_pop = rob_times.popleft
        lq_pop = lq_times.popleft
        sq_pop = sq_times.popleft
        rob_append = rob_times.append
        lq_append = lq_times.append
        sq_append = sq_times.append
        rob_capacity = rob.capacity
        lq_capacity = load_queue.capacity
        sq_capacity = store_queue.capacity
        reg_ready = self._reg_ready
        reg_taint = self._reg_taint
        reg_limit = len(reg_ready)
        # -- hoisted configuration -------------------------------------------
        width = self.core_config.width
        mispredict_penalty = self.core_config.mispredict_penalty
        line_size = self._line_size
        stt_mode = self._stt_mode
        stt_future = self._stt_future
        invisispec = self._invisispec
        invisispec_future = self._invisispec and self._stt_future
        # -- core state pulled into locals -----------------------------------
        fetch_ready = self._fetch_ready
        current_fetch_line = self._current_fetch_line
        last_commit_time = self._last_commit_time
        last_branch_resolve = self._last_branch_resolve
        pending_lq_hold = self._pending_lq_hold
        dispatch_cycle, dispatch_used = self._dispatched_in_cycle
        commit_cycle, commit_used = self._committed_in_cycle
        # -- locally accumulated statistics ----------------------------------
        n_committed = 0
        n_loads = 0
        n_stores = 0
        n_branches = 0
        n_mispredictions = 0
        n_squashed = 0
        n_nack_retries = 0
        n_context_switches = 0
        n_rob_stalls = 0
        n_lq_stalls = 0
        n_sq_stalls = 0

        for index in range(start, end):
            flags = col_flags[index]
            pc = col_pcs[index]

            # 1. Front end: fetch and dispatch, bounded by ROB/LSQ occupancy
            #    and dispatch bandwidth.
            fetch_line = pc - pc % line_size
            fetch_time = fetch_ready
            if fetch_line != current_fetch_line:
                latency = mem_fetch(core_id, process_id, pc, fetch_time,
                                    speculative=True, pc=pc).latency - 1
                if latency > 0:
                    fetch_time += latency
                current_fetch_line = fetch_line
            fetch_ready = fetch_time

            dispatch_time = fetch_time
            if len(rob_times) >= rob_capacity:
                oldest = rob_times[0]
                if oldest > dispatch_time:
                    n_rob_stalls += 1
                    dispatch_time = oldest
            is_load = flags & F_LOAD
            is_store = flags & F_STORE
            if is_load and len(lq_times) >= lq_capacity:
                oldest = lq_times[0]
                if oldest > dispatch_time:
                    n_lq_stalls += 1
                    dispatch_time = oldest
            if is_store and len(sq_times) >= sq_capacity:
                oldest = sq_times[0]
                if oldest > dispatch_time:
                    n_sq_stalls += 1
                    dispatch_time = oldest
            if dispatch_time > dispatch_cycle:
                dispatch_cycle = dispatch_time
                dispatch_used = 1
            elif dispatch_used < width:
                dispatch_time = dispatch_cycle
                dispatch_used += 1
            else:
                dispatch_cycle += 1
                dispatch_used = 1
                dispatch_time = dispatch_cycle

            # 2. Issue: wait for source operands (plus STT taint delays).
            source_taint = None
            issue_time = dispatch_time + 1
            srcs = col_srcs[index]
            if srcs:
                for reg in srcs:
                    if reg >= reg_limit:
                        continue
                    value = reg_ready[reg]
                    if value > issue_time:
                        issue_time = value
                    visibility = reg_taint[reg]
                    if visibility is not None and (source_taint is None
                                                   or visibility > source_taint):
                        source_taint = visibility
                if (stt_mode and source_taint is not None
                        and flags & F_TRANSMITTER
                        and issue_time < source_taint):
                    issue_time = source_taint
                    if record_delayed_forward is not None:
                        record_delayed_forward()

            # 3. Execute.
            taint_visibility = None
            if is_load:
                address = col_addresses[index]
                result = mem_load(core_id, process_id, address, issue_time,
                                  speculative=True, pc=pc)
                if result.must_retry_nonspeculative:
                    n_nack_retries += 1
                    retry_time = (issue_time if issue_time > last_commit_time
                                  else last_commit_time)
                    retry = mem_load(core_id, process_id, address, retry_time,
                                     speculative=False, pc=pc)
                    completion = retry_time + retry.latency
                else:
                    completion = issue_time + result.latency
                if stt_mode:
                    if stt_future:
                        taint_visibility = (completion
                                            if completion > last_commit_time
                                            else last_commit_time)
                    else:
                        taint_visibility = (completion
                                            if completion > last_branch_resolve
                                            else last_branch_resolve)
            elif is_store:
                mem_store_address_ready(core_id, process_id,
                                        col_addresses[index], issue_time,
                                        speculative=True, pc=pc)
                completion = issue_time + col_latencies[index]
            elif flags & F_BRANCH:
                resolve_time = issue_time + col_latencies[index]
                taken = bool(flags & F_TAKEN)
                target = col_targets[index]
                if target < 0:
                    target = None
                if flags & F_FORCE_MISPREDICT:
                    mispredicted = bool(flags & F_FORCE_MISPREDICT_VALUE)
                    predictor_update(pc, taken, target)
                else:
                    predictor_predict(pc)
                    mispredicted = predictor_update(pc, taken, target)
                if resolve_time > last_branch_resolve:
                    last_branch_resolve = resolve_time
                if mispredicted:
                    n_mispredictions += 1
                    wrong_path = col_wrong_paths[index]
                    if wrong_path:
                        window = resolve_time - dispatch_time
                        if window < 1:
                            window = 1
                        for access in wrong_path:
                            offset = access.issue_offset
                            issue_at = dispatch_time + (
                                offset if offset < window else window)
                            if access.is_instruction:
                                mem_fetch(core_id, process_id, access.address,
                                          issue_at, speculative=True,
                                          pc=access.address)
                            elif access.is_store:
                                mem_store_address_ready(
                                    core_id, process_id, access.address,
                                    issue_at, speculative=True, pc=pc)
                            else:
                                mem_load(core_id, process_id, access.address,
                                         issue_at, speculative=True, pc=pc)
                            n_squashed += 1
                        current_fetch_line = None
                        mem_squash(core_id, resolve_time)
                    redirect = resolve_time + mispredict_penalty
                    if redirect > fetch_ready:
                        fetch_ready = redirect
                completion = resolve_time
            else:
                completion = issue_time + col_latencies[index]

            if stt_mode and not is_load and source_taint is not None:
                # STT propagates taint transitively through non-load
                # producers until the original load's visibility point.
                if taint_visibility is None or source_taint > taint_visibility:
                    taint_visibility = source_taint

            # 4. Commit in order, at most ``width`` per cycle.
            commit_time = (completion if completion > last_commit_time
                           else last_commit_time)
            if commit_time > commit_cycle:
                commit_cycle = commit_time
                commit_used = 1
            elif commit_used < width:
                commit_time = commit_cycle
                commit_used += 1
            else:
                commit_cycle += 1
                commit_used = 1
                commit_time = commit_cycle

            extra = 0
            if is_load:
                n_loads += 1
                address = col_addresses[index]
                if invisispec:
                    if invisispec_future:
                        visibility = commit_time
                    else:
                        visibility = (last_branch_resolve
                                      if last_branch_resolve > issue_time
                                      else issue_time)
                    validation_done = visibility + mem_validation_latency(
                        core_id, process_id, address, visibility, pc=pc)
                    overshoot = validation_done - commit_time
                    if overshoot > 0:
                        extra += overshoot
                    if invisispec_future:
                        pending_lq_hold = validation_done
                extra += mem_commit_load(core_id, process_id, address,
                                         commit_time + extra, pc=pc)
            elif is_store:
                n_stores += 1
                extra += mem_commit_store(core_id, process_id,
                                          col_addresses[index],
                                          commit_time + extra, pc=pc)
            elif flags & F_BRANCH:
                n_branches += 1
            mem_commit_fetch(core_id, process_id, pc, commit_time + extra,
                             pc=pc)
            if flags & (F_SYSCALL | F_CONTEXT_SWITCH):
                n_context_switches += 1
                mem_context_switch(core_id, commit_time + extra)
                extra += mispredict_penalty
            if flags & F_SANDBOX_ENTRY:
                mem_sandbox_entry(core_id, commit_time + extra)
            commit_time += extra
            last_commit_time = commit_time

            # 5. Update structures.
            while rob_times and rob_times[0] <= dispatch_time:
                rob_pop()
            while rob_times and len(rob_times) >= rob_capacity:
                rob_pop()
            rob_append(commit_time)
            if is_load:
                while lq_times and lq_times[0] <= dispatch_time:
                    lq_pop()
                hold = (commit_time if commit_time > pending_lq_hold
                        else pending_lq_hold)
                while lq_times and len(lq_times) >= lq_capacity:
                    lq_pop()
                lq_append(hold)
                pending_lq_hold = 0
            if is_store:
                while sq_times and sq_times[0] <= dispatch_time:
                    sq_pop()
                while sq_times and len(sq_times) >= sq_capacity:
                    sq_pop()
                sq_append(commit_time)
            dst = col_dsts[index]
            if dst >= 0:
                if dst >= reg_limit:
                    grow = dst + 1 - reg_limit
                    reg_ready.extend([0] * grow)
                    reg_taint.extend([None] * grow)
                    reg_limit = dst + 1
                reg_ready[dst] = completion
                reg_taint[dst] = taint_visibility
            n_committed += 1

        # -- write state back -------------------------------------------------
        self._fetch_ready = fetch_ready
        self._current_fetch_line = current_fetch_line
        self._last_commit_time = last_commit_time
        self._last_branch_resolve = last_branch_resolve
        self._pending_lq_hold = pending_lq_hold
        self._dispatched_in_cycle = (dispatch_cycle, dispatch_used)
        self._committed_in_cycle = (commit_cycle, commit_used)
        self._sequence += end - start
        rob.full_stalls += n_rob_stalls
        load_queue.full_stalls += n_lq_stalls
        store_queue.full_stalls += n_sq_stalls
        # -- flush batched statistics -----------------------------------------
        if n_committed:
            self._committed.add(n_committed)
        if n_loads:
            self._committed_loads.add(n_loads)
        if n_stores:
            self._committed_stores.add(n_stores)
        if n_branches:
            self._committed_branches.add(n_branches)
        if n_mispredictions:
            self._mispredictions.add(n_mispredictions)
        if n_squashed:
            self._squashed_accesses.add(n_squashed)
        if n_nack_retries:
            self._nack_retries.add(n_nack_retries)
        if n_context_switches:
            self._context_switches.add(n_context_switches)
        return last_commit_time

    def run_vectorized(self, packed, start: int = 0,
                       end: Optional[int] = None) -> int:
        """Execute ops ``[start, end)`` of a packed trace, batching runs.

        The plan-driven twin of :meth:`run_packed` (golden-tested
        bit-identical to it and to :meth:`execute_op`): complex ops —
        loads, stores, branches, syscalls — take the scalar path verbatim,
        while maximal runs of simple ALU ops sharing one instruction-cache
        line are replayed as batches.  Long full runs go through numpy
        array recurrences (closed-form dispatch bandwidth, scatter-max
        external-operand gathering, a lag-``width`` maximum recurrence for
        the in-order commit stage); shorter or partial runs use a batched
        scalar fast path that skips per-op classification, fetch-line
        checks and — for schemes that never override the hook — the no-op
        ``commit_fetch`` upcall.
        """
        if _active_tracer() is not None:
            return self._run_packed_traced(packed, start, end)
        if end is None:
            end = packed.length
        plan = packed.plan(self._line_size)
        plan_run_end = plan.run_end
        vector_runs = plan.vector_runs
        # -- trace columns ---------------------------------------------------
        col_flags = packed.flags
        col_pcs = packed.pcs
        col_addresses = packed.addresses
        col_latencies = packed.latencies
        col_srcs = packed.srcs
        col_dsts = packed.dsts
        col_targets = packed.targets
        col_wrong_paths = packed.wrong_paths
        # -- hoisted collaborators -------------------------------------------
        core_id = self.core_id
        process_id = self.process_id
        memory = self.memory
        mem_fetch = memory.fetch
        mem_load = memory.load
        mem_store_address_ready = memory.store_address_ready
        mem_commit_load = memory.commit_load
        mem_commit_store = memory.commit_store
        mem_commit_fetch = memory.commit_fetch
        mem_squash = memory.squash
        mem_context_switch = memory.context_switch
        mem_sandbox_entry = memory.sandbox_entry
        mem_validation_latency = self._validation_latency
        record_delayed_forward = self._record_delayed_forward
        predictor_predict = self.predictor.predict
        predictor_update = self.predictor.update
        rob = self.rob
        load_queue = self.load_queue
        store_queue = self.store_queue
        rob_times = rob._commit_times
        lq_times = load_queue._commit_times
        sq_times = store_queue._commit_times
        rob_pop = rob_times.popleft
        lq_pop = lq_times.popleft
        sq_pop = sq_times.popleft
        rob_append = rob_times.append
        lq_append = lq_times.append
        sq_append = sq_times.append
        rob_extend = rob_times.extend
        rob_capacity = rob.capacity
        lq_capacity = load_queue.capacity
        sq_capacity = store_queue.capacity
        reg_ready = self._reg_ready
        reg_taint = self._reg_taint
        reg_limit = len(reg_ready)
        # -- hoisted configuration -------------------------------------------
        width = self.core_config.width
        mispredict_penalty = self.core_config.mispredict_penalty
        line_size = self._line_size
        stt_mode = self._stt_mode
        stt_future = self._stt_future
        invisispec = self._invisispec
        invisispec_future = self._invisispec and self._stt_future
        commit_fetch_noop = self._commit_fetch_is_noop
        # -- core state pulled into locals -----------------------------------
        fetch_ready = self._fetch_ready
        current_fetch_line = self._current_fetch_line
        last_commit_time = self._last_commit_time
        last_branch_resolve = self._last_branch_resolve
        pending_lq_hold = self._pending_lq_hold
        dispatch_cycle, dispatch_used = self._dispatched_in_cycle
        commit_cycle, commit_used = self._committed_in_cycle
        # -- locally accumulated statistics ----------------------------------
        n_committed = 0
        n_loads = 0
        n_stores = 0
        n_branches = 0
        n_mispredictions = 0
        n_squashed = 0
        n_nack_retries = 0
        n_context_switches = 0
        n_rob_stalls = 0
        n_lq_stalls = 0
        n_sq_stalls = 0

        index = start
        while index < end:
            stop = plan_run_end[index]
            if stop > index:
                # ==== batched simple run [index, stop) ======================
                if stop > end:
                    stop = end
                # Fetch: every op in the batch shares one line, so only
                # the first can miss the line buffer; the per-op
                # ``fetch_ready = fetch_time`` assignments of the scalar
                # loop are all no-ops after this point.
                pc = col_pcs[index]
                fetch_line = pc - pc % line_size
                fetch_time = fetch_ready
                if fetch_line != current_fetch_line:
                    latency = mem_fetch(core_id, process_id, pc, fetch_time,
                                        speculative=True, pc=pc).latency - 1
                    if latency > 0:
                        fetch_time += latency
                    current_fetch_line = fetch_line
                fetch_ready = fetch_time

                run_plan = vector_runs.get(index) if vector_runs else None
                if (run_plan is not None and stop == run_plan.stop
                        and not stt_mode
                        and len(rob_times) + (stop - index) <= rob_capacity):
                    # ---- numpy whole-run replay ----------------------------
                    # Preconditions: full run (the per-run summaries cover
                    # exactly [start, stop)), STT off (no taint flow), and
                    # enough ROB headroom that no op can stall even if no
                    # entry retires — so dispatch, issue and commit reduce
                    # to closed-form array recurrences.
                    count = stop - index
                    # Dispatch: every op wants ``fetch_time``; the width-
                    # per-cycle tracker then assigns consecutive slots.
                    if fetch_time > dispatch_cycle:
                        base_cycle = fetch_time
                        base_used = 0
                    else:
                        base_cycle = dispatch_cycle
                        base_used = dispatch_used
                    slots = _np.arange(base_used, base_used + count,
                                       dtype=_np.int64)
                    dispatches = base_cycle + slots // width
                    dispatch_cycle = int(dispatches[-1])
                    dispatch_used = (base_used + count - 1) % width + 1
                    # Issue: dispatch + 1, raised by external operand
                    # ready times (scatter-max over the run's reads).
                    issue = dispatches + 1
                    ext_regs = run_plan.ext_regs
                    if ext_regs:
                        values = _np.fromiter(
                            (reg_ready[reg] if reg < reg_limit else 0
                             for reg in ext_regs),
                            dtype=_np.int64, count=len(ext_regs))
                        floor = _np.zeros(count, dtype=_np.int64)
                        _np.maximum.at(floor, run_plan.ext_positions, values)
                        issue = _np.maximum(issue, floor)
                    completion = issue + run_plan.lat
                    for position, producers in run_plan.dep_ops:
                        ready = issue[position]
                        for producer in producers:
                            value = completion[producer]
                            if value > ready:
                                ready = value
                        completion[position] = ready + run_plan.lat[position]
                    # Commit: in order, at most ``width`` per cycle.  The
                    # tracker is exactly the lag-width recurrence
                    # c[i] = max(base[i], c[i-width] + 1) over the running
                    # maximum of completion times, with ``commit_used``
                    # virtual commits at ``commit_cycle`` seeding the lag.
                    base = _np.maximum.accumulate(
                        _np.maximum(completion, last_commit_time))
                    commits = base.copy()
                    first = min(width, count)
                    low = width - commit_used
                    if low < first:
                        _np.maximum(commits[low:first], commit_cycle + 1,
                                    out=commits[low:first])
                    for chunk in range(width, count, width):
                        upper = min(chunk + width, count)
                        _np.maximum(
                            commits[chunk:upper],
                            commits[chunk - width:chunk - width
                                    + (upper - chunk)] + 1,
                            out=commits[chunk:upper])
                    commit_list = commits.tolist()
                    new_last = commit_list[-1]
                    trailing = int(_np.count_nonzero(commits == new_last))
                    if new_last == commit_cycle:
                        trailing += commit_used
                    commit_cycle = new_last
                    commit_used = trailing
                    last_commit_time = new_last
                    if not commit_fetch_noop:
                        for offset in range(count):
                            op_pc = col_pcs[index + offset]
                            mem_commit_fetch(core_id, process_id, op_pc,
                                             commit_list[offset], pc=op_pc)
                    # ROB: deferred pops and appends leave the deque in
                    # exactly the per-op state (commit times are
                    # nondecreasing, so the per-op pop threshold is the
                    # final dispatch time).
                    while rob_times and rob_times[0] <= dispatch_cycle:
                        rob_pop()
                    cut = int(_np.searchsorted(commits, dispatch_cycle,
                                               side="right"))
                    if cut == 0:
                        rob_extend(commit_list)
                    elif cut < count:
                        rob_extend(commit_list[cut:])
                    # Register file: only the last write per register is
                    # visible after the run (in-run readers resolved
                    # against the completion array above).
                    max_dst = run_plan.max_dst
                    if max_dst >= reg_limit:
                        grow = max_dst + 1 - reg_limit
                        reg_ready.extend([0] * grow)
                        reg_taint.extend([None] * grow)
                        reg_limit = max_dst + 1
                    completion_list = completion.tolist()
                    for reg, position in run_plan.final_writes:
                        reg_ready[reg] = completion_list[position]
                    n_committed += count
                    index = stop
                    continue

                # ---- batched scalar fast path --------------------------
                for op_index in range(index, stop):
                    dispatch_time = fetch_time
                    if len(rob_times) >= rob_capacity:
                        oldest = rob_times[0]
                        if oldest > dispatch_time:
                            n_rob_stalls += 1
                            dispatch_time = oldest
                    if dispatch_time > dispatch_cycle:
                        dispatch_cycle = dispatch_time
                        dispatch_used = 1
                    elif dispatch_used < width:
                        dispatch_time = dispatch_cycle
                        dispatch_used += 1
                    else:
                        dispatch_cycle += 1
                        dispatch_used = 1
                        dispatch_time = dispatch_cycle

                    source_taint = None
                    issue_time = dispatch_time + 1
                    srcs = col_srcs[op_index]
                    if srcs:
                        for reg in srcs:
                            if reg >= reg_limit:
                                continue
                            value = reg_ready[reg]
                            if value > issue_time:
                                issue_time = value
                            visibility = reg_taint[reg]
                            if visibility is not None \
                                    and (source_taint is None
                                         or visibility > source_taint):
                                source_taint = visibility
                        if (stt_mode and source_taint is not None
                                and col_flags[op_index] & F_TRANSMITTER
                                and issue_time < source_taint):
                            issue_time = source_taint
                            if record_delayed_forward is not None:
                                record_delayed_forward()
                    completion = issue_time + col_latencies[op_index]
                    if stt_mode and source_taint is not None:
                        taint_visibility = source_taint
                    else:
                        taint_visibility = None

                    commit_time = (completion
                                   if completion > last_commit_time
                                   else last_commit_time)
                    if commit_time > commit_cycle:
                        commit_cycle = commit_time
                        commit_used = 1
                    elif commit_used < width:
                        commit_time = commit_cycle
                        commit_used += 1
                    else:
                        commit_cycle += 1
                        commit_used = 1
                        commit_time = commit_cycle
                    if not commit_fetch_noop:
                        op_pc = col_pcs[op_index]
                        mem_commit_fetch(core_id, process_id, op_pc,
                                         commit_time, pc=op_pc)
                    last_commit_time = commit_time

                    while rob_times and rob_times[0] <= dispatch_time:
                        rob_pop()
                    while rob_times and len(rob_times) >= rob_capacity:
                        rob_pop()
                    rob_append(commit_time)
                    dst = col_dsts[op_index]
                    if dst >= 0:
                        if dst >= reg_limit:
                            grow = dst + 1 - reg_limit
                            reg_ready.extend([0] * grow)
                            reg_taint.extend([None] * grow)
                            reg_limit = dst + 1
                        reg_ready[dst] = completion
                        reg_taint[dst] = taint_visibility
                    n_committed += 1
                index = stop
                continue

            # ==== complex op: the scalar run_packed body verbatim ===========
            flags = col_flags[index]
            pc = col_pcs[index]

            fetch_line = pc - pc % line_size
            fetch_time = fetch_ready
            if fetch_line != current_fetch_line:
                latency = mem_fetch(core_id, process_id, pc, fetch_time,
                                    speculative=True, pc=pc).latency - 1
                if latency > 0:
                    fetch_time += latency
                current_fetch_line = fetch_line
            fetch_ready = fetch_time

            dispatch_time = fetch_time
            if len(rob_times) >= rob_capacity:
                oldest = rob_times[0]
                if oldest > dispatch_time:
                    n_rob_stalls += 1
                    dispatch_time = oldest
            is_load = flags & F_LOAD
            is_store = flags & F_STORE
            if is_load and len(lq_times) >= lq_capacity:
                oldest = lq_times[0]
                if oldest > dispatch_time:
                    n_lq_stalls += 1
                    dispatch_time = oldest
            if is_store and len(sq_times) >= sq_capacity:
                oldest = sq_times[0]
                if oldest > dispatch_time:
                    n_sq_stalls += 1
                    dispatch_time = oldest
            if dispatch_time > dispatch_cycle:
                dispatch_cycle = dispatch_time
                dispatch_used = 1
            elif dispatch_used < width:
                dispatch_time = dispatch_cycle
                dispatch_used += 1
            else:
                dispatch_cycle += 1
                dispatch_used = 1
                dispatch_time = dispatch_cycle

            source_taint = None
            issue_time = dispatch_time + 1
            srcs = col_srcs[index]
            if srcs:
                for reg in srcs:
                    if reg >= reg_limit:
                        continue
                    value = reg_ready[reg]
                    if value > issue_time:
                        issue_time = value
                    visibility = reg_taint[reg]
                    if visibility is not None and (source_taint is None
                                                   or visibility > source_taint):
                        source_taint = visibility
                if (stt_mode and source_taint is not None
                        and flags & F_TRANSMITTER
                        and issue_time < source_taint):
                    issue_time = source_taint
                    if record_delayed_forward is not None:
                        record_delayed_forward()

            taint_visibility = None
            if is_load:
                address = col_addresses[index]
                result = mem_load(core_id, process_id, address, issue_time,
                                  speculative=True, pc=pc)
                if result.must_retry_nonspeculative:
                    n_nack_retries += 1
                    retry_time = (issue_time if issue_time > last_commit_time
                                  else last_commit_time)
                    retry = mem_load(core_id, process_id, address, retry_time,
                                     speculative=False, pc=pc)
                    completion = retry_time + retry.latency
                else:
                    completion = issue_time + result.latency
                if stt_mode:
                    if stt_future:
                        taint_visibility = (completion
                                            if completion > last_commit_time
                                            else last_commit_time)
                    else:
                        taint_visibility = (completion
                                            if completion > last_branch_resolve
                                            else last_branch_resolve)
            elif is_store:
                mem_store_address_ready(core_id, process_id,
                                        col_addresses[index], issue_time,
                                        speculative=True, pc=pc)
                completion = issue_time + col_latencies[index]
            elif flags & F_BRANCH:
                resolve_time = issue_time + col_latencies[index]
                taken = bool(flags & F_TAKEN)
                target = col_targets[index]
                if target < 0:
                    target = None
                if flags & F_FORCE_MISPREDICT:
                    mispredicted = bool(flags & F_FORCE_MISPREDICT_VALUE)
                    predictor_update(pc, taken, target)
                else:
                    predictor_predict(pc)
                    mispredicted = predictor_update(pc, taken, target)
                if resolve_time > last_branch_resolve:
                    last_branch_resolve = resolve_time
                if mispredicted:
                    n_mispredictions += 1
                    wrong_path = col_wrong_paths[index]
                    if wrong_path:
                        window = resolve_time - dispatch_time
                        if window < 1:
                            window = 1
                        for access in wrong_path:
                            offset = access.issue_offset
                            issue_at = dispatch_time + (
                                offset if offset < window else window)
                            if access.is_instruction:
                                mem_fetch(core_id, process_id, access.address,
                                          issue_at, speculative=True,
                                          pc=access.address)
                            elif access.is_store:
                                mem_store_address_ready(
                                    core_id, process_id, access.address,
                                    issue_at, speculative=True, pc=pc)
                            else:
                                mem_load(core_id, process_id, access.address,
                                         issue_at, speculative=True, pc=pc)
                            n_squashed += 1
                        current_fetch_line = None
                        mem_squash(core_id, resolve_time)
                    redirect = resolve_time + mispredict_penalty
                    if redirect > fetch_ready:
                        fetch_ready = redirect
                completion = resolve_time
            else:
                completion = issue_time + col_latencies[index]

            if stt_mode and not is_load and source_taint is not None:
                if taint_visibility is None or source_taint > taint_visibility:
                    taint_visibility = source_taint

            commit_time = (completion if completion > last_commit_time
                           else last_commit_time)
            if commit_time > commit_cycle:
                commit_cycle = commit_time
                commit_used = 1
            elif commit_used < width:
                commit_time = commit_cycle
                commit_used += 1
            else:
                commit_cycle += 1
                commit_used = 1
                commit_time = commit_cycle

            extra = 0
            if is_load:
                n_loads += 1
                address = col_addresses[index]
                if invisispec:
                    if invisispec_future:
                        visibility = commit_time
                    else:
                        visibility = (last_branch_resolve
                                      if last_branch_resolve > issue_time
                                      else issue_time)
                    validation_done = visibility + mem_validation_latency(
                        core_id, process_id, address, visibility, pc=pc)
                    overshoot = validation_done - commit_time
                    if overshoot > 0:
                        extra += overshoot
                    if invisispec_future:
                        pending_lq_hold = validation_done
                extra += mem_commit_load(core_id, process_id, address,
                                         commit_time + extra, pc=pc)
            elif is_store:
                n_stores += 1
                extra += mem_commit_store(core_id, process_id,
                                          col_addresses[index],
                                          commit_time + extra, pc=pc)
            elif flags & F_BRANCH:
                n_branches += 1
            if not commit_fetch_noop:
                mem_commit_fetch(core_id, process_id, pc, commit_time + extra,
                                 pc=pc)
            if flags & (F_SYSCALL | F_CONTEXT_SWITCH):
                n_context_switches += 1
                mem_context_switch(core_id, commit_time + extra)
                extra += mispredict_penalty
            if flags & F_SANDBOX_ENTRY:
                mem_sandbox_entry(core_id, commit_time + extra)
            commit_time += extra
            last_commit_time = commit_time

            while rob_times and rob_times[0] <= dispatch_time:
                rob_pop()
            while rob_times and len(rob_times) >= rob_capacity:
                rob_pop()
            rob_append(commit_time)
            if is_load:
                while lq_times and lq_times[0] <= dispatch_time:
                    lq_pop()
                hold = (commit_time if commit_time > pending_lq_hold
                        else pending_lq_hold)
                while lq_times and len(lq_times) >= lq_capacity:
                    lq_pop()
                lq_append(hold)
                pending_lq_hold = 0
            if is_store:
                while sq_times and sq_times[0] <= dispatch_time:
                    sq_pop()
                while sq_times and len(sq_times) >= sq_capacity:
                    sq_pop()
                sq_append(commit_time)
            dst = col_dsts[index]
            if dst >= 0:
                if dst >= reg_limit:
                    grow = dst + 1 - reg_limit
                    reg_ready.extend([0] * grow)
                    reg_taint.extend([None] * grow)
                    reg_limit = dst + 1
                reg_ready[dst] = completion
                reg_taint[dst] = taint_visibility
            n_committed += 1
            index += 1

        # -- write state back -------------------------------------------------
        self._fetch_ready = fetch_ready
        self._current_fetch_line = current_fetch_line
        self._last_commit_time = last_commit_time
        self._last_branch_resolve = last_branch_resolve
        self._pending_lq_hold = pending_lq_hold
        self._dispatched_in_cycle = (dispatch_cycle, dispatch_used)
        self._committed_in_cycle = (commit_cycle, commit_used)
        self._sequence += end - start
        rob.full_stalls += n_rob_stalls
        load_queue.full_stalls += n_lq_stalls
        store_queue.full_stalls += n_sq_stalls
        # -- flush batched statistics -----------------------------------------
        if n_committed:
            self._committed.add(n_committed)
        if n_loads:
            self._committed_loads.add(n_loads)
        if n_stores:
            self._committed_stores.add(n_stores)
        if n_branches:
            self._committed_branches.add(n_branches)
        if n_mispredictions:
            self._mispredictions.add(n_mispredictions)
        if n_squashed:
            self._squashed_accesses.add(n_squashed)
        if n_nack_retries:
            self._nack_retries.add(n_nack_retries)
        if n_context_switches:
            self._context_switches.add(n_context_switches)
        return last_commit_time

    def _run_packed_traced(self, packed, start: int = 0,
                           end: Optional[int] = None) -> int:
        """The traced twin of :meth:`run_packed`.

        Materialises each op and drives it through :meth:`execute_op` — the
        boundary path golden-tested bit-identical to the packed loop — so
        the pipeline, cache, coherence, filter and TLB hook points all fire
        while cycles, instructions and statistics stay exactly those of the
        untraced run.
        """
        if end is None:
            end = packed.length
        op_at = packed.op
        execute_op = self.execute_op
        for index in range(start, end):
            execute_op(op_at(index))
        return self._last_commit_time

    # -- whole-trace execution -----------------------------------------------------------------------------
    def run(self, trace: Union["Trace", "PackedTrace", Iterable[MicroOp]]
            ) -> CoreResult:
        """Execute a complete trace and return the timing summary.

        Accepts a :class:`~repro.workloads.trace.Trace` or
        :class:`~repro.workloads.trace.PackedTrace` (executed through the
        packed fast path) or any iterable of :class:`MicroOp` (executed
        op-by-op through :meth:`execute_op`).
        """
        packed = getattr(trace, "packed", None)
        if packed is not None:                 # a Trace
            self.run_packed(packed())
        elif hasattr(trace, "flags"):          # already a PackedTrace
            self.run_packed(trace)
        else:
            for op in trace:
                self.execute_op(op)
        return self.result()

    def register_ready_time(self, register: int) -> int:
        """Cycle at which ``register``'s value becomes available.

        Used by attack harnesses and tests to time an individual
        instruction through the real core: the completion time of an op's
        destination register, minus the completion time of a producer it
        depends on, is exactly the latency the memory system charged.
        """
        if 0 <= register < len(self._reg_ready):
            return self._reg_ready[register]
        return 0

    def result(self) -> CoreResult:
        return CoreResult(
            core_id=self.core_id,
            committed_instructions=self._committed.value,
            cycles=self._last_commit_time,
            committed_loads=self._committed_loads.value,
            committed_stores=self._committed_stores.value,
            committed_branches=self._committed_branches.value,
            mispredictions=self._mispredictions.value,
            squashed_accesses=self._squashed_accesses.value,
            nack_retries=self._nack_retries.value)

    @property
    def current_cycle(self) -> int:
        return self._last_commit_time
