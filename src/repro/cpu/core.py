"""The out-of-order core timing model.

The core consumes a trace of :class:`~repro.cpu.instructions.MicroOp` and
computes, for each instruction, when it dispatches, issues, completes and
commits, under the structural constraints of Table 1 (8-wide front end and
commit, 192-entry ROB, 32-entry load and store queues) and the data-flow
constraints implied by register dependencies and memory latency.  It is a
constraint-propagation model rather than a cycle-stepped pipeline: each
instruction is processed once, in program order, which keeps simulation
O(1) per instruction while still reproducing the behaviour the paper's
evaluation depends on:

* speculative and *wrong-path* memory accesses reach the memory system
  before the branch that caused them resolves, and are then squashed;
* long-latency loads, NACK retries (MuonTrap's reduced coherency
  speculation) and commit-time validation (InvisiSpec) create back-pressure
  through the ROB/LSQ capacity constraints;
* STT-style defences delay the issue of transmit instructions that depend
  on a still-speculative load;
* every committed load/store/fetch performs its commit-time action in the
  memory system (write-through-at-commit, prefetch notification, exclusive
  upgrade, ...).

The same class serves single-core (SPEC CPU2006) and multi-core (Parsec)
experiments; in the latter case :class:`repro.sim.simulator.Simulator`
interleaves `step()` calls across cores so that the cores' clocks advance
together and their traffic interacts in the shared L2 and coherence bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.common.params import CoreConfig, ProtectionMode, SystemConfig
from repro.common.statistics import StatGroup
from repro.cpu.branch_predictor import TournamentPredictor
from repro.cpu.instructions import MicroOp, OpKind
from repro.cpu.interface import MemoryAccessResult, MemorySystem
from repro.cpu.rob import LoadQueue, ReorderBuffer, StoreQueue


@dataclass
class CoreResult:
    """Summary of one core's execution of one trace."""

    core_id: int
    committed_instructions: int
    cycles: int
    committed_loads: int = 0
    committed_stores: int = 0
    committed_branches: int = 0
    mispredictions: int = 0
    squashed_accesses: int = 0
    nack_retries: int = 0

    @property
    def ipc(self) -> float:
        return (self.committed_instructions / self.cycles
                if self.cycles else 0.0)

    @property
    def misprediction_rate(self) -> float:
        if not self.committed_branches:
            return 0.0
        return self.mispredictions / self.committed_branches


@dataclass
class _RegisterValue:
    """When a register's value is available, and its taint for STT."""

    ready_time: int = 0
    #: Visibility point of the producing load (None when not a load result).
    taint_visibility: Optional[int] = None


class OutOfOrderCore:
    """An 8-wide out-of-order core driven by a micro-op trace."""

    def __init__(self, core_id: int, config: SystemConfig,
                 memory_system: MemorySystem,
                 process_id: int = 0,
                 stats: Optional[StatGroup] = None) -> None:
        self.core_id = core_id
        self.config = config
        self.core_config: CoreConfig = config.core
        self.memory = memory_system
        self.process_id = process_id
        stats = stats or StatGroup(f"core{core_id}")
        self.stats = stats
        self.predictor = TournamentPredictor(
            self.core_config.branch_predictor,
            stats=stats.child("branch_predictor"))
        self.rob = ReorderBuffer(self.core_config.rob_entries)
        self.load_queue = LoadQueue(self.core_config.lq_entries)
        self.store_queue = StoreQueue(self.core_config.sq_entries)
        self._registers: Dict[int, _RegisterValue] = {}
        self._committed = stats.counter("committed_instructions")
        self._committed_loads = stats.counter("committed_loads")
        self._committed_stores = stats.counter("committed_stores")
        self._committed_branches = stats.counter("committed_branches")
        self._mispredictions = stats.counter("mispredictions")
        self._squashed_accesses = stats.counter("squashed_accesses")
        self._nack_retries = stats.counter("nack_retries")
        self._context_switches = stats.counter("context_switches")
        # Timing cursors.
        self._fetch_ready = 0           # when the front end can deliver next
        self._dispatched_in_cycle: Tuple[int, int] = (-1, 0)
        self._committed_in_cycle: Tuple[int, int] = (-1, 0)
        self._last_commit_time = 0
        self._last_branch_resolve = 0   # prefix max of branch resolve times
        self._sequence = 0
        self._pending_lq_hold = 0
        self._line_size = config.l1i.line_size
        self._current_fetch_line: Optional[int] = None
        # Memory-system capability probes.
        self._stt_mode = getattr(memory_system, "delays_dependent_transmitters",
                                 False)
        self._stt_future = getattr(memory_system, "future_variant", False)
        self._invisispec = hasattr(memory_system, "validation_latency")

    # -- bandwidth helpers ---------------------------------------------------------
    def _bandwidth_limit(self, desired_time: int,
                         tracker: Tuple[int, int],
                         width: int) -> Tuple[int, Tuple[int, int]]:
        """Allow at most ``width`` events per cycle; returns (time, tracker)."""
        cycle, used = tracker
        if desired_time > cycle:
            return desired_time, (desired_time, 1)
        if used < width:
            return cycle, (cycle, used + 1)
        return cycle + 1, (cycle + 1, 1)

    # -- register file helpers --------------------------------------------------------
    def _read_sources(self, op: MicroOp) -> Tuple[int, Optional[int]]:
        """Return (ready_time, taint_visibility) over the op's source registers."""
        ready = 0
        taint: Optional[int] = None
        for reg in op.src_regs:
            value = self._registers.get(reg)
            if value is None:
                continue
            ready = max(ready, value.ready_time)
            if value.taint_visibility is not None:
                taint = (value.taint_visibility if taint is None
                         else max(taint, value.taint_visibility))
        return ready, taint

    def _write_destination(self, op: MicroOp, ready_time: int,
                           taint_visibility: Optional[int]) -> None:
        if op.dst_reg is None:
            return
        self._registers[op.dst_reg] = _RegisterValue(
            ready_time=ready_time, taint_visibility=taint_visibility)

    # -- front end ---------------------------------------------------------------------
    def _fetch(self, op: MicroOp, earliest: int) -> int:
        """Model the instruction-cache access for this op's fetch group."""
        fetch_line = op.pc - (op.pc % self._line_size)
        fetch_time = max(self._fetch_ready, earliest)
        if fetch_line != self._current_fetch_line:
            result = self.memory.fetch(self.core_id, self.process_id, op.pc,
                                       fetch_time, speculative=True, pc=op.pc)
            fetch_time += max(0, result.latency - 1)
            self._current_fetch_line = fetch_line
        self._fetch_ready = fetch_time
        return fetch_time

    # -- wrong-path execution --------------------------------------------------------------
    def _execute_wrong_path(self, op: MicroOp, dispatch_time: int,
                            resolve_time: int) -> None:
        """Issue the squashed accesses a mispredicted branch would cause."""
        if not op.wrong_path:
            return
        window = max(1, resolve_time - dispatch_time)
        for access in op.wrong_path:
            issue_at = dispatch_time + min(access.issue_offset, window)
            if access.is_instruction:
                self.memory.fetch(self.core_id, self.process_id,
                                  access.address, issue_at,
                                  speculative=True, pc=access.address)
            elif access.is_store:
                self.memory.store_address_ready(self.core_id, self.process_id,
                                                access.address, issue_at,
                                                speculative=True, pc=op.pc)
            else:
                self.memory.load(self.core_id, self.process_id, access.address,
                                 issue_at, speculative=True, pc=op.pc)
            self._squashed_accesses.increment()
        # The fetch path also ran down the wrong path; the next correct-path
        # fetch re-reads the instruction cache.
        self._current_fetch_line = None
        self.memory.squash(self.core_id, resolve_time)

    # -- main per-instruction processing --------------------------------------------------------
    def execute_op(self, op: MicroOp) -> int:
        """Process one micro-op; returns its commit time."""
        op.sequence = self._sequence
        self._sequence += 1

        # 1. Front end: fetch and dispatch, bounded by ROB/LSQ occupancy and
        #    dispatch bandwidth.
        fetch_time = self._fetch(op, self._fetch_ready)
        dispatch_time = self.rob.earliest_dispatch_time(fetch_time)
        if op.is_load:
            dispatch_time = max(dispatch_time,
                                self.load_queue.earliest_dispatch_time(
                                    dispatch_time))
        if op.is_store:
            dispatch_time = max(dispatch_time,
                                self.store_queue.earliest_dispatch_time(
                                    dispatch_time))
        dispatch_time, self._dispatched_in_cycle = self._bandwidth_limit(
            dispatch_time, self._dispatched_in_cycle, self.core_config.width)

        # 2. Issue: wait for source operands (plus STT taint delays).
        source_ready, source_taint = self._read_sources(op)
        issue_time = max(dispatch_time + 1, source_ready)
        if (self._stt_mode and source_taint is not None
                and op.kind.is_transmitter):
            if issue_time < source_taint:
                issue_time = source_taint
                record = getattr(self.memory, "record_delayed_forward", None)
                if record is not None:
                    record()

        # 3. Execute.
        completion, taint_visibility = self._execute(op, issue_time,
                                                     dispatch_time)
        if self._stt_mode and not op.is_load and source_taint is not None:
            # STT propagates taint transitively through non-load producers:
            # the result of an ALU op on a tainted value is itself tainted
            # until the original load's visibility point.
            taint_visibility = (source_taint if taint_visibility is None
                                else max(taint_visibility, source_taint))

        # 4. Commit in order, at most ``width`` per cycle.
        commit_time = max(completion, self._last_commit_time)
        commit_time, self._committed_in_cycle = self._bandwidth_limit(
            commit_time, self._committed_in_cycle, self.core_config.width)
        commit_time += self._commit_actions(op, commit_time, issue_time)
        self._last_commit_time = commit_time

        # 5. Update structures.
        self.rob.retire_older_than(dispatch_time)
        self.rob.allocate(commit_time)
        if op.is_load:
            self.load_queue.retire_older_than(dispatch_time)
            self.load_queue.allocate(max(commit_time, self._pending_lq_hold))
            self._pending_lq_hold = 0
        if op.is_store:
            self.store_queue.retire_older_than(dispatch_time)
            self.store_queue.allocate(commit_time)
        self._write_destination(op, completion, taint_visibility)
        self._committed.increment()
        return commit_time

    # -- execution of the different op kinds -------------------------------------------------------
    def _execute(self, op: MicroOp, issue_time: int,
                 dispatch_time: int) -> Tuple[int, Optional[int]]:
        """Return (completion_time, taint_visibility_for_dst)."""
        if op.is_load:
            return self._execute_load(op, issue_time)
        if op.is_store:
            self.memory.store_address_ready(self.core_id, self.process_id,
                                            op.address, issue_time,
                                            speculative=True, pc=op.pc)
            return issue_time + op.execution_latency, None
        if op.is_branch:
            return self._execute_branch(op, issue_time, dispatch_time), None
        # Plain ALU / FP / system ops.
        return issue_time + op.execution_latency, None

    def _execute_load(self, op: MicroOp,
                      issue_time: int) -> Tuple[int, Optional[int]]:
        result = self.memory.load(self.core_id, self.process_id, op.address,
                                  issue_time, speculative=True, pc=op.pc)
        if result.must_retry_nonspeculative:
            # MuonTrap NACKed the access (it would disturb another core's
            # private line): retry once the load is the oldest outstanding
            # instruction, i.e. not before every older instruction committed.
            self._nack_retries.increment()
            retry_time = max(issue_time, self._last_commit_time)
            retry = self.memory.load(self.core_id, self.process_id, op.address,
                                     retry_time, speculative=False, pc=op.pc)
            completion = retry_time + retry.latency
        else:
            completion = issue_time + result.latency
        # STT taint: the loaded value is unsafe to forward to transmitters
        # until the load's visibility point.
        visibility: Optional[int] = None
        if self._stt_mode:
            if self._stt_future:
                visibility = max(completion, self._last_commit_time)
            else:
                visibility = max(completion, self._last_branch_resolve)
        return completion, visibility

    def _execute_branch(self, op: MicroOp, issue_time: int,
                        dispatch_time: int) -> int:
        resolve_time = issue_time + op.execution_latency
        if op.force_mispredict is None:
            self.predictor.predict(op.pc)
            mispredicted = self.predictor.update(op.pc, op.taken, op.target)
        else:
            mispredicted = op.force_mispredict
            self.predictor.update(op.pc, op.taken, op.target)
        self._last_branch_resolve = max(self._last_branch_resolve,
                                        resolve_time)
        if mispredicted:
            self._mispredictions.increment()
            self._execute_wrong_path(op, dispatch_time, resolve_time)
            # Redirect: the front end can only deliver correct-path
            # instructions after the pipeline refills.
            self._fetch_ready = max(
                self._fetch_ready,
                resolve_time + self.core_config.mispredict_penalty)
        return resolve_time

    # -- commit actions -------------------------------------------------------------------------------
    def _commit_actions(self, op: MicroOp, commit_time: int,
                        issue_time: int) -> int:
        """Perform memory-system commit work; returns extra commit latency."""
        extra = 0
        if op.is_load:
            self._committed_loads.increment()
            if self._invisispec:
                # InvisiSpec validation/exposure: the Spectre variant issues
                # it once older branches have resolved, the Future variant
                # only at commit; either way commit waits for it, and the
                # load-queue entry is held until the re-access completes.
                visibility = (commit_time if self._stt_future_like_invisispec()
                              else max(self._last_branch_resolve, issue_time))
                validation = self.memory.validation_latency(
                    self.core_id, self.process_id, op.address, visibility,
                    pc=op.pc)
                validation_done = visibility + validation
                extra += max(0, validation_done - commit_time)
                if self._stt_future_like_invisispec():
                    # The Future variant only starts its validation at the
                    # retirement point, so the load-queue entry is pinned for
                    # the whole re-access; the Spectre variant's validations
                    # overlap with the time the load spends waiting to retire.
                    self._pending_lq_hold = validation_done
            extra += self.memory.commit_load(self.core_id, self.process_id,
                                             op.address, commit_time + extra,
                                             pc=op.pc)
        elif op.is_store:
            self._committed_stores.increment()
            extra += self.memory.commit_store(self.core_id, self.process_id,
                                              op.address, commit_time + extra,
                                              pc=op.pc)
        elif op.is_branch:
            self._committed_branches.increment()
        self.memory.commit_fetch(self.core_id, self.process_id, op.pc,
                                 commit_time + extra, pc=op.pc)
        if op.is_syscall or op.is_context_switch:
            self._context_switches.increment()
            self.memory.context_switch(self.core_id, commit_time + extra)
            extra += self.core_config.mispredict_penalty
        if op.is_sandbox_entry:
            self.memory.sandbox_entry(self.core_id, commit_time + extra)
        return extra

    def _stt_future_like_invisispec(self) -> bool:
        """True for InvisiSpec-Future: visibility only at commit."""
        return self._invisispec and getattr(self.memory, "future_variant",
                                            False)

    # -- whole-trace execution -----------------------------------------------------------------------------
    def run(self, trace: Iterable[MicroOp]) -> CoreResult:
        """Execute a complete trace and return the timing summary."""
        for op in trace:
            self.execute_op(op)
        return self.result()

    def result(self) -> CoreResult:
        return CoreResult(
            core_id=self.core_id,
            committed_instructions=self._committed.value,
            cycles=self._last_commit_time,
            committed_loads=self._committed_loads.value,
            committed_stores=self._committed_stores.value,
            committed_branches=self._committed_branches.value,
            mispredictions=self._mispredictions.value,
            squashed_accesses=self._squashed_accesses.value,
            nack_retries=self._nack_retries.value)

    @property
    def current_cycle(self) -> int:
        return self._last_commit_time
