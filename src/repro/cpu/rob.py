"""The reorder buffer occupancy model.

The constraint-based core model does not simulate every pipeline stage
cycle-by-cycle; instead each bounded structure (ROB, load queue, store
queue) answers one question: *given that entries retire at the commit times
already computed for older instructions, when is a slot free for a new
instruction dispatched at time t?*  This keeps the model O(1) per
instruction while still enforcing the capacity limits of Table 1, which are
what make long-latency memory operations (and the commit delays InvisiSpec
introduces) back-pressure the front end.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional


class RetirementWindow:
    """A capacity-bounded window of in-flight instructions.

    Used for the ROB and (via subclasses) the load and store queues.  The
    window records the commit time of each in-flight entry in program
    order; a new entry dispatched while the window is full must wait until
    the oldest entry has committed.
    """

    def __init__(self, capacity: int, name: str = "rob") -> None:
        if capacity <= 0:
            raise ValueError(f"{name} capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._commit_times: Deque[int] = deque()
        self.full_stalls = 0

    def earliest_dispatch_time(self, now: int) -> int:
        """When a new entry may be allocated, given a desired time ``now``."""
        if len(self._commit_times) < self.capacity:
            return now
        oldest_commit = self._commit_times[0]
        if oldest_commit > now:
            self.full_stalls += 1
            return oldest_commit
        return now

    def allocate(self, commit_time: int) -> None:
        """Record a newly dispatched entry that will commit at ``commit_time``.

        Entries are held in program order, so older entries whose commit
        time precedes the new entry's dispatch have already retired and can
        be dropped from the front.
        """
        while (self._commit_times
               and len(self._commit_times) >= self.capacity):
            self._commit_times.popleft()
        self._commit_times.append(commit_time)

    def retire_older_than(self, time: int) -> int:
        """Drop entries that have committed by ``time``; returns the count."""
        retired = 0
        while self._commit_times and self._commit_times[0] <= time:
            self._commit_times.popleft()
            retired += 1
        return retired

    def occupancy(self) -> int:
        return len(self._commit_times)

    @property
    def is_full(self) -> bool:
        return len(self._commit_times) >= self.capacity


class ReorderBuffer(RetirementWindow):
    """The 192-entry ROB."""

    def __init__(self, capacity: int = 192) -> None:
        super().__init__(capacity, name="rob")


class LoadQueue(RetirementWindow):
    """The 32-entry load queue."""

    def __init__(self, capacity: int = 32) -> None:
        super().__init__(capacity, name="lq")


class StoreQueue(RetirementWindow):
    """The 32-entry store queue."""

    def __init__(self, capacity: int = 32) -> None:
        super().__init__(capacity, name="sq")
