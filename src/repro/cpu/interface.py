"""The interface between the out-of-order core and a memory system.

Every protection mode (unprotected, insecure-L0, MuonTrap, InvisiSpec, STT)
provides a :class:`MemorySystem`.  The core calls it for speculative loads,
stores and instruction fetches as they execute, again at commit, and on
squashes and protection-domain switches.  The returned
:class:`MemoryAccessResult` carries both the latency (the core's scheduling
input) and the metadata the experiments and attacks inspect.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(slots=True)
class MemoryAccessResult:
    """Result of one memory-system request issued by the core."""

    latency: int
    hit_level: str = "l1"
    #: The request could not be performed speculatively (MuonTrap's reduced
    #: coherency speculation NACK); the core must retry it once the
    #: instruction is no longer speculative.
    must_retry_nonspeculative: bool = False
    #: Extra cycles that must elapse at commit before the instruction can
    #: retire (InvisiSpec validation, committed-store ownership, ...).
    commit_latency: int = 0

    @property
    def served(self) -> bool:
        return not self.must_retry_nonspeculative


class MemorySystem(abc.ABC):
    """Abstract memory system driven by :class:`repro.cpu.core.OutOfOrderCore`."""

    #: Human-readable mode name, used in experiment reports.
    name: str = "memory-system"

    def frontend(self, core_id: int) -> "MemorySystem":
        """The memory system one core should be driven against.

        Single-scheme systems serve every core themselves; the
        heterogeneous composite returns the per-core scheme frontend so
        the core's capability probes (STT taint delays, InvisiSpec
        validation) see that core's protection scheme, not its
        neighbours'.
        """
        return self

    # -- execute-time (possibly speculative, possibly wrong-path) -------------
    @abc.abstractmethod
    def load(self, core_id: int, process_id: int, virtual_address: int,
             now: int, *, speculative: bool, pc: int = 0) -> MemoryAccessResult:
        """A load issues from the load queue."""

    @abc.abstractmethod
    def store_address_ready(self, core_id: int, process_id: int,
                            virtual_address: int, now: int, *,
                            speculative: bool, pc: int = 0
                            ) -> MemoryAccessResult:
        """A store's address is resolved (it may prefetch, but not write)."""

    @abc.abstractmethod
    def fetch(self, core_id: int, process_id: int, virtual_address: int,
              now: int, *, speculative: bool, pc: int = 0
              ) -> MemoryAccessResult:
        """An instruction-cache access on the (possibly wrong) fetch path."""

    # -- commit-time ------------------------------------------------------------
    @abc.abstractmethod
    def commit_load(self, core_id: int, process_id: int, virtual_address: int,
                    now: int, *, pc: int = 0) -> int:
        """The load reaches in-order commit; returns extra commit latency."""

    @abc.abstractmethod
    def commit_store(self, core_id: int, process_id: int, virtual_address: int,
                     now: int, *, pc: int = 0) -> int:
        """The store commits and performs its write; returns commit latency."""

    def commit_fetch(self, core_id: int, process_id: int,
                     virtual_address: int, now: int, *, pc: int = 0) -> int:
        """The instruction at ``virtual_address`` commits (default: no cost)."""
        return 0

    # -- control events ----------------------------------------------------------
    def squash(self, core_id: int, now: int) -> None:
        """The core squashed mis-speculated instructions."""

    def context_switch(self, core_id: int, now: int) -> None:
        """The OS switches protection domain on this core."""

    def sandbox_entry(self, core_id: int, now: int) -> None:
        """Execution crosses into a sandboxed region within the process."""

    def drain(self, core_id: int, now: int) -> None:
        """Called at the end of simulation so buffers can flush statistics."""
