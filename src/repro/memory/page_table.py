"""Per-process page tables and virtual-to-physical translation.

Each simulated process owns an :class:`AddressSpace`.  Translation is
allocate-on-touch: the first access to a virtual page allocates a physical
frame from a global frame allocator.  Pages may also be explicitly mapped as
*shared* between two address spaces, which is what the cross-process attacks
in the paper rely on (shared libraries or page-deduplicated data between
attacker and victim).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.addresses import page_number, page_offset


class PhysicalFrameAllocator:
    """Hands out unique physical frame numbers across all processes."""

    def __init__(self, page_size: int = 4096) -> None:
        if page_size <= 0:
            raise ValueError("page size must be positive")
        self.page_size = page_size
        self._next_frame = 1  # frame 0 reserved so "0" is never a valid PA

    def allocate(self) -> int:
        frame = self._next_frame
        self._next_frame += 1
        return frame

    @property
    def allocated_frames(self) -> int:
        return self._next_frame - 1


@dataclass(slots=True)
class PageTableEntry:
    """A single translation, with the permission bits the walker checks."""

    frame: int
    readable: bool = True
    writable: bool = True
    executable: bool = True
    user_accessible: bool = True


@dataclass
class AddressSpace:
    """The virtual address space of one simulated process."""

    process_id: int
    allocator: PhysicalFrameAllocator
    page_size: int = 4096
    entries: Dict[int, PageTableEntry] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page size must be a power of two")
        self._page_shift = self.page_size.bit_length() - 1

    def translate(self, virtual_address: int,
                  allocate: bool = True) -> Optional[int]:
        """Translate ``virtual_address``; allocate a frame on first touch."""
        vpn = virtual_address >> self._page_shift
        entry = self.entries.get(vpn)
        if entry is None:
            if not allocate:
                return None
            entry = PageTableEntry(frame=self.allocator.allocate())
            self.entries[vpn] = entry
        return (entry.frame * self.page_size
                + (virtual_address & (self.page_size - 1)))

    def entry_for(self, virtual_address: int) -> Optional[PageTableEntry]:
        return self.entries.get(page_number(virtual_address, self.page_size))

    def map_page(self, virtual_address: int, frame: int,
                 writable: bool = True,
                 user_accessible: bool = True) -> PageTableEntry:
        """Install an explicit mapping (used to create shared pages)."""
        vpn = page_number(virtual_address, self.page_size)
        entry = PageTableEntry(frame=frame, writable=writable,
                               user_accessible=user_accessible)
        self.entries[vpn] = entry
        return entry

    def share_page_with(self, other: "AddressSpace", my_virtual: int,
                        their_virtual: Optional[int] = None,
                        writable: bool = True) -> int:
        """Map one of my pages into ``other`` at ``their_virtual``.

        Returns the shared physical frame number.  This models shared
        libraries / shared memory, the prerequisite of Attacks 1 and 3.
        """
        physical = self.translate(my_virtual)
        assert physical is not None
        frame = page_number(physical, self.page_size)
        target_virtual = my_virtual if their_virtual is None else their_virtual
        other.map_page(target_virtual, frame, writable=writable)
        return frame

    @property
    def mapped_pages(self) -> int:
        return len(self.entries)


class PageTableManager:
    """Creates address spaces and keeps them sharing one frame allocator."""

    def __init__(self, page_size: int = 4096) -> None:
        self.page_size = page_size
        self.allocator = PhysicalFrameAllocator(page_size)
        self._spaces: Dict[int, AddressSpace] = {}

    def address_space(self, process_id: int) -> AddressSpace:
        if process_id not in self._spaces:
            self._spaces[process_id] = AddressSpace(
                process_id=process_id, allocator=self.allocator,
                page_size=self.page_size)
        return self._spaces[process_id]

    def __contains__(self, process_id: int) -> bool:
        return process_id in self._spaces

    def __len__(self) -> int:
        return len(self._spaces)
