"""Main-memory latency model and per-process page tables."""

from repro.memory.main_memory import MainMemory
from repro.memory.page_table import (
    AddressSpace,
    PageTableEntry,
    PageTableManager,
    PhysicalFrameAllocator,
)

__all__ = [
    "AddressSpace",
    "MainMemory",
    "PageTableEntry",
    "PageTableManager",
    "PhysicalFrameAllocator",
]
