"""A simple DRAM latency model.

The paper's system uses DDR3-1600 behind a 2 MiB L2.  For the timing shapes
we need (L2 miss costs two orders of magnitude more than a filter-cache hit)
a fixed access latency plus a small, deterministic bank-conflict penalty is
sufficient.  The model also counts accesses so experiments can report memory
traffic.
"""

from __future__ import annotations

from typing import Optional

from repro.common.addresses import block_align
from repro.common.params import MemoryConfig
from repro.common.statistics import StatGroup


class MainMemory:
    """Terminal of the cache hierarchy: always hits, at DRAM latency."""

    def __init__(self, config: Optional[MemoryConfig] = None,
                 stats: Optional[StatGroup] = None,
                 num_banks: int = 8, bank_conflict_penalty: int = 20) -> None:
        self.config = config or MemoryConfig()
        self.num_banks = num_banks
        self.bank_conflict_penalty = bank_conflict_penalty
        stats = stats or StatGroup("memory")
        self._reads = stats.counter("reads", "line reads served")
        self._writes = stats.counter("writes", "line writebacks received")
        self._busy_until = [0] * num_banks
        self.stats = stats

    def _bank(self, address: int) -> int:
        line = block_align(address, self.config.line_size)
        return (line // self.config.line_size) % self.num_banks

    def read(self, address: int, now: int = 0) -> int:
        """Read one line; returns the access latency in cycles."""
        self._reads.increment()
        bank = self._bank(address)
        latency = self.config.access_latency
        if now < self._busy_until[bank]:
            latency += self.bank_conflict_penalty
        self._busy_until[bank] = now + latency
        return latency

    def write(self, address: int, now: int = 0) -> int:
        """Accept a writeback; returns the occupancy cost in cycles."""
        self._writes.increment()
        bank = self._bank(address)
        latency = self.config.access_latency
        self._busy_until[bank] = now + latency
        return latency

    @property
    def total_reads(self) -> int:
        return self._reads.value

    @property
    def total_writes(self) -> int:
        return self._writes.value
