"""A behavioural model of Speculative Taint Tracking (Yu et al., MICRO 2019).

STT lets speculative loads execute and fill the caches normally, but taints
their results and blocks *transmit* instructions (loads, stores and other
instructions whose operands could leak the value through a covert channel)
from executing until the source load becomes safe.  Two variants match the
paper's comparison:

* ``STT-Spectre`` — a load's value untaints once all older branches have
  resolved (the Spectre threat model).
* ``STT-Future``  — the value only untaints when the load can no longer be
  squashed (effectively at commit), the futuristic threat model.

The memory side therefore behaves exactly like the unprotected hierarchy;
the cost comes from the *delays imposed on dependent instructions*, which
the out-of-order core model applies when
:attr:`delays_dependent_transmitters` is set.  Workloads with dependent
chains of loads (pointer chasing: mcf, omnetpp, astar, canneal) suffer the
most, matching the paper's observations.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.unprotected import UnprotectedMemorySystem
from repro.common.params import ProtectionMode, SystemConfig
from repro.common.rng import DeterministicRng
from repro.common.statistics import StatGroup
from repro.memory.page_table import PageTableManager


class STTMemorySystem(UnprotectedMemorySystem):
    """Unprotected memory side plus taint-based issue restrictions."""

    #: Signals the core model that dependent transmit instructions must wait
    #: for their source load's visibility point before issuing.
    delays_dependent_transmitters = True

    def __init__(self, config: SystemConfig,
                 future_variant: bool = False,
                 page_tables: Optional[PageTableManager] = None,
                 stats: Optional[StatGroup] = None,
                 rng: Optional[DeterministicRng] = None,
                 hierarchy=None,
                 core_ids: Optional[Sequence[int]] = None) -> None:
        self.future_variant = future_variant
        self.name = "stt-future" if future_variant else "stt-spectre"
        stats = stats or StatGroup(self.name.replace("-", "_"))
        super().__init__(config, page_tables=page_tables, stats=stats,
                         rng=rng, hierarchy=hierarchy, core_ids=core_ids)
        self._delayed_forwards = stats.counter(
            "delayed_forwards",
            "dependent transmit instructions held back by taint")

    @property
    def mode(self) -> ProtectionMode:
        return (ProtectionMode.STT_FUTURE if self.future_variant
                else ProtectionMode.STT_SPECTRE)

    def record_delayed_forward(self) -> None:
        """Called by the core each time taint stalls a dependent instruction."""
        self._delayed_forwards.increment()

    @property
    def delayed_forwards(self) -> int:
        return self._delayed_forwards.value


# -- scheme registration ------------------------------------------------------
from repro.schemes import SchemeSpec, _register_builtin


def _build_stt_spectre(config, **kwargs):
    return STTMemorySystem(config, future_variant=False, **kwargs)


def _build_stt_future(config, **kwargs):
    return STTMemorySystem(config, future_variant=True, **kwargs)


_register_builtin(SchemeSpec(
    name="stt-spectre",
    factory=_build_stt_spectre,
    display_name="STT-Spectre",
    description="Speculative taint tracking: dependent transmitters wait "
                "for branch resolution (Spectre threat model).",
    timing_invariant=True,
    delays_transmitters=True,
    figure_series=True,
    builtin=True))

_register_builtin(SchemeSpec(
    name="stt-future",
    factory=_build_stt_future,
    display_name="STT-Future",
    description="STT under the futuristic threat model (taint clears only "
                "when the load can no longer be squashed).",
    timing_invariant=True,
    delays_transmitters=True,
    figure_series=True,
    builtin=True))
