"""Baseline and comparison memory systems (unprotected, InvisiSpec, STT)."""

from repro.baselines.insecure_l0 import InsecureL0MemorySystem
from repro.baselines.invisispec import InvisiSpecMemorySystem
from repro.baselines.stt import STTMemorySystem
from repro.baselines.unprotected import UnprotectedMemorySystem

__all__ = [
    "InsecureL0MemorySystem",
    "InvisiSpecMemorySystem",
    "STTMemorySystem",
    "UnprotectedMemorySystem",
]
