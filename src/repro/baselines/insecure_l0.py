"""The insecure-L0 ablation point of Figures 8 and 9.

This system puts the same small, 1-cycle L0 cache in front of the L1 as
MuonTrap does, but with none of the protections: the L0 is filled by every
access (speculative or not), its contents survive protection-domain
switches, lines propagate to the L1 immediately on fill (normal inclusive
behaviour), and the prefetcher trains speculatively.  It isolates the pure
performance effect of adding a level-0 cache from the cost of the security
mechanisms.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.common.params import SystemConfig
from repro.common.rng import DeterministicRng
from repro.common.statistics import StatGroup
from repro.core.filter_cache import SpeculativeFilterCache
from repro.cpu.interface import MemoryAccessResult
from repro.baselines.unprotected import UnprotectedMemorySystem
from repro.memory.page_table import PageTableManager


class InsecureL0MemorySystem(UnprotectedMemorySystem):
    """Unprotected hierarchy plus an ordinary (insecure) L0 cache per core."""

    name = "insecure-l0"

    def __init__(self, config: SystemConfig,
                 page_tables: Optional[PageTableManager] = None,
                 stats: Optional[StatGroup] = None,
                 rng: Optional[DeterministicRng] = None,
                 hierarchy=None,
                 core_ids: Optional[Sequence[int]] = None) -> None:
        stats = stats or StatGroup("insecure_l0")
        super().__init__(config, page_tables=page_tables, stats=stats,
                         rng=rng, hierarchy=hierarchy, core_ids=core_ids)
        self._data_l0 = {}
        self._inst_l0 = {}
        for core_id in self.core_ids:
            per_core = config.core_config(core_id)
            core_stats = stats.child(f"core{core_id}")
            self._data_l0[core_id] = SpeculativeFilterCache(
                per_core.data_filter, stats=core_stats.child("data_l0"),
                name="data_l0")
            self._inst_l0[core_id] = SpeculativeFilterCache(
                per_core.inst_filter, stats=core_stats.child("inst_l0"),
                name="inst_l0")

    def data_l0(self, core_id: int) -> SpeculativeFilterCache:
        return self._data_l0[core_id]

    def inst_l0(self, core_id: int) -> SpeculativeFilterCache:
        return self._inst_l0[core_id]

    # -- execute-time -----------------------------------------------------------
    def load(self, core_id: int, process_id: int, virtual_address: int,
             now: int, *, speculative: bool, pc: int = 0
             ) -> MemoryAccessResult:
        l0 = self._data_l0[core_id]
        lookup = l0.lookup(virtual_address, now, process_id=process_id)
        if lookup.hit:
            return MemoryAccessResult(latency=lookup.latency, hit_level="l0")
        # Serial L0 lookup in front of the normal (L1-filling) path.
        result = super().load(core_id, process_id, virtual_address,
                              now + lookup.latency, speculative=speculative,
                              pc=pc)
        space = self.page_tables.address_space(process_id)
        physical = space.translate(virtual_address)
        if physical is not None:
            l0.fill(virtual_address, physical, now + result.latency,
                    process_id=process_id, committed=True,
                    fill_level=result.hit_level)
        return MemoryAccessResult(latency=lookup.latency + result.latency,
                                  hit_level=result.hit_level)

    def store_address_ready(self, core_id: int, process_id: int,
                            virtual_address: int, now: int, *,
                            speculative: bool, pc: int = 0
                            ) -> MemoryAccessResult:
        l0 = self._data_l0[core_id]
        lookup = l0.lookup(virtual_address, now, process_id=process_id)
        if lookup.hit:
            return MemoryAccessResult(latency=lookup.latency, hit_level="l0")
        result = super().store_address_ready(
            core_id, process_id, virtual_address, now + lookup.latency,
            speculative=speculative, pc=pc)
        space = self.page_tables.address_space(process_id)
        physical = space.translate(virtual_address)
        if physical is not None:
            l0.fill(virtual_address, physical, now + result.latency,
                    process_id=process_id, committed=True,
                    fill_level=result.hit_level)
        return MemoryAccessResult(latency=lookup.latency + result.latency,
                                  hit_level=result.hit_level)

    def fetch(self, core_id: int, process_id: int, virtual_address: int,
              now: int, *, speculative: bool, pc: int = 0
              ) -> MemoryAccessResult:
        l0 = self._inst_l0[core_id]
        lookup = l0.lookup(virtual_address, now, process_id=process_id)
        if lookup.hit:
            return MemoryAccessResult(latency=lookup.latency, hit_level="l0i")
        result = super().fetch(core_id, process_id, virtual_address,
                               now + lookup.latency, speculative=speculative,
                               pc=pc)
        space = self.page_tables.address_space(process_id)
        physical = space.translate(virtual_address)
        if physical is not None:
            l0.fill(virtual_address, physical, now + result.latency,
                    process_id=process_id, committed=True,
                    fill_level=result.hit_level)
        return MemoryAccessResult(latency=lookup.latency + result.latency,
                                  hit_level=result.hit_level)


# -- scheme registration ------------------------------------------------------
from repro.schemes import SchemeSpec, _register_builtin

_register_builtin(SchemeSpec(
    name="insecure-l0",
    factory=InsecureL0MemorySystem,
    display_name="Insecure-L0",
    description="MuonTrap's L0 geometry with none of its protections "
                "(the ablation baseline of Figures 8 and 9).",
    supports_filter_caches=True,
    builtin=True))
