"""A behavioural model of InvisiSpec (Yan et al., MICRO 2018).

InvisiSpec hides speculative loads by placing their data in per-load-queue
speculative buffers that are invisible to the cache hierarchy and the
coherence protocol.  When a load reaches its *visibility point* it must make
a second access to the memory system (validation or exposure) that actually
fills the caches; validation is on the critical path of commit.  Two
variants are modelled, matching the ones re-evaluated in the paper:

* ``InvisiSpec-Spectre`` — a load becomes visible once all older branches
  have resolved.
* ``InvisiSpec-Future`` — a load only becomes visible when it can no longer
  be squashed, i.e. effectively at commit.

The per-word speculative buffer means there is no reuse across loads: every
speculative load pays the full hierarchy latency even when a previous
in-flight load touched the same line, and the validation access is what
installs the line in the L1.  These two properties are what produce the
9.7% / 18.5% SPEC overheads and the up-to-2x Parsec overheads the paper
reports for InvisiSpec.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.caches.hierarchy import NonSpeculativeHierarchy
from repro.common.params import ProtectionMode, SystemConfig
from repro.common.rng import DeterministicRng
from repro.common.statistics import StatGroup
from repro.core.domains import DomainTracker
from repro.cpu.interface import MemoryAccessResult, MemorySystem
from repro.memory.page_table import PageTableManager
from repro.tlb.page_walker import MMU


@dataclass
class _SpeculativeBufferEntry:
    """One load's hidden data (word-granularity in the real design)."""

    physical_line: int
    fill_level: str
    filled_at: int


class InvisiSpecMemorySystem(MemorySystem):
    """Speculative-buffer loads with validation/exposure at the visibility point."""

    def __init__(self, config: SystemConfig,
                 future_variant: bool = False,
                 page_tables: Optional[PageTableManager] = None,
                 stats: Optional[StatGroup] = None,
                 rng: Optional[DeterministicRng] = None,
                 hierarchy: Optional[NonSpeculativeHierarchy] = None,
                 core_ids: Optional[Sequence[int]] = None) -> None:
        self.config = config
        self.future_variant = future_variant
        self.name = ("invisispec-future" if future_variant
                     else "invisispec-spectre")
        stats = stats or StatGroup(self.name.replace("-", "_"))
        self.stats = stats
        rng = rng or DeterministicRng(0)
        self.page_tables = (page_tables if page_tables is not None
                            else PageTableManager(
                                page_size=config.tlb.page_size))
        self.hierarchy = (hierarchy if hierarchy is not None
                          else NonSpeculativeHierarchy(
                              config, stats=stats.child("hierarchy"),
                              rng=rng))
        self.core_ids = (list(core_ids) if core_ids is not None
                         else list(range(config.num_cores)))
        self._mmus: Dict[int, Tuple[MMU, MMU]] = {}
        self._domains: Dict[int, DomainTracker] = {}
        self._buffers: Dict[Tuple[int, int], _SpeculativeBufferEntry] = {}
        for core_id in self.core_ids:
            per_core = config.core_config(core_id)
            core_stats = stats.child(f"core{core_id}")
            self._mmus[core_id] = (
                MMU(per_core.tlb, use_filter_tlb=False,
                    stats=core_stats.child("dmmu"), name="dmmu"),
                MMU(per_core.tlb, use_filter_tlb=False,
                    stats=core_stats.child("immu"), name="immu"))
            self._domains[core_id] = DomainTracker(
                core_id=core_id, stats=core_stats.child("domains"))
        self._speculative_loads = stats.counter("speculative_buffer_fills")
        self._validations = stats.counter("validation_accesses")

    @property
    def mode(self) -> ProtectionMode:
        return (ProtectionMode.INVISISPEC_FUTURE if self.future_variant
                else ProtectionMode.INVISISPEC_SPECTRE)

    def domains(self, core_id: int) -> DomainTracker:
        return self._domains[core_id]

    def _translate(self, core_id: int, process_id: int, virtual_address: int,
                   instruction: bool) -> Tuple[Optional[int], int]:
        space = self.page_tables.address_space(process_id)
        mmu = self._mmus[core_id][1 if instruction else 0]
        return mmu.translate_address(space, virtual_address,
                                     speculative=False)

    # -- execute-time -----------------------------------------------------------
    def load(self, core_id: int, process_id: int, virtual_address: int,
             now: int, *, speculative: bool, pc: int = 0
             ) -> MemoryAccessResult:
        physical, tlb_latency = self._translate(core_id, process_id,
                                                virtual_address, False)
        if physical is None:
            return MemoryAccessResult(latency=tlb_latency + 1,
                                      hit_level="fault")
        line = self.hierarchy.line_address(physical)
        if not speculative:
            outcome = self.hierarchy.access(core_id, physical,
                                            now + tlb_latency,
                                            speculative=False, pc=pc)
            return MemoryAccessResult(latency=tlb_latency + outcome.latency,
                                      hit_level=outcome.hit_level)
        # Speculative load: data goes only into the per-load speculative
        # buffer.  It may read the caches but must not change them, so an L1
        # hit is cheap while a miss pays the full downstream latency without
        # filling anything.
        l1 = self.hierarchy.l1d(core_id)
        l1_line = l1.lookup(line, now)
        if l1_line is not None:
            l1.record_hit()
            latency = l1.config.hit_latency
            fill_level = "l1"
        else:
            l1.record_miss()
            outcome = self.hierarchy.controller.read(
                core_id, line, now + tlb_latency, speculative=True,
                protect_coherence=False, fill_l2=False)
            # The speculative access still occupies a miss-tracking slot.
            l1.mshrs.allocate(line, now, outcome.latency)
            latency = l1.config.hit_latency + outcome.latency
            fill_level = outcome.hit_level
            if outcome.hit_level in ("l2", "memory"):
                # InvisiSpec does not protect the prefetcher: speculative
                # loads train it exactly as in the unprotected system.
                self.hierarchy.train_l2_prefetcher(line, pc, now,
                                                   was_miss=True)
        self._speculative_loads.increment()
        self._buffers[(core_id, line)] = _SpeculativeBufferEntry(
            physical_line=line, fill_level=fill_level,
            filled_at=now + tlb_latency + latency)
        return MemoryAccessResult(latency=tlb_latency + latency,
                                  hit_level=f"specbuf-{fill_level}")

    def store_address_ready(self, core_id: int, process_id: int,
                            virtual_address: int, now: int, *,
                            speculative: bool, pc: int = 0
                            ) -> MemoryAccessResult:
        # InvisiSpec does not let speculative stores touch the hierarchy.
        physical, tlb_latency = self._translate(core_id, process_id,
                                                virtual_address, False)
        if physical is None:
            return MemoryAccessResult(latency=tlb_latency + 1,
                                      hit_level="fault")
        return MemoryAccessResult(latency=tlb_latency + 1, hit_level="sq")

    def fetch(self, core_id: int, process_id: int, virtual_address: int,
              now: int, *, speculative: bool, pc: int = 0
              ) -> MemoryAccessResult:
        # InvisiSpec does not protect the instruction cache; fetches behave
        # exactly as in the unprotected system.
        physical, tlb_latency = self._translate(core_id, process_id,
                                                virtual_address, True)
        if physical is None:
            return MemoryAccessResult(latency=tlb_latency + 1,
                                      hit_level="fault")
        outcome = self.hierarchy.access(core_id, physical, now + tlb_latency,
                                        instruction=True,
                                        speculative=speculative, pc=pc,
                                        train_prefetcher=False)
        return MemoryAccessResult(latency=tlb_latency + outcome.latency,
                                  hit_level=outcome.hit_level)

    # -- the visibility-point re-access --------------------------------------------
    def validation_latency(self, core_id: int, process_id: int,
                           virtual_address: int, now: int, *,
                           pc: int = 0) -> int:
        """The second (validation/exposure) access for one speculative load.

        Called by the core model at the load's visibility point (branch
        resolution for the Spectre variant, commit for the Future variant).
        It performs a real hierarchy access that fills the L1, and its
        latency is charged against commit.
        """
        space = self.page_tables.address_space(process_id)
        physical = space.translate(virtual_address)
        if physical is None:
            return 0
        line = self.hierarchy.line_address(physical)
        self._validations.increment()
        self._buffers.pop((core_id, line), None)
        # The validation is a repeat of an access the prefetcher has already
        # been trained on, so it does not train again.
        outcome = self.hierarchy.access(core_id, physical, now,
                                        speculative=False, pc=pc,
                                        train_prefetcher=False)
        return outcome.latency

    # -- commit-time ------------------------------------------------------------------
    def commit_load(self, core_id: int, process_id: int, virtual_address: int,
                    now: int, *, pc: int = 0) -> int:
        # The core model charges the validation itself (it knows the
        # visibility point); nothing further happens at commit.
        return 0

    def commit_store(self, core_id: int, process_id: int, virtual_address: int,
                     now: int, *, pc: int = 0) -> int:
        space = self.page_tables.address_space(process_id)
        physical = space.translate(virtual_address)
        if physical is None:
            return 0
        result = self.hierarchy.commit_store(core_id, physical, now,
                                             broadcast_to_filters=False)
        return min(result.latency,
                   self.hierarchy.l1d(core_id).config.hit_latency)

    # -- control events -----------------------------------------------------------------
    def squash(self, core_id: int, now: int) -> None:
        # Squashed loads simply abandon their speculative-buffer entries.
        stale = [key for key in self._buffers if key[0] == core_id]
        for key in stale:
            del self._buffers[key]

    def switch_to_process(self, core_id: int, process_id: int,
                          now: int = 0) -> None:
        self._domains[core_id].context_switch(to_process=process_id)

    def context_switch(self, core_id: int, now: int) -> None:
        current = self._domains[core_id].current.process_id
        self._domains[core_id].context_switch(to_process=current + 1)

    def sandbox_entry(self, core_id: int, now: int) -> None:
        self._domains[core_id].sandbox_entry(sandbox_id=1)

    def drain(self, core_id: int, now: int) -> None:
        """End of run: deliver prefetcher-training events still buffered."""
        self.hierarchy.flush_speculative_training(now)

    # -- introspection ---------------------------------------------------------------------
    def speculative_buffer_contains(self, core_id: int,
                                    physical_address: int) -> bool:
        line = self.hierarchy.line_address(physical_address)
        return (core_id, line) in self._buffers

    @property
    def validations(self) -> int:
        return self._validations.value


# -- scheme registration ------------------------------------------------------
from repro.schemes import SchemeSpec, _register_builtin


def _build_invisispec_spectre(config, **kwargs):
    return InvisiSpecMemorySystem(config, future_variant=False, **kwargs)


def _build_invisispec_future(config, **kwargs):
    return InvisiSpecMemorySystem(config, future_variant=True, **kwargs)


_register_builtin(SchemeSpec(
    name="invisispec-spectre",
    factory=_build_invisispec_spectre,
    display_name="InvisiSpec-Spectre",
    description="Speculative loads buffered and validated at commit "
                "(Spectre threat model).",
    timing_invariant=True,
    uses_speculative_buffers=True,
    figure_series=True,
    builtin=True))

_register_builtin(SchemeSpec(
    name="invisispec-future",
    factory=_build_invisispec_future,
    display_name="InvisiSpec-Future",
    description="InvisiSpec under the futuristic threat model (loads stay "
                "invisible until they cannot be squashed).",
    timing_invariant=True,
    uses_speculative_buffers=True,
    figure_series=True,
    builtin=True))
