"""The unprotected baseline memory system.

This is the insecure system every result in the paper is normalised to:
speculative (including wrong-path) loads, stores-with-resolved-addresses and
instruction fetches fill the L1 caches immediately, train the L2 prefetcher
immediately, and speculative stores may obtain exclusive ownership early.
Nothing is cleared on protection-domain switches, which is exactly why all
six attacks succeed against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.caches.hierarchy import NonSpeculativeHierarchy
from repro.common.params import SystemConfig
from repro.common.rng import DeterministicRng
from repro.common.statistics import StatGroup
from repro.core.domains import DomainTracker
from repro.cpu.interface import MemoryAccessResult, MemorySystem
from repro.memory.page_table import PageTableManager
from repro.tlb.page_walker import MMU


@dataclass
class _CoreState:
    data_mmu: MMU
    inst_mmu: MMU
    domains: DomainTracker


class UnprotectedMemorySystem(MemorySystem):
    """Conventional hierarchy with no speculation-related protections."""

    name = "unprotected"

    def __init__(self, config: SystemConfig,
                 page_tables: Optional[PageTableManager] = None,
                 stats: Optional[StatGroup] = None,
                 rng: Optional[DeterministicRng] = None,
                 hierarchy: Optional[NonSpeculativeHierarchy] = None,
                 core_ids: Optional[Sequence[int]] = None) -> None:
        self.config = config
        stats = stats or StatGroup("unprotected")
        self.stats = stats
        rng = rng or DeterministicRng(0)
        self.page_tables = (page_tables if page_tables is not None
                            else PageTableManager(
                                page_size=config.tlb.page_size))
        # A heterogeneous machine passes in the shared hierarchy and the
        # subset of cores this scheme frontend serves; stand-alone use
        # builds its own hierarchy and serves every core.
        self.hierarchy = (hierarchy if hierarchy is not None
                          else NonSpeculativeHierarchy(
                              config, stats=stats.child("hierarchy"),
                              rng=rng))
        self.core_ids = (list(core_ids) if core_ids is not None
                         else list(range(config.num_cores)))
        self._cores: Dict[int, _CoreState] = {}
        for core_id in self.core_ids:
            per_core = config.core_config(core_id)
            core_stats = stats.child(f"core{core_id}")
            self._cores[core_id] = _CoreState(
                data_mmu=MMU(per_core.tlb, use_filter_tlb=False,
                             stats=core_stats.child("dmmu"), name="dmmu"),
                inst_mmu=MMU(per_core.tlb, use_filter_tlb=False,
                             stats=core_stats.child("immu"), name="immu"),
                domains=DomainTracker(core_id=core_id,
                                      stats=core_stats.child("domains")))
        self._committed_stores = stats.counter("committed_stores")

    # -- helpers -------------------------------------------------------------
    def domains(self, core_id: int) -> DomainTracker:
        return self._cores[core_id].domains

    def _translate(self, core_id: int, process_id: int, virtual_address: int,
                   instruction: bool) -> tuple:
        core = self._cores[core_id]
        space = self.page_tables.address_space(process_id)
        mmu = core.inst_mmu if instruction else core.data_mmu
        return mmu.translate_address(space, virtual_address,
                                     speculative=False)

    # -- execute-time ----------------------------------------------------------
    def load(self, core_id: int, process_id: int, virtual_address: int,
             now: int, *, speculative: bool, pc: int = 0
             ) -> MemoryAccessResult:
        physical, tlb_latency = self._translate(core_id, process_id,
                                                virtual_address, False)
        if physical is None:
            return MemoryAccessResult(latency=tlb_latency + 1,
                                      hit_level="fault")
        outcome = self.hierarchy.access(core_id, physical, now + tlb_latency,
                                        speculative=speculative, pc=pc)
        return MemoryAccessResult(latency=tlb_latency + outcome.latency,
                                  hit_level=outcome.hit_level)

    def store_address_ready(self, core_id: int, process_id: int,
                            virtual_address: int, now: int, *,
                            speculative: bool, pc: int = 0
                            ) -> MemoryAccessResult:
        # An unprotected system issues the read-for-ownership prefetch as
        # soon as the store's address is known, even speculatively.  This is
        # the behaviour SpectrePrime-style attacks exploit.
        physical, tlb_latency = self._translate(core_id, process_id,
                                                virtual_address, False)
        if physical is None:
            return MemoryAccessResult(latency=tlb_latency + 1,
                                      hit_level="fault")
        outcome = self.hierarchy.access(core_id, physical, now + tlb_latency,
                                        is_store=True, speculative=speculative,
                                        pc=pc)
        return MemoryAccessResult(latency=tlb_latency + outcome.latency,
                                  hit_level=outcome.hit_level)

    def fetch(self, core_id: int, process_id: int, virtual_address: int,
              now: int, *, speculative: bool, pc: int = 0
              ) -> MemoryAccessResult:
        physical, tlb_latency = self._translate(core_id, process_id,
                                                virtual_address, True)
        if physical is None:
            return MemoryAccessResult(latency=tlb_latency + 1,
                                      hit_level="fault")
        outcome = self.hierarchy.access(core_id, physical, now + tlb_latency,
                                        instruction=True,
                                        speculative=speculative, pc=pc,
                                        train_prefetcher=False)
        return MemoryAccessResult(latency=tlb_latency + outcome.latency,
                                  hit_level=outcome.hit_level)

    # -- commit-time -------------------------------------------------------------
    def commit_load(self, core_id: int, process_id: int, virtual_address: int,
                    now: int, *, pc: int = 0) -> int:
        return 0

    def commit_store(self, core_id: int, process_id: int, virtual_address: int,
                     now: int, *, pc: int = 0) -> int:
        self._committed_stores.increment()
        space = self.page_tables.address_space(process_id)
        physical = space.translate(virtual_address)
        if physical is None:
            return 0
        result = self.hierarchy.commit_store(core_id, physical, now,
                                             broadcast_to_filters=False)
        return min(result.latency,
                   self.hierarchy.l1d(core_id).config.hit_latency)

    # -- control events -------------------------------------------------------------
    def switch_to_process(self, core_id: int, process_id: int,
                          now: int = 0) -> None:
        self._cores[core_id].domains.context_switch(to_process=process_id)

    def context_switch(self, core_id: int, now: int) -> None:
        current = self._cores[core_id].domains.current.process_id
        self._cores[core_id].domains.context_switch(to_process=current + 1)

    def sandbox_entry(self, core_id: int, now: int) -> None:
        self._cores[core_id].domains.sandbox_entry(sandbox_id=1)

    def drain(self, core_id: int, now: int) -> None:
        """End of run: deliver prefetcher-training events still buffered."""
        self.hierarchy.flush_speculative_training(now)


# -- scheme registration ------------------------------------------------------
from repro.schemes import SchemeSpec, _register_builtin

_register_builtin(SchemeSpec(
    name="unprotected",
    factory=UnprotectedMemorySystem,
    display_name="Unprotected",
    description="The conventional hierarchy with no speculative-execution "
                "defence (the paper's baseline).",
    builtin=True))
