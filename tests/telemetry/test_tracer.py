"""Tests for the event tracer: determinism, correctness and the guard."""

import hashlib
import io
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import api
from repro.telemetry import (
    CATEGORIES,
    TraceEvent,
    Tracer,
    activate,
    active_tracer,
    deactivate,
    tracing,
)

GOLDEN = Path(__file__).parent / "golden_trace.sha256"
SEED = 7
INSTRUCTIONS = 600


def traced_outcome(**kwargs):
    return api.simulate("mcf", scheme="muontrap", seed=SEED,
                        instructions=INSTRUCTIONS, warmup_fraction=0.0,
                        collect_stats=True, trace=True, **kwargs)


def jsonl_bytes(tracer) -> bytes:
    buffer = io.StringIO()
    tracer.write_jsonl(buffer)
    return buffer.getvalue().encode("utf-8")


class TestActivation:
    def test_inactive_by_default(self):
        assert active_tracer() is None

    def test_tracing_context_installs_and_removes(self):
        tracer = Tracer()
        with tracing(tracer) as active:
            assert active is tracer
            assert active_tracer() is tracer
        assert active_tracer() is None

    def test_tracing_none_is_a_noop_context(self):
        with tracing(None) as active:
            assert active is None
            assert active_tracer() is None

    def test_second_activation_rejected(self):
        first, second = Tracer(), Tracer()
        activate(first)
        try:
            activate(first)          # re-activating the same tracer is fine
            with pytest.raises(RuntimeError):
                activate(second)
        finally:
            deactivate()
        assert active_tracer() is None

    def test_tracing_deactivates_on_exception(self):
        with pytest.raises(ValueError):
            with tracing(Tracer()):
                raise ValueError("boom")
        assert active_tracer() is None


class TestCollection:
    def test_emit_stamps_with_cycle_cursor(self):
        tracer = Tracer()
        tracer.now = 41
        tracer.emit("cache", "hit", core=0, unit="l1d")
        tracer.emit("cache", "miss", cycle=7)
        assert [event.cycle for event in tracer.events] == [41, 7]
        assert tracer.events[0].detail == {"unit": "l1d"}

    def test_counts_and_clear(self):
        tracer = Tracer()
        tracer.emit("pipeline", "issue")
        tracer.emit("pipeline", "issue")
        tracer.emit("cache", "hit")
        assert len(tracer) == 3
        assert tracer.counts() == {("pipeline", "issue"): 2,
                                   ("cache", "hit"): 1}
        tracer.clear()
        assert len(tracer) == 0 and tracer.now == 0

    def test_category_filter_drops_other_categories(self):
        tracer = Tracer(categories={"pipeline"})
        tracer.emit("pipeline", "issue")
        tracer.emit("cache", "hit")
        tracer.emit("tlb", "walk")
        assert tracer.counts() == {("pipeline", "issue"): 1}

    def test_event_json_is_flat_sorted_and_omits_none(self):
        event = TraceEvent(cycle=3, category="cache", name="hit", core=1,
                           address=0x40, pc=None, detail={"unit": "l1d"})
        parsed = json.loads(event.to_json())
        assert parsed == {"cycle": 3, "cat": "cache", "name": "hit",
                          "core": 1, "addr": 0x40, "unit": "l1d"}
        assert "pc" not in parsed                    # None identifiers omitted
        assert list(parsed) == sorted(parsed)        # deterministic key order


class TestTracedSimulation:
    @pytest.fixture(scope="class")
    def outcome(self):
        return traced_outcome()

    def test_events_cover_every_category(self, outcome):
        seen = {event.category for event in outcome.tracer.events}
        assert seen == set(CATEGORIES)

    def test_events_carry_registry_scheme_names(self, outcome):
        assert outcome.tracer.core_schemes == {0: "muontrap"}
        metas = [event for event in outcome.tracer.events
                 if event.category == "meta"]
        assert [event.detail["scheme"] for event in metas] == ["muontrap"]
        # Registry names, never enum reprs.
        assert "ProtectionMode" not in jsonl_bytes(outcome.tracer).decode()

    def test_traced_run_matches_untraced_run(self, outcome):
        plain = api.simulate("mcf", scheme="muontrap", seed=SEED,
                             instructions=INSTRUCTIONS, warmup_fraction=0.0,
                             collect_stats=True)
        assert outcome.result.cycles == plain.result.cycles
        assert outcome.stats == plain.stats

    def test_per_event_hit_miss_counts_sum_to_aggregate_counters(
            self, outcome):
        """Every cache hit/miss event must have an aggregate twin."""
        per_unit = {}
        for event in outcome.tracer.events:
            if event.category != "cache" or event.name not in ("hit", "miss"):
                continue
            key = (event.core, event.detail["unit"], event.name)
            per_unit[key] = per_unit.get(key, 0) + 1
        assert per_unit, "traced run recorded no cache events"
        for (core, unit, name), count in per_unit.items():
            counter = {"hit": "hits", "miss": "misses"}[name]
            if unit in ("l1d", "l1i"):
                path = (f"system.memory_system.hierarchy.core{core}"
                        f".{unit}.{counter}")
            elif unit == "l2":
                path = f"system.memory_system.hierarchy.l2.{counter}"
            else:
                continue
            assert outcome.stats.get(path) == count, (unit, name)

    def test_pipeline_commit_counts_match_committed_instructions(
            self, outcome):
        commits = outcome.tracer.counts()[("pipeline", "commit")]
        assert commits == INSTRUCTIONS


class TestDeterminism:
    def test_jsonl_byte_identical_across_runs_and_worker_settings(
            self, monkeypatch):
        first = jsonl_bytes(traced_outcome().tracer)
        monkeypatch.setenv("REPRO_JOBS", "4")
        second = jsonl_bytes(traced_outcome().tracer)
        assert first == second

    def test_golden_trace_digest(self, update_golden):
        """Seed-pinned golden snapshot of the whole event stream.

        Hashing keeps the checked-in artefact tiny while still pinning
        every byte.  Regenerate with ``pytest --update-golden`` after an
        intentional change to event content or ordering.
        """
        digest = hashlib.sha256(jsonl_bytes(traced_outcome().tracer))
        actual = digest.hexdigest()
        if update_golden:
            GOLDEN.write_text(actual + "\n")
            pytest.skip("golden trace digest rewritten")
        expected = GOLDEN.read_text().strip()
        assert actual == expected, (
            "trace stream changed; if intentional, regenerate with "
            f"`pytest {__file__} --update-golden`")

    @pytest.mark.slow
    def test_jsonl_byte_identical_under_fresh_hash_seed(self, tmp_path):
        """A fresh interpreter (different PYTHONHASHSEED) traces identically."""
        out = tmp_path / "sub.jsonl"
        script = (
            "from repro import api\n"
            f"api.simulate('mcf', scheme='muontrap', seed={SEED}, "
            f"instructions={INSTRUCTIONS}, warmup_fraction=0.0, "
            f"trace={str(out)!r})\n")
        env = dict(os.environ, PYTHONHASHSEED="random",
                   PYTHONPATH=str(Path(__file__).parents[2] / "src"))
        subprocess.run([sys.executable, "-c", script], check=True, env=env)
        assert out.read_bytes() == jsonl_bytes(traced_outcome().tracer)


class TestExport:
    def test_write_jsonl_to_path_and_line_shape(self, tmp_path):
        outcome = traced_outcome()
        target = tmp_path / "run.jsonl"
        written = outcome.tracer.write_jsonl(target)
        lines = target.read_text().splitlines()
        assert written == len(lines) == len(outcome.tracer)
        record = json.loads(lines[0])
        assert set(record) >= {"cycle", "cat", "name"}

    def test_chrome_trace_parses_and_has_complete_events(self, tmp_path):
        outcome = traced_outcome()
        target = tmp_path / "run.chrome.json"
        written = outcome.tracer.write_chrome(target)
        payload = json.loads(target.read_text())
        events = payload["traceEvents"]
        assert written == len(events)
        phases = {event["ph"] for event in events}
        assert phases == {"X", "i"}
        slices = [event for event in events if event["ph"] == "X"]
        assert len(slices) == INSTRUCTIONS
        assert all(event["dur"] >= 0 for event in slices)

    def test_simulate_writes_trace_files(self, tmp_path):
        jsonl = tmp_path / "out.jsonl"
        chrome = tmp_path / "out.chrome.json"
        outcome = api.simulate("mcf", scheme="muontrap", seed=SEED,
                               instructions=INSTRUCTIONS,
                               warmup_fraction=0.0, trace=jsonl,
                               chrome_trace=chrome)
        assert outcome.trace_path == jsonl and jsonl.stat().st_size > 0
        assert outcome.chrome_path == chrome
        assert json.loads(chrome.read_text())["traceEvents"]

    def test_simulate_preserves_caller_category_filter(self):
        tracer = Tracer(categories={"pipeline"})
        outcome = api.simulate("mcf", scheme="muontrap", seed=SEED,
                               instructions=INSTRUCTIONS,
                               warmup_fraction=0.0, trace=tracer)
        assert outcome.tracer is tracer
        assert {event.category for event in tracer.events} == {"pipeline"}
