"""Tests for campaign instrumentation: timing, progress, phases, logging."""

import io
import logging

import pytest

from repro.common.params import ProtectionMode, SystemConfig
from repro.harness.campaign import (
    Campaign,
    ExecutionStats,
    _progress_enabled,
    _ProgressLine,
)
from repro.harness.report import Report
from repro.sim.runner import unprotected_config
from repro.telemetry import PhaseTimers, get_logger, log_event, phase
from repro.telemetry.log import configure

INSTRUCTIONS = 600
CONFIGS = {"MuonTrap": SystemConfig(mode=ProtectionMode.MUONTRAP)}


def make_campaign(**kwargs):
    return Campaign(["hmmer"], configs=CONFIGS,
                    baseline_config=unprotected_config(),
                    instructions=INSTRUCTIONS, **kwargs)


class TestExecutionStats:
    def test_timing_fields_default_to_idle(self):
        stats = ExecutionStats()
        assert stats.executed_seconds == 0.0
        assert stats.wall_seconds == 0.0
        assert stats.workers == 1
        assert stats.worker_utilisation == 0.0

    def test_worker_utilisation_is_clamped_fraction(self):
        stats = ExecutionStats(executed=4, executed_seconds=6.0,
                               wall_seconds=4.0, workers=2)
        assert stats.worker_utilisation == pytest.approx(0.75)
        saturated = ExecutionStats(executed=1, executed_seconds=9.0,
                                   wall_seconds=1.0, workers=1)
        assert saturated.worker_utilisation == 1.0

    def test_summary_includes_timing_only_when_work_ran(self):
        cached = ExecutionStats(store_hits=3)
        assert "cached" in cached.summary()
        assert "utilisation" not in cached.summary()
        worked = ExecutionStats(executed=2, executed_seconds=1.0,
                                wall_seconds=2.0, workers=2)
        assert "2 worker(s)" in worked.summary()
        assert "25% utilisation" in worked.summary()

    def test_campaign_run_populates_timing(self):
        result = make_campaign().run()
        stats = result.stats
        assert stats.executed == 2
        assert stats.executed_seconds > 0
        assert stats.wall_seconds > 0
        assert 0.0 < stats.worker_utilisation <= 1.0


class TestProgress:
    def test_callback_sees_every_cell_and_completion(self):
        seen = []
        result = make_campaign().run(progress=lambda done, total:
                                     seen.append((done, total)))
        assert result.stats.total == 2
        assert seen[0] == (0, 2)
        assert seen[-1] == (2, 2)
        dones = [done for done, _ in seen]
        assert dones == sorted(dones)

    def test_progress_env_forces_on_and_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROGRESS", "1")
        assert _progress_enabled() is True
        monkeypatch.setenv("REPRO_PROGRESS", "off")
        assert _progress_enabled() is False

    def test_progress_line_renders_and_terminates(self):
        stream = io.StringIO()
        line = _ProgressLine(stream=stream)
        line(0, 4)
        line(2, 4)
        line(4, 4)
        text = stream.getvalue()
        assert "cells 2/4 (50%)" in text
        assert text.endswith("\n")          # newline only on completion
        assert text.count("\n") == 1


class TestReportStats:
    def test_report_can_carry_the_execution_summary(self):
        result = make_campaign().run()
        bare = Report.from_campaign(result)
        assert bare.stats is None
        assert "cells:" not in bare.to_text()
        annotated = Report.from_campaign(result, include_stats=True)
        assert annotated.stats is result.stats
        assert "cells: 2 executed" in annotated.to_text()
        assert "_cells:" in annotated.to_markdown()


class TestPhaseTimers:
    def test_phase_accumulates_and_reports(self):
        timers = PhaseTimers()
        with timers.phase("simulate"):
            pass
        with timers.phase("simulate"):
            pass
        timers.add("pack", 1.5)
        assert timers.counts() == {"simulate": 2, "pack": 1}
        assert timers.totals()["pack"] == pytest.approx(1.5)
        report = timers.report()
        assert report.splitlines()[0].startswith("phase")
        assert "pack" in report and "simulate" in report
        timers.reset()
        assert timers.report() == "no phases recorded"

    def test_module_level_phase_targets_global_accumulator(self):
        from repro.telemetry.phases import PHASES
        before = PHASES.counts().get("test-phase", 0)
        with phase("test-phase"):
            pass
        assert PHASES.counts()["test-phase"] == before + 1

    def test_campaign_run_records_cell_phases(self):
        from repro.telemetry.phases import PHASES
        before = PHASES.counts().get("simulate", 0)
        make_campaign().run()
        assert PHASES.counts().get("simulate", 0) >= before + 2


class TestLogging:
    @pytest.fixture(autouse=True)
    def propagate_to_caplog(self, monkeypatch):
        # configure() turns propagation off (the hierarchy has its own
        # stderr handler); caplog listens on the root logger, so let the
        # records through for the duration of these tests.
        configure()
        monkeypatch.setattr(logging.getLogger("repro"), "propagate", True)

    def test_loggers_live_under_the_repro_hierarchy(self):
        assert get_logger().name == "repro"
        assert get_logger("harness.campaign").name == "repro.harness.campaign"
        assert get_logger("repro.api").name == "repro.api"

    def test_repro_log_env_sets_level(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "DEBUG")
        configure(force=True)
        try:
            assert logging.getLogger("repro").level == logging.DEBUG
            monkeypatch.delenv("REPRO_LOG")
            configure(force=True)
            assert logging.getLogger("repro").level == logging.WARNING
        finally:
            monkeypatch.delenv("REPRO_LOG", raising=False)
            configure(force=True)

    def test_log_event_renders_structured_line(self, caplog):
        logger = get_logger("harness.test")
        with caplog.at_level(logging.INFO, logger="repro.harness.test"):
            log_event(logger, "cell_done", benchmark="mcf", seconds=0.25)
        assert caplog.messages == ["cell_done benchmark=mcf seconds=0.25"]

    def test_log_event_is_silent_below_info(self, caplog):
        logger = get_logger("harness.test")
        with caplog.at_level(logging.WARNING, logger="repro.harness.test"):
            log_event(logger, "cell_done", benchmark="mcf")
        assert caplog.messages == []

    def test_campaign_emits_structured_events(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.harness.campaign"):
            make_campaign().run()
        events = [message.split()[0] for message in caplog.messages]
        assert "execute_start" in events
        assert "execute_done" in events
        assert events.count("cell_done") == 2
