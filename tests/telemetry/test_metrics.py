"""Tests for time-series metrics: TimeSeries, MetricsSampler, CSV export."""

import pytest

from repro import api
from repro.common.statistics import StatGroup
from repro.telemetry import MetricsSampler, TimeSeries

SEED = 7
INSTRUCTIONS = 600


def make_group():
    group = StatGroup("system")
    group.child("core0").counter("committed")
    group.child("l1d").counter("misses")
    return group


class TestTimeSeries:
    def test_columns_frozen_at_first_sample_cycle_first(self):
        group = make_group()
        series = TimeSeries(group)
        series.add_gauge("occupancy", lambda: 3)
        series.sample(100)
        assert series.columns == ["cycle", "system.core0.committed",
                                  "system.l1d.misses", "occupancy"]
        assert len(series) == 1
        assert series.rows() == [[100, 0, 0, 3]]

    def test_gauge_after_first_sample_rejected(self):
        series = TimeSeries(make_group())
        series.sample(1)
        with pytest.raises(RuntimeError):
            series.add_gauge("late", lambda: 0)

    def test_series_delta_and_rate(self):
        group = make_group()
        committed = group.child("core0").counter("committed")
        misses = group.child("l1d").counter("misses")
        series = TimeSeries(group)
        for cycle, (done, missed) in enumerate(
                [(100, 4), (300, 4), (600, 10)], start=1):
            committed.reset()
            committed.increment(done)
            misses.reset()
            misses.increment(missed)
            series.sample(cycle * 1000)
        assert series.series("cycle") == [1000, 2000, 3000]
        assert series.series("system.core0.committed") == [100, 300, 600]
        # First delta is measured from zero, so deltas sum to the total.
        assert series.delta("system.core0.committed") == [100, 200, 300]
        assert series.delta("system.l1d.misses") == [4, 0, 6]
        mpki = series.rate("system.l1d.misses", "system.core0.committed",
                           scale=1000)
        assert mpki == [40.0, 0.0, 20.0]

    def test_rate_is_zero_when_denominator_is_flat(self):
        group = make_group()
        series = TimeSeries(group)
        series.sample(1)
        series.sample(2)
        rate = series.rate("system.l1d.misses", "system.core0.committed")
        assert rate == [0.0, 0.0]

    def test_unknown_column_raises_keyerror(self):
        series = TimeSeries(make_group())
        series.sample(1)
        with pytest.raises(KeyError):
            series.series("no.such.counter")

    def test_to_csv_round_trips(self, tmp_path):
        series = TimeSeries(make_group())
        series.add_gauge("g", lambda: 2.5)
        series.sample(10)
        series.sample(20)
        target = tmp_path / "metrics.csv"
        text = series.to_csv(target)
        assert target.read_text() == text
        lines = text.splitlines()
        assert lines[0].startswith("cycle,")
        assert len(lines) == 3
        assert lines[1].split(",")[0] == "10"

    def test_stat_group_to_timeseries_entry_point(self):
        series = make_group().to_timeseries()
        assert isinstance(series, TimeSeries)
        series.sample(5)
        assert series.columns[0] == "cycle"


class TestMetricsSampler:
    def test_period_must_be_positive(self):
        with pytest.raises(ValueError):
            MetricsSampler(0)
        with pytest.raises(ValueError):
            MetricsSampler(-10)

    def test_samples_on_crossing_the_period_mark(self):
        series = TimeSeries(make_group())
        sampler = MetricsSampler(100, timeseries=series)
        for cycle in (10, 64, 99):
            sampler.on_cycle(cycle)
        assert len(series) == 0
        sampler.on_cycle(130)        # crossed 100
        sampler.on_cycle(180)        # next mark is 200
        sampler.on_cycle(460)        # crossed it (and more)
        assert series.series("cycle") == [130, 460]

    def test_finish_records_final_state_once(self):
        series = TimeSeries(make_group())
        sampler = MetricsSampler(100, timeseries=series)
        sampler.on_cycle(150)
        sampler.finish(150)          # already sampled at 150: no duplicate
        sampler.finish(175)
        sampler.finish(175)
        assert series.series("cycle") == [150, 175]


class TestInstrumentedSimulation:
    @pytest.fixture(scope="class")
    def outcome(self):
        return api.simulate("mcf", scheme="muontrap", seed=SEED,
                            instructions=INSTRUCTIONS, warmup_fraction=0.0,
                            collect_stats=True, metrics_every=500)

    def test_samples_cover_the_run_in_cycle_order(self, outcome):
        series = outcome.timeseries
        assert len(series) >= 2
        cycles = series.series("cycle")
        assert cycles == sorted(cycles)
        assert cycles[-1] == outcome.result.cycles

    def test_last_row_equals_end_of_run_totals(self, outcome):
        series = outcome.timeseries
        for column in ("system.memory_system.hierarchy.core0.l1d.misses",
                       "system.core0.committed_instructions"):
            assert series.series(column)[-1] == outcome.stats[column]

    def test_counters_are_monotone_and_occupancy_gauged(self, outcome):
        series = outcome.timeseries
        committed = series.series("system.core0.committed_instructions")
        assert all(later >= earlier for earlier, later
                   in zip(committed, committed[1:]))
        occupancy = series.series("core0.data_filter.occupancy")
        assert all(value >= 0 for value in occupancy)

    def test_metrics_over_time_figure_entry_point(self):
        from repro.experiments.figures import metrics_over_time
        series = metrics_over_time("mcf", "muontrap", every=500, seed=SEED,
                                   instructions=INSTRUCTIONS)
        assert len(series) >= 2
        assert "cycle" in series.columns
