"""End-to-end tests for ``python -m repro trace``."""

import json

import pytest

from repro.__main__ import main


class TestTraceSubcommand:
    @pytest.fixture
    def artefacts(self, tmp_path, capsys):
        jsonl = tmp_path / "mcf.trace.jsonl"
        chrome = tmp_path / "mcf.chrome.json"
        csv = tmp_path / "mcf.metrics.csv"
        status = main(["trace", "mcf", "--mode", "muontrap",
                       "--instructions", "600", "--seed", "7",
                       "--trace", str(jsonl), "--chrome", str(chrome),
                       "--metrics-every", "500", "--metrics-out", str(csv)])
        return status, capsys.readouterr().out, jsonl, chrome, csv

    def test_exits_cleanly_with_a_summary(self, artefacts):
        status, out, jsonl, chrome, csv = artefacts
        assert status == 0
        assert "benchmark:  mcf" in out
        assert "cycles:" in out and "events:" in out
        assert str(jsonl) in out
        assert "perfetto" in out
        assert str(csv) in out

    def test_writes_parseable_jsonl(self, artefacts):
        _, _, jsonl, _, _ = artefacts
        lines = jsonl.read_text().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert first["cat"] == "meta" and first["name"] == "core_scheme"
        assert all(json.loads(line)["cycle"] >= 0 for line in lines[:50])

    def test_writes_perfetto_loadable_chrome_trace(self, artefacts):
        _, _, _, chrome, _ = artefacts
        payload = json.loads(chrome.read_text())
        assert payload["traceEvents"]
        assert {"name", "ph", "ts", "pid", "tid"} <= set(
            payload["traceEvents"][0])

    def test_writes_metrics_csv(self, artefacts):
        _, _, _, _, csv = artefacts
        lines = csv.read_text().splitlines()
        assert lines[0].startswith("cycle,")
        assert len(lines) >= 3            # header + at least two samples

    def test_default_trace_path_lands_in_cwd(self, tmp_path, monkeypatch,
                                             capsys):
        monkeypatch.chdir(tmp_path)
        status = main(["trace", "mcf", "--instructions", "600",
                       "--seed", "7"])
        assert status == 0
        out = capsys.readouterr().out
        default = tmp_path / "mcf-muontrap.trace.jsonl"
        assert default.exists()
        assert "mcf-muontrap.trace.jsonl" in out
        # No --metrics-every: no metrics line promised.
        assert "samples" not in out
