"""Tests for the out-of-order core model, branch predictor and windows."""

import pytest

from repro.baselines.unprotected import UnprotectedMemorySystem
from repro.common.params import BranchPredictorConfig, default_system_config
from repro.core.muontrap import MuonTrapMemorySystem
from repro.cpu.branch_predictor import (
    BranchTargetBuffer,
    ReturnAddressStack,
    SaturatingCounter,
    TournamentPredictor,
)
from repro.cpu.core import OutOfOrderCore
from repro.cpu.instructions import MicroOp, OpKind, WrongPathAccess, summarize_trace
from repro.cpu.rob import LoadQueue, ReorderBuffer


class TestBranchPredictorComponents:
    def test_saturating_counter(self):
        counter = SaturatingCounter(bits=2, initial=0)
        assert not counter.taken
        for _ in range(5):
            counter.update(True)
        assert counter.taken and counter.value == 3
        counter.update(False)
        assert counter.value == 2

    def test_btb_and_ras(self):
        btb = BranchTargetBuffer(entries=16)
        btb.update(0x400, 0x800)
        assert btb.lookup(0x400) == 0x800
        ras = ReturnAddressStack(entries=2)
        ras.push(0x1000)
        ras.push(0x2000)
        ras.push(0x3000)           # overflows, drops the oldest
        assert ras.pop() == 0x3000
        assert ras.pop() == 0x2000
        assert ras.pop() is None
        assert ras.overflows == 1

    def test_predictor_learns_biased_branch(self):
        predictor = TournamentPredictor(BranchPredictorConfig())
        mispredicts = sum(predictor.update(0x400, True, 0x800)
                          for _ in range(100))
        assert mispredicts < 10
        assert predictor.misprediction_rate < 0.1

    def test_predictor_learns_alternating_pattern(self):
        predictor = TournamentPredictor(BranchPredictorConfig())
        outcomes = [bool(i % 2) for i in range(200)]
        mispredicts = sum(predictor.update(0x500, taken, 0x900)
                          for taken in outcomes)
        # A local-history tournament predictor learns a period-2 pattern.
        assert mispredicts < 40


class TestRetirementWindows:
    def test_rob_backpressure(self):
        rob = ReorderBuffer(capacity=2)
        rob.allocate(commit_time=100)
        rob.allocate(commit_time=200)
        assert rob.earliest_dispatch_time(now=10) == 100
        assert rob.full_stalls == 1
        rob.retire_older_than(150)
        assert rob.earliest_dispatch_time(now=10) == 10

    def test_load_queue_capacity(self):
        load_queue = LoadQueue(capacity=1)
        load_queue.allocate(commit_time=50)
        assert load_queue.is_full
        assert load_queue.earliest_dispatch_time(now=0) == 50

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ReorderBuffer(capacity=0)


def _simple_trace(n=400, miss_stride=None):
    ops = []
    pc = 0x1000
    for i in range(n):
        if i % 5 == 2:
            address = 0x10_0000 + (i * (miss_stride or 64)) % 4096
            ops.append(MicroOp(kind=OpKind.LOAD, pc=pc, address=address,
                               dst_reg=1))
        elif i % 9 == 4:
            ops.append(MicroOp(kind=OpKind.BRANCH, pc=pc, taken=i % 2 == 0,
                               target=pc + 64,
                               wrong_path=[WrongPathAccess(address=0x20_0000
                                                           + i * 64)]))
        elif i % 7 == 3:
            ops.append(MicroOp(kind=OpKind.STORE, pc=pc,
                               address=0x30_0000 + (i * 64) % 2048,
                               src_regs=(1,)))
        else:
            ops.append(MicroOp(kind=OpKind.INT_ALU, pc=pc, src_regs=(1,),
                               dst_reg=2))
        pc += 4
    return ops


class TestOutOfOrderCore:
    def test_runs_trace_and_reports_result(self):
        config = default_system_config()
        core = OutOfOrderCore(0, config, UnprotectedMemorySystem(config))
        result = core.run(_simple_trace())
        assert result.committed_instructions == 400
        assert result.cycles > 0
        assert 0 < result.ipc < config.core.width
        assert result.committed_loads > 0
        assert result.committed_stores > 0
        assert result.committed_branches > 0

    def test_commit_times_monotonic(self):
        config = default_system_config()
        core = OutOfOrderCore(0, config, UnprotectedMemorySystem(config))
        previous = 0
        for op in _simple_trace(200):
            commit_time = core.execute_op(op)
            assert commit_time >= previous
            previous = commit_time

    def test_mispredictions_generate_squashed_accesses(self):
        config = default_system_config()
        core = OutOfOrderCore(0, config, UnprotectedMemorySystem(config))
        result = core.run(_simple_trace(600))
        assert result.mispredictions > 0
        assert result.squashed_accesses > 0

    def test_memory_op_requires_address(self):
        with pytest.raises(ValueError):
            MicroOp(kind=OpKind.LOAD, pc=0x1000)

    def test_muontrap_core_commits_everything(self):
        config = default_system_config()
        memory = MuonTrapMemorySystem(config)
        core = OutOfOrderCore(0, config, memory)
        result = core.run(_simple_trace(300))
        assert result.committed_instructions == 300
        # Commit-side write-through happened for the committed loads.
        assert memory.stats.get("committed_loads") == result.committed_loads

    def test_summarize_trace(self):
        summary = summarize_trace(_simple_trace(100))
        assert summary["total"] == 100
        assert summary["loads"] > 0
        assert abs(summary["load_fraction"] - summary["loads"] / 100) < 1e-9
