"""Tests for the content-hash-keyed trace cache."""

import pytest

from repro.workloads.cache import (
    TRACE_CACHE_ENV,
    TraceCache,
    active_trace_cache,
    reset_trace_cache,
    trace_key,
)
from repro.workloads.generator import TraceGenerator, generate_workload
from repro.workloads.profiles import get_profile


@pytest.fixture(autouse=True)
def _fresh_cache_state(monkeypatch):
    """Isolate every test from the process-wide cache singleton."""
    monkeypatch.delenv(TRACE_CACHE_ENV, raising=False)
    reset_trace_cache()
    yield
    reset_trace_cache()


class TestTraceKey:
    def test_key_depends_on_every_generation_input(self):
        mcf = get_profile("mcf")
        base = trace_key(mcf, 1000, 1, 0)
        assert trace_key(mcf, 1000, 1, 0) == base
        assert trace_key(mcf, 2000, 1, 0) != base
        assert trace_key(mcf, 1000, 2, 0) != base
        assert trace_key(mcf, 1000, 1, 3) != base
        assert trace_key(get_profile("lbm"), 1000, 1, 0) != base


class TestTraceCache:
    def test_memory_tier_round_trip(self):
        cache = TraceCache()
        workload = TraceGenerator(get_profile("mcf"), seed=2).generate(300)
        key = trace_key(get_profile("mcf"), 300, 2, 0)
        assert cache.get(key) is None
        cache.put(key, workload)
        assert cache.get(key) is workload
        assert cache.hits == 1 and cache.misses == 1

    def test_memory_tier_is_lru_bounded(self):
        cache = TraceCache(memory_entries=2)
        workload = TraceGenerator(get_profile("mcf"), seed=2).generate(50)
        cache.put("a", workload)
        cache.put("b", workload)
        cache.put("c", workload)
        assert cache.get("a") is None
        assert cache.get("b") is workload
        assert cache.get("c") is workload

    def test_disk_tier_round_trip(self, tmp_path):
        writer = TraceCache(root=tmp_path)
        workload = TraceGenerator(get_profile("lbm"), seed=9).generate(200)
        key = trace_key(get_profile("lbm"), 200, 9, 0)
        writer.put(key, workload)
        # A fresh cache (fresh process, conceptually) reads it back.
        reader = TraceCache(root=tmp_path)
        loaded = reader.get(key)
        assert loaded is not None
        assert loaded.benchmark == workload.benchmark
        assert [t.ops for t in loaded] == [t.ops for t in workload]
        # The packed view survives pickling too.
        assert loaded.thread(0).packed().unpack() == workload.thread(0).ops

    def test_disk_tier_evicts_corrupt_entries(self, tmp_path):
        cache = TraceCache(root=tmp_path)
        (tmp_path / "deadbeef.pkl").write_bytes(b"not a pickle")
        assert cache.get("deadbeef") is None
        # Evicted, not skipped: the next put rewrites the entry cleanly
        # instead of failing to unpickle on every future run.
        assert not (tmp_path / "deadbeef.pkl").exists()

    def test_truncated_pickle_is_evicted(self, tmp_path):
        writer = TraceCache(root=tmp_path)
        workload = TraceGenerator(get_profile("mcf"), seed=3).generate(100)
        writer.put("torn", workload)
        path = tmp_path / "torn.pkl"
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        reader = TraceCache(root=tmp_path)
        assert reader.get("torn") is None
        assert not path.exists()

    def test_clear_sweeps_stray_tmp_files(self, tmp_path):
        cache = TraceCache(root=tmp_path)
        workload = TraceGenerator(get_profile("mcf"), seed=2).generate(50)
        cache.put("x", workload)
        (tmp_path / ".x.999.0.tmp").write_bytes(b"crashed mid-write")
        cache.clear()
        assert not list(tmp_path.iterdir())

    def test_clear_empties_both_tiers(self, tmp_path):
        cache = TraceCache(root=tmp_path)
        workload = TraceGenerator(get_profile("mcf"), seed=2).generate(50)
        cache.put("x", workload)
        assert len(cache) == 1
        assert cache.clear() >= 1
        assert len(cache) == 0


class TestGenerateWorkloadCaching:
    def test_repeated_generation_returns_cached_workload(self):
        first = generate_workload(get_profile("mcf"), 300, seed=4)
        second = generate_workload(get_profile("mcf"), 300, seed=4)
        assert second is first

    def test_different_seed_is_a_different_workload(self):
        first = generate_workload(get_profile("mcf"), 300, seed=4)
        second = generate_workload(get_profile("mcf"), 300, seed=5)
        assert second is not first

    def test_env_off_disables_caching(self, monkeypatch):
        monkeypatch.setenv(TRACE_CACHE_ENV, "off")
        assert active_trace_cache() is None
        first = generate_workload(get_profile("mcf"), 300, seed=4)
        second = generate_workload(get_profile("mcf"), 300, seed=4)
        assert second is not first
        # Identical content either way — caching only changes identity.
        assert [t.ops for t in first] == [t.ops for t in second]

    def test_env_directory_enables_disk_tier(self, monkeypatch, tmp_path):
        monkeypatch.setenv(TRACE_CACHE_ENV, str(tmp_path))
        generate_workload(get_profile("mcf"), 300, seed=4)
        assert list(tmp_path.glob("*.pkl"))
