"""Tests for the vectorized-engine trace plan (segmentation + run summaries).

The plan is derived data: ``run_end`` segments a packed trace into maximal
runs of simple ops sharing one instruction-cache line, and ``vector_runs``
summarises long full runs for numpy replay.  These tests pin the
segmentation invariants (property-tested round-trip against the original
op sequence), the run-summary contents, the empty/single-op edge cases,
and the rule that plans never travel through pickles.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.workloads.trace as trace_module
from repro.baselines.unprotected import UnprotectedMemorySystem
from repro.common.params import default_system_config
from repro.cpu.core import OutOfOrderCore
from repro.cpu.instructions import MicroOp, OpKind
from repro.workloads.trace import (
    COMPLEX_MASK,
    DEFAULT_LINE_SIZE,
    VECTOR_MIN_RUN,
    PackedTrace,
    TracePlan,
)

LINE = DEFAULT_LINE_SIZE


def _alu(pc, srcs=(), dst=-1, latency=1):
    return MicroOp(kind=OpKind.INT_ALU, pc=pc,
                   src_regs=tuple(srcs),
                   dst_reg=dst if dst >= 0 else None,
                   execution_latency=latency)


def _load(pc, address=0x10_0000, dst=1):
    return MicroOp(kind=OpKind.LOAD, pc=pc, address=address, dst_reg=dst)


# -- hypothesis op-sequence strategy ------------------------------------------

_op_entry = st.tuples(
    st.sampled_from(["alu", "fp", "nop", "load", "store", "branch"]),
    st.integers(min_value=0, max_value=3),    # pc stride quirk
    st.integers(min_value=1, max_value=4),    # latency
    st.integers(min_value=0, max_value=7),    # src register
    st.integers(min_value=0, max_value=7),    # dst register
)


def _materialise(entries):
    """Turn strategy tuples into a MicroOp list with varied pc placement."""
    ops = []
    pc = 0x1000
    for kind, stride, latency, src, dst in entries:
        if stride == 3:
            pc += LINE          # force a line crossing
        if kind == "alu":
            ops.append(MicroOp(kind=OpKind.INT_ALU, pc=pc, src_regs=(src,),
                               dst_reg=dst, execution_latency=latency))
        elif kind == "fp":
            ops.append(MicroOp(kind=OpKind.FP_ALU, pc=pc, dst_reg=dst,
                               execution_latency=latency))
        elif kind == "nop":
            ops.append(MicroOp(kind=OpKind.NOP, pc=pc))
        elif kind == "load":
            ops.append(MicroOp(kind=OpKind.LOAD, pc=pc,
                               address=0x20_0000 + 64 * src, dst_reg=dst))
        elif kind == "store":
            ops.append(MicroOp(kind=OpKind.STORE, pc=pc,
                               address=0x20_0000 + 64 * src,
                               src_regs=(src,)))
        else:
            ops.append(MicroOp(kind=OpKind.BRANCH, pc=pc, taken=bool(dst & 1),
                               target=0x3000))
        pc += 4
    return ops


class TestSegmentation:
    def test_empty_trace_has_empty_plan(self):
        packed = PackedTrace.pack([])
        plan = packed.plan(LINE)
        assert packed.length == 0
        assert plan.run_end == []
        assert plan.vector_runs == {}

    def test_single_simple_op_is_a_run_of_one(self):
        packed = PackedTrace.pack([_alu(0x1000, dst=1)])
        plan = packed.plan(LINE)
        assert plan.run_end == [1]
        assert plan.vector_runs == {}

    def test_single_complex_op_is_not_a_run(self):
        packed = PackedTrace.pack([_load(0x1000)])
        assert packed.plan(LINE).run_end == [0]

    def test_runs_break_at_line_crossings(self):
        # Four ALU ops, the third on the next cache line: two runs.
        ops = [_alu(LINE - 8, dst=1), _alu(LINE - 4, dst=2),
               _alu(LINE, dst=3), _alu(LINE + 4, dst=4)]
        assert PackedTrace.pack(ops).plan(LINE).run_end == [2, 2, 4, 4]

    def test_runs_break_at_complex_ops(self):
        ops = [_alu(0x1000, dst=1), _load(0x1004), _alu(0x1008, dst=2),
               _alu(0x100C, dst=3)]
        assert PackedTrace.pack(ops).plan(LINE).run_end == [1, 1, 4, 4]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_op_entry, max_size=80))
    def test_segmentation_round_trip(self, entries):
        """Walking the segments reconstructs the op sequence exactly.

        The property covers the numpy segmentation path end to end: the
        segments must tile ``[0, n)`` without gaps or overlap (so the
        concatenation of per-segment op slices equals the original
        sequence), every batched segment must be entirely simple ops on
        one line, and every batch must be maximal.
        """
        ops = _materialise(entries)
        packed = PackedTrace.pack(ops)
        plan = packed.plan(LINE)
        n = packed.length
        assert len(plan.run_end) == n
        covered = []
        index = 0
        while index < n:
            stop = plan.run_end[index]
            if stop > index:          # a batch of simple same-line ops
                line = packed.pcs[index] // LINE
                for i in range(index, stop):
                    assert not packed.flags[i] & COMPLEX_MASK
                    assert packed.pcs[i] // LINE == line
                # Maximality: the batch cannot be extended rightward.
                assert stop == n or packed.flags[stop] & COMPLEX_MASK \
                    or packed.pcs[stop] // LINE != line
                covered.extend(range(index, stop))
                index = stop
            else:                     # a complex op, executed scalar
                assert packed.flags[index] & COMPLEX_MASK
                covered.append(index)
                index += 1
        assert covered == list(range(n))
        # The concatenation of segment op slices is the original sequence.
        assert packed.unpack() == ops

    @settings(max_examples=25, deadline=None)
    @given(st.lists(_op_entry, max_size=60))
    def test_pure_python_fallback_matches_numpy(self, entries):
        packed = PackedTrace.pack(_materialise(entries))
        with_numpy = TracePlan.build(packed, LINE)
        saved = trace_module._np
        trace_module._np = None
        try:
            without_numpy = TracePlan.build(packed, LINE)
        finally:
            trace_module._np = saved
        assert without_numpy.run_end == with_numpy.run_end
        # The fallback builds no numpy run summaries, by design.
        assert without_numpy.vector_runs == {}


def _long_run(count, line_base=0x40_000):
    """``count`` ALU ops on one line: dependency chain through r1."""
    ops = [MicroOp(kind=OpKind.INT_ALU, pc=line_base, dst_reg=1)]
    ops += [MicroOp(kind=OpKind.INT_ALU, pc=line_base, src_regs=(1,),
                    dst_reg=1, execution_latency=2)
            for _ in range(count - 1)]
    return ops


class TestRunSummaries:
    def test_threshold_gates_run_plans(self):
        below = PackedTrace.pack(_long_run(VECTOR_MIN_RUN - 1))
        at = PackedTrace.pack(_long_run(VECTOR_MIN_RUN))
        assert below.plan(LINE).vector_runs == {}
        assert list(at.plan(LINE).vector_runs) == [0]

    def test_run_plan_summarises_reads_and_writes(self):
        ops = [
            MicroOp(kind=OpKind.INT_ALU, pc=0x1000, src_regs=(5,),
                    dst_reg=2, execution_latency=3),
            MicroOp(kind=OpKind.INT_ALU, pc=0x1000, src_regs=(2, 6),
                    dst_reg=2),
            MicroOp(kind=OpKind.INT_ALU, pc=0x1000, src_regs=(2,),
                    dst_reg=9),
        ] + [MicroOp(kind=OpKind.NOP, pc=0x1000)] * (VECTOR_MIN_RUN - 3)
        plan = PackedTrace.pack(ops).plan(LINE)
        run = plan.vector_runs[0]
        assert (run.start, run.stop) == (0, len(ops))
        # r5 and r6 are external reads; r2 at positions 1 and 2 is in-run.
        assert sorted(zip(run.ext_regs, run.ext_positions.tolist())) \
            == [(5, 0), (6, 1)]
        assert run.dep_ops == [(1, (0,)), (2, (1,))]
        # Only the *last* write per register survives the run.
        assert sorted(run.final_writes) == [(2, 1), (9, 2)]
        assert run.max_dst == 9
        assert run.lat.tolist() == [op.execution_latency for op in ops]

    def test_mid_run_indices_are_not_keys(self):
        plan = PackedTrace.pack(_long_run(VECTOR_MIN_RUN + 4)).plan(LINE)
        assert list(plan.vector_runs) == [0]
        # Every member of the batch knows the batch's end, so an engine
        # entering mid-run (chunk boundaries) still finds the run end.
        assert all(end == VECTOR_MIN_RUN + 4
                   for end in plan.run_end)


class TestPlanLifecycle:
    def test_plans_are_cached_per_line_size(self):
        packed = PackedTrace.pack(_long_run(8))
        assert packed.plan(64) is packed.plan(64)
        assert packed.plan(64) is not packed.plan(32)

    def test_plans_never_travel_through_pickles(self):
        packed = PackedTrace.pack(_long_run(VECTOR_MIN_RUN))
        packed.plan(LINE)
        clone = pickle.loads(pickle.dumps(packed))
        assert clone._plans is None          # derived data stays home
        assert clone.unpack() == packed.unpack()
        # A fresh plan is rebuilt on demand and matches the original.
        assert clone.plan(LINE).run_end == packed.plan(LINE).run_end


class TestEmptyAndSingleOpExecution:
    """Engine-level pinning: degenerate traces return the entry clock."""

    def _core(self):
        config = default_system_config()
        return OutOfOrderCore(0, config, UnprotectedMemorySystem(config))

    def test_empty_trace_is_a_no_op_on_every_engine(self):
        empty = PackedTrace.pack([])
        for engine in ("run_packed", "run_vectorized"):
            core = self._core()
            # Establish a non-trivial clock first, then run nothing.
            core.run_packed(PackedTrace.pack(_long_run(4)))
            before = core.result()
            clock = getattr(core, engine)(empty)
            after = core.result()
            assert clock == core._last_commit_time
            assert after == before, engine

    def test_single_op_trace_identical_across_engines(self):
        single = PackedTrace.pack([_alu(0x1000, srcs=(1,), dst=2,
                                        latency=3)])
        results = {}
        for engine in ("run_packed", "run_vectorized"):
            core = self._core()
            clock = getattr(core, engine)(single)
            results[engine] = (clock, core.result())
        per_op = self._core()
        per_op.execute_op(single.op(0))
        results["per-op"] = (per_op._last_commit_time, per_op.result())
        assert results["run_packed"] == results["run_vectorized"] \
            == results["per-op"]
        assert results["run_packed"][1].committed_instructions == 1
