"""Tests for the packed (struct-of-arrays) trace representation."""

import random

import pytest

from repro.cpu.instructions import (
    F_BRANCH,
    F_LOAD,
    F_STORE,
    F_TAKEN,
    F_TRANSMITTER,
    MicroOp,
    OpKind,
    WrongPathAccess,
)
from repro.workloads.generator import TraceGenerator
from repro.workloads.profiles import get_profile
from repro.workloads.trace import PackedTrace, Trace


def _varied_ops():
    return [
        MicroOp(kind=OpKind.LOAD, pc=0x1000, address=0x10_0000, dst_reg=3),
        MicroOp(kind=OpKind.STORE, pc=0x1004, address=0x10_0040,
                src_regs=(3,)),
        MicroOp(kind=OpKind.BRANCH, pc=0x1008, taken=True, target=0x2000,
                force_mispredict=True,
                wrong_path=[WrongPathAccess(address=0x20_0000),
                            WrongPathAccess(address=0x20_0040, is_store=True),
                            WrongPathAccess(address=0x3000,
                                            is_instruction=True)]),
        MicroOp(kind=OpKind.INT_ALU, pc=0x100C, src_regs=(3, 7), dst_reg=8),
        MicroOp(kind=OpKind.FP_ALU, pc=0x1010, dst_reg=9,
                execution_latency=5),
        MicroOp(kind=OpKind.SYSCALL, pc=0x1014, is_context_switch=True),
        MicroOp(kind=OpKind.NOP, pc=0x1018, is_sandbox_entry=True),
        MicroOp(kind=OpKind.BRANCH, pc=0x101C, taken=False, target=0x1000,
                force_mispredict=False),
        MicroOp(kind=OpKind.MUL_DIV, pc=0x1020, dst_reg=10, sequence=42),
    ]


class TestPackUnpackRoundTrip:
    def test_lossless_round_trip(self):
        ops = _varied_ops()
        packed = PackedTrace.pack(ops)
        assert len(packed) == len(ops)
        assert packed.unpack() == ops

    def test_single_op_materialisation(self):
        ops = _varied_ops()
        packed = PackedTrace.pack(ops)
        for index, op in enumerate(ops):
            assert packed.op(index) == op

    def test_generated_trace_round_trips(self):
        trace = TraceGenerator(get_profile("mcf"), seed=3).generate_single(400)
        assert trace.packed().unpack() == trace.ops


class TestPackedFlags:
    def test_kind_flags_precomputed(self):
        packed = PackedTrace.pack(_varied_ops())
        assert packed.flags[0] & F_LOAD
        assert packed.flags[0] & F_TRANSMITTER
        assert packed.flags[1] & F_STORE
        assert packed.flags[1] & F_TRANSMITTER
        assert packed.flags[2] & F_BRANCH
        assert packed.flags[2] & F_TAKEN
        assert not packed.flags[3] & (F_LOAD | F_STORE | F_BRANCH)

    def test_flags_match_enum_properties(self):
        trace = TraceGenerator(get_profile("gcc"), seed=5).generate_single(300)
        packed = trace.packed()
        for index, op in enumerate(trace.ops):
            flags = packed.flags[index]
            assert bool(flags & F_LOAD) == op.is_load
            assert bool(flags & F_STORE) == op.is_store
            assert bool(flags & F_BRANCH) == op.is_branch
            assert bool(flags & F_TRANSMITTER) == op.kind.is_transmitter


def _random_op(rng: random.Random, sequence: int) -> MicroOp:
    """One random micro-op drawing every field from its full domain."""
    kind = rng.choice(list(OpKind))
    pc = rng.randrange(0, 1 << 32, 4)
    address = (rng.randrange(0, 1 << 40, 1)
               if kind.is_memory or rng.random() < 0.1 else None)
    src_regs = tuple(rng.randrange(0, 256)
                     for _ in range(rng.randrange(0, 4)))
    dst_reg = rng.randrange(0, 256) if rng.random() < 0.5 else None
    latency = rng.randrange(0, 12) if rng.random() < 0.5 else None
    taken = rng.random() < 0.5
    target = rng.randrange(0, 1 << 32, 4) if rng.random() < 0.5 else None
    force = rng.choice([None, True, False])
    wrong_path = [
        WrongPathAccess(address=rng.randrange(0, 1 << 40),
                        is_store=rng.random() < 0.3,
                        is_instruction=rng.random() < 0.2,
                        issue_offset=rng.randrange(1, 8))
        for _ in range(rng.randrange(0, 4))
    ]
    return MicroOp(kind=kind, pc=pc, sequence=sequence, address=address,
                   src_regs=src_regs, dst_reg=dst_reg,
                   execution_latency=latency, taken=taken, target=target,
                   force_mispredict=force, wrong_path=wrong_path,
                   is_context_switch=rng.random() < 0.1,
                   is_sandbox_entry=rng.random() < 0.1)


class TestRandomizedRoundTrip:
    """Property tests: pack/unpack is lossless for arbitrary op streams.

    ~200 seed-pinned random cases covering every op kind, every optional
    field and every flag combination, so a future change to the packed
    layout cannot silently drop information.
    """

    CASES = 200

    @pytest.mark.parametrize("case", range(CASES))
    def test_round_trip_is_lossless(self, case):
        rng = random.Random(0xC0DE + case)
        ops = [_random_op(rng, sequence)
               for sequence in range(rng.randrange(1, 40))]
        packed = PackedTrace.pack(ops)
        assert len(packed) == len(ops)
        restored = packed.unpack()
        assert restored == ops
        # Unpacked ops are independent copies: mutating one must not alias
        # the originals' wrong-path lists.
        for original, copy in zip(ops, restored):
            assert original.wrong_path == copy.wrong_path
            assert original.wrong_path is not copy.wrong_path or not original.wrong_path

    @pytest.mark.parametrize("case", range(0, CASES, 20))
    def test_repack_is_idempotent(self, case):
        """pack(unpack(packed)) reproduces every column exactly."""
        rng = random.Random(0xBEEF + case)
        ops = [_random_op(rng, sequence)
               for sequence in range(rng.randrange(1, 40))]
        once = PackedTrace.pack(ops)
        twice = PackedTrace.pack(once.unpack())
        assert once.kinds == twice.kinds
        assert once.flags == twice.flags
        assert once.pcs == twice.pcs
        assert once.addresses == twice.addresses
        assert once.latencies == twice.latencies
        assert once.srcs == twice.srcs
        assert once.dsts == twice.dsts
        assert once.targets == twice.targets
        assert once.wrong_paths == twice.wrong_paths
        assert once.sequences == twice.sequences

    @pytest.mark.parametrize("case", range(0, CASES, 20))
    def test_single_op_materialisation_matches(self, case):
        rng = random.Random(0xF00D + case)
        ops = [_random_op(rng, sequence) for sequence in range(16)]
        packed = PackedTrace.pack(ops)
        for index, op in enumerate(ops):
            assert packed.op(index) == op


class TestTracePackedCache:
    def test_packed_view_is_cached(self):
        trace = Trace(benchmark="demo", thread_id=0, process_id=0,
                      ops=_varied_ops())
        assert trace.packed() is trace.packed()

    def test_cache_invalidated_on_length_change(self):
        trace = Trace(benchmark="demo", thread_id=0, process_id=0,
                      ops=_varied_ops())
        first = trace.packed()
        trace.ops.append(MicroOp(kind=OpKind.NOP, pc=0x2000))
        second = trace.packed()
        assert second is not first
        assert len(second) == len(trace.ops)

    def test_explicit_invalidation(self):
        trace = Trace(benchmark="demo", thread_id=0, process_id=0,
                      ops=_varied_ops())
        first = trace.packed()
        trace.invalidate_packed()
        assert trace.packed() is not first

    def test_generator_emits_packed_traces(self):
        workload = TraceGenerator(get_profile("mcf"), seed=1).generate(200)
        for trace in workload:
            assert trace._packed is not None
            assert trace._packed.length == len(trace.ops)
